//! Integration tests pinning the paper's evaluation claims at test scale
//! (shorter runs than the benches, same calibrated profile).

use std::time::Duration;
use videopipe::apps::experiments::{run_fitness, run_fitness_and_gesture, Arch, ExperimentConfig};
use videopipe::sim::SimProfile;

fn quick(fps: f64) -> ExperimentConfig {
    ExperimentConfig::default()
        .with_fps(fps)
        .with_duration(Duration::from_secs(15))
}

#[test]
fn videopipe_beats_baseline_at_all_paper_rates() {
    // Table 2, qualitatively: VideoPipe ≥ baseline at every source rate,
    // strictly better once the source outpaces the baseline.
    for fps in [5.0, 10.0, 20.0, 30.0] {
        let vp = run_fitness(&quick(fps), Arch::VideoPipe).unwrap();
        let bl = run_fitness(&quick(fps), Arch::Baseline).unwrap();
        assert!(vp.report.errors.is_empty(), "{:?}", vp.report.errors);
        let (v, b) = (vp.metrics.fps(), bl.metrics.fps());
        assert!(
            v >= b - 0.25,
            "fps {fps}: VideoPipe {v:.2} vs baseline {b:.2}"
        );
        if fps >= 20.0 {
            assert!(
                v > b + 1.0,
                "fps {fps}: expected a clear gap, got {v:.2} vs {b:.2}"
            );
        }
    }
}

#[test]
fn latency_ordering_matches_fig6() {
    let vp = run_fitness(&quick(30.0), Arch::VideoPipe).unwrap();
    let bl = run_fitness(&quick(30.0), Arch::Baseline).unwrap();
    let v = vp.metrics.end_to_end.mean_ms();
    let b = bl.metrics.end_to_end.mean_ms();
    // Paper: ~90 vs ~120 ms.
    assert!((80.0..110.0).contains(&v), "VideoPipe total {v:.1} ms");
    assert!((105.0..140.0).contains(&b), "baseline total {b:.1} ms");
    assert!(b > v + 15.0, "gap too small: {v:.1} vs {b:.1}");
}

#[test]
fn frame_rate_cap_matches_table2() {
    let vp = run_fitness(&quick(60.0), Arch::VideoPipe).unwrap();
    let bl = run_fitness(&quick(60.0), Arch::Baseline).unwrap();
    assert!(
        (9.5..11.8).contains(&vp.metrics.fps()),
        "VideoPipe cap {:.2} (paper ~11)",
        vp.metrics.fps()
    );
    assert!(
        (7.5..9.2).contains(&bl.metrics.fps()),
        "baseline cap {:.2} (paper ~8.3)",
        bl.metrics.fps()
    );
}

#[test]
fn shared_pose_service_saturates_then_scaling_restores() {
    // Table 2 column 4 + the §5.2.2 scaling remark.
    let shared = run_fitness_and_gesture(&quick(30.0)).unwrap();
    let single = run_fitness(&quick(30.0), Arch::VideoPipe).unwrap();
    assert!(
        shared.fitness.fps() < single.metrics.fps(),
        "sharing should cost throughput at 30 fps: {:.2} vs {:.2}",
        shared.fitness.fps(),
        single.metrics.fps()
    );
    // Scale the pose pool to two instances: throughput recovers.
    let scaled_profile = SimProfile::calibrated().with_service_instances("pose_detector", 2);
    let scaled = run_fitness_and_gesture(&quick(30.0).with_profile(scaled_profile)).unwrap();
    assert!(
        scaled.fitness.fps() > shared.fitness.fps() + 0.5,
        "scaling should restore throughput: {:.2} -> {:.2}",
        shared.fitness.fps(),
        scaled.fitness.fps()
    );
}

#[test]
fn drop_at_source_accounts_all_offered_frames() {
    let vp = run_fitness(&quick(60.0), Arch::VideoPipe).unwrap();
    let m = &vp.metrics;
    assert!(m.frames_dropped > 0, "60 fps source must drop frames");
    assert!(
        m.frames_offered >= m.frames_delivered + m.frames_dropped,
        "offered {} < delivered {} + dropped {}",
        m.frames_offered,
        m.frames_delivered,
        m.frames_dropped
    );
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let r = run_fitness(&quick(30.0), Arch::VideoPipe).unwrap();
        (
            r.metrics.frames_delivered,
            r.metrics.end_to_end.mean_ns(),
            r.metrics.frames_dropped,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ_in_jittered_runs() {
    let fps_for = |seed: u64| {
        let mut cfg = quick(30.0);
        cfg.profile = SimProfile::calibrated().with_seed(seed);
        run_fitness(&cfg, Arch::VideoPipe)
            .unwrap()
            .metrics
            .end_to_end
            .mean_ns()
    };
    assert_ne!(fps_for(1), fps_for(2));
}
