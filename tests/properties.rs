//! Cross-crate property-based tests (proptest) on the wire formats and the
//! core invariants.

use proptest::prelude::*;
use videopipe::core::flow::CreditController;
use videopipe::core::message::Payload;
use videopipe::core::metrics::LatencyHistogram;
use videopipe::media::{codec, Frame, FrameId, Keypoint, Pose, JOINT_COUNT};
use videopipe::net::{Endpoint, MessageKind, WireMessage};

fn arb_pose() -> impl Strategy<Value = Pose> {
    proptest::collection::vec((-2.0f32..3.0, -2.0f32..3.0), JOINT_COUNT).prop_map(|coords| {
        let mut kps = [Keypoint::default(); JOINT_COUNT];
        for (kp, (x, y)) in kps.iter_mut().zip(coords) {
            *kp = Keypoint::new(x, y);
        }
        Pose::new(kps)
    })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Empty),
        "[ -~]{0,64}".prop_map(Payload::Text),
        proptest::collection::vec(any::<u8>(), 0..256)
            .prop_map(|v| Payload::Blob(bytes::Bytes::from(v))),
        any::<u64>().prop_map(|v| Payload::FrameRef(FrameId::from_u64(v))),
        proptest::collection::vec(any::<u8>(), 0..256)
            .prop_map(|v| Payload::EncodedFrame(bytes::Bytes::from(v))),
        (arb_pose(), 0.0f32..1.0).prop_map(|(pose, score)| Payload::Pose { pose, score }),
        proptest::collection::vec(arb_pose(), 0..4).prop_map(Payload::Poses),
        proptest::collection::vec(-1e6f32..1e6, 0..64).prop_map(Payload::Vector),
        proptest::collection::vec(proptest::collection::vec(-1e3f32..1e3, 0..8), 0..6)
            .prop_map(Payload::Matrix),
        ("[a-z_]{1,24}", 0.0f32..1.0)
            .prop_map(|(label, confidence)| Payload::Label { label, confidence }),
        any::<u64>().prop_map(Payload::Count),
        proptest::collection::vec((0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0), 0..8)
            .prop_map(Payload::Boxes),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn payload_wire_roundtrip(payload in arb_payload()) {
        let encoded = payload.encode();
        let decoded = Payload::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, payload);
    }

    #[test]
    fn payload_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Payload::decode(&bytes); // must not panic
    }

    #[test]
    fn wire_message_roundtrip(
        kind in 0u8..5,
        channel in "[a-z_/]{0,32}",
        reply in "[a-z_/]{0,32}",
        corr in any::<u64>(),
        seq in any::<u64>(),
        ts in any::<u64>(),
        epoch in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let msg = WireMessage {
            kind: MessageKind::from_u8(kind).unwrap(),
            channel,
            reply_to: reply,
            corr_id: corr,
            seq,
            timestamp_ns: ts,
            epoch,
            payload: bytes::Bytes::from(payload),
        };
        let encoded = msg.encode().unwrap();
        prop_assert_eq!(WireMessage::decode(&encoded).unwrap(), msg);
    }

    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = WireMessage::decode(&bytes);
    }

    #[test]
    fn image_codec_roundtrip_lossless(
        width in 1u32..48,
        height in 1u32..48,
        seed in any::<u64>(),
        seq in any::<u64>(),
        ts in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pixels: Vec<u8> = (0..width as usize * height as usize).map(|_| rng.gen()).collect();
        let frame = Frame::from_pixels(width, height, pixels, seq, ts);
        let decoded = codec::decode(&codec::encode(&frame, codec::Quality::LOSSLESS)).unwrap();
        prop_assert_eq!(decoded.pixels(), frame.pixels());
        prop_assert_eq!(decoded.seq(), seq);
        prop_assert_eq!(decoded.timestamp_ns(), ts);
    }

    #[test]
    fn image_codec_lossy_error_bounded(
        shift in 1u8..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pixels: Vec<u8> = (0..32 * 32).map(|_| rng.gen()).collect();
        let frame = Frame::from_pixels(32, 32, pixels, 0, 0);
        let quality = codec::Quality::new(shift);
        let decoded = codec::decode(&codec::encode(&frame, quality)).unwrap();
        let max_err = frame
            .pixels()
            .iter()
            .zip(decoded.pixels())
            .map(|(a, b)| a.abs_diff(*b))
            .max()
            .unwrap();
        prop_assert!(max_err <= quality.max_error());
    }

    #[test]
    fn image_codec_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::decode(&bytes);
    }

    #[test]
    fn endpoint_display_parse_roundtrip(
        bind in any::<bool>(),
        inproc in any::<bool>(),
        name in "[a-z][a-z0-9_]{0,16}",
        port in 1u16..u16::MAX,
    ) {
        use videopipe::net::EndpointMode;
        let mode = if bind { EndpointMode::Bind } else { EndpointMode::Connect };
        let ep = if inproc {
            Endpoint::inproc(name, mode)
        } else if bind {
            Endpoint::bind_tcp(port)
        } else {
            Endpoint::connect_tcp(name, port)
        };
        let reparsed: Endpoint = ep.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, ep);
    }

    #[test]
    fn credit_controller_invariants(credits in 1u32..8, ops in proptest::collection::vec(any::<bool>(), 0..256)) {
        let mut fc = CreditController::new(credits);
        for admit in ops {
            if admit {
                fc.try_admit();
            } else {
                fc.complete();
            }
            prop_assert!(fc.in_flight() <= fc.credits());
            prop_assert_eq!(fc.admitted(), fc.completed() + u64::from(fc.in_flight()));
        }
    }

    #[test]
    fn credit_controller_never_leaks_under_fault_interleavings(
        credits in 1u32..8,
        ops in proptest::collection::vec(0u8..3, 0..512),
    ) {
        // Arbitrary interleavings of admissions, completions and error-path
        // credit returns — including spurious completions/faults with
        // nothing in flight — must never leak a credit (in_flight stuck
        // above what was admitted) or double-return one (in_flight
        // exceeding credits, or accounting drift).
        let mut fc = CreditController::new(credits);
        for op in ops {
            match op {
                0 => {
                    fc.try_admit();
                }
                1 => fc.complete(),
                _ => fc.fault(),
            }
            prop_assert!(fc.in_flight() <= fc.credits());
            prop_assert_eq!(
                fc.admitted(),
                fc.completed() + fc.faulted() + u64::from(fc.in_flight())
            );
        }
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(samples in proptest::collection::vec(1u64..10_000_000_000, 1..200)) {
        let mut hist = LatencyHistogram::new();
        for s in &samples {
            hist.record(*s);
        }
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = hist.quantile_ns(q);
            prop_assert!(v >= last, "quantiles must be monotone");
            prop_assert!(v >= hist.min_ns() && v <= hist.max_ns());
            last = v;
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
    }

    #[test]
    fn pose_flatten_roundtrip(pose in arb_pose()) {
        let back = Pose::from_flat(&pose.flatten()).unwrap();
        prop_assert_eq!(back, pose);
    }
}
