//! Reactor scale + chaos stress: 1,000 concurrent pipelines with mixed
//! fault injection must complete with ≥90% delivery, zero wedged
//! pipelines, and a thread count bounded by cores + a small constant —
//! the load that motivated replacing thread-per-module execution
//! (ISSUE 7 / DESIGN.md §5.11).

use std::sync::Arc;
use std::time::{Duration, Instant};
use videopipe::core::deploy::{plan, DeploymentPlan, DeviceSpec, Placement};
use videopipe::core::prelude::*;
use videopipe::core::reactor::{ReactorConfig, ReactorRuntime};
use videopipe::core::service::{ChaosMode, ChaosService, ServiceCost};
use videopipe::media::{Frame, FrameBuf, FrameStore};

struct Src;
impl Module for Src {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::FrameTick { t_ns } = event {
            let frame: Frame = FrameBuf::new(16, 16).freeze(ctx.header().frame_seq, t_ns);
            let id = ctx.frame_store().insert(frame);
            ctx.call_module("mid", Payload::FrameRef(id))?;
        }
        Ok(())
    }
}

struct Mid;
impl Module for Mid {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::Message(msg) = event {
            let Payload::FrameRef(id) = msg.payload else {
                return Err(PipelineError::BadPayload("expected frame"));
            };
            let frame = ctx.frame_store().get(id)?;
            let resp = ctx.call_service(
                "doubler",
                ServiceRequest::new("double", Payload::Count(frame.seq())),
            );
            ctx.frame_store().release(id);
            ctx.call_module("sink", resp?.payload)?;
        }
        Ok(())
    }
}

struct Sink;
impl Module for Sink {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::Message(_) = event {
            ctx.signal_source()?;
        }
        Ok(())
    }
}

struct Doubler {
    cost: Duration,
}
impl Service for Doubler {
    fn name(&self) -> &str {
        "doubler"
    }
    fn handle(
        &self,
        request: &ServiceRequest,
        _store: &FrameStore,
    ) -> Result<ServiceResponse, PipelineError> {
        match request.payload {
            Payload::Count(n) => Ok(ServiceResponse::new(Payload::Count(n * 2))),
            ref other => Err(PipelineError::Service {
                service: "doubler".into(),
                reason: format!("expected count, got {}", other.kind_name()),
            }),
        }
    }
    fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
        ServiceCost::flat(self.cost)
    }
}

fn stress_plan(name: &str) -> DeploymentPlan {
    let spec = PipelineSpec::new(name)
        .with_module(ModuleSpec::new("src", "Src").with_next("mid"))
        .with_module(
            ModuleSpec::new("mid", "Mid")
                .with_service("doubler")
                .with_next("sink"),
        )
        .with_module(ModuleSpec::new("sink", "Sink"));
    let devices = vec![DeviceSpec::new("one", 1.0)
        .with_containers(1)
        .with_service("doubler")];
    let placement = Placement::new()
        .assign("src", "one")
        .assign("mid", "one")
        .assign("sink", "one");
    plan(&spec, &devices, &placement).unwrap()
}

fn module_registry() -> ModuleRegistry {
    let mut modules = ModuleRegistry::new();
    modules.register("Src", || Box::new(Src));
    modules.register("Mid", || Box::new(Mid));
    modules.register("Sink", || Box::new(Sink));
    modules
}

fn service_registry(chaos: Option<ChaosMode>) -> ServiceRegistry {
    let mut services = ServiceRegistry::new();
    let doubler: Arc<dyn Service> = Arc::new(Doubler {
        cost: Duration::from_millis(1),
    });
    match chaos {
        Some(mode) => {
            services.install(Arc::new(ChaosService::with_mode(doubler, mode)) as Arc<dyn Service>)
        }
        None => services.install(doubler),
    }
    services
}

/// OS threads of this process, from /proc/self/status (Linux CI target).
fn os_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Serializes the two chaos-stress variants: each deploys 1,000 pipelines
/// and measures process-wide thread counts, so overlapping runs would see
/// each other's threads and load.
static STRESS_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The 1,000-pipeline chaos run at a given worker count. Running it at
/// both `workers=1` and `workers=cores` pins semantics equivalence: the
/// multi-core scheduler (local queues, stealing, sharded timers) must
/// change throughput only, never delivery, credit conservation or
/// wedge-freedom.
fn chaos_stress(workers: usize) {
    let _serial = STRESS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const PIPELINES: usize = 1_000;
    let modules = module_registry();
    let clean = service_registry(None);
    // A chaos-matrix subset: deterministic every-Nth failures, service
    // panics (executor crashes) and seeded probabilistic failures. Delay
    // modes are covered by the threaded chaos matrix; here the point is
    // volume.
    let flaky = service_registry(Some(ChaosMode::FailEveryN(5)));
    let panicky = service_registry(Some(ChaosMode::PanicEveryN(9)));
    let coinflip = service_registry(Some(ChaosMode::FailWithProbability {
        seed: 7,
        probability: 0.1,
    }));

    let mut rt = ReactorRuntime::new(ReactorConfig {
        workers,
        ..ReactorConfig::default()
    });
    let threads_before = os_thread_count();
    let base_threads = rt.thread_count();
    for i in 0..PIPELINES {
        let services = match i % 7 {
            0 => &flaky,
            3 => &panicky,
            5 => &coinflip,
            _ => &clean,
        };
        let config = RuntimeConfig {
            fps: 10.0,
            credits: 1,
            resilience: ResilienceConfig {
                // Zero-backoff retries: chaos failures are transient by
                // construction, so three attempts recover nearly all.
                retry: RetryPolicy::exponential(3, Duration::ZERO, Duration::ZERO),
                ..ResilienceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        rt.add_pipeline(
            &stress_plan(&format!("stress-{i}")),
            &modules,
            services,
            config,
        )
        .unwrap();
    }
    assert_eq!(rt.pipeline_count(), PIPELINES);
    // Deploying 1,000 pipelines must not spawn a single extra thread.
    assert_eq!(rt.thread_count(), base_threads);
    let threads_after = os_thread_count();
    assert!(
        threads_after <= threads_before,
        "deploy grew the process thread count: {threads_before} -> {threads_after}"
    );

    let started = Instant::now();
    let reports = rt.run_until_total_deliveries(3 * PIPELINES as u64, Duration::from_secs(180));
    let elapsed = started.elapsed();

    let mut delivered = 0u64;
    let mut faulted = 0u64;
    let mut wedged = Vec::new();
    for (i, report) in reports.iter().enumerate() {
        delivered += report.metrics.frames_delivered;
        faulted += report.metrics.frames_faulted;
        if report.metrics.frames_delivered == 0 {
            wedged.push(i);
        }
        // Credit conservation per pipeline: nothing leaked under chaos.
        assert_eq!(
            report.metrics.frames_admitted,
            report.metrics.frames_delivered
                + report.metrics.frames_faulted
                + u64::from(report.metrics.in_flight_at_end),
            "pipeline {i} leaked credits"
        );
    }
    assert!(
        delivered >= 3 * PIPELINES as u64,
        "only {delivered} frames delivered fleet-wide in {elapsed:?}"
    );
    assert!(
        wedged.is_empty(),
        "{} wedged pipelines (first few: {:?})",
        wedged.len(),
        &wedged[..wedged.len().min(5)]
    );
    let attempted = delivered + faulted;
    assert!(
        delivered * 10 >= attempted * 9,
        "delivery ratio below 90%: {delivered}/{attempted}"
    );
    // The scheduler telemetry covers every worker and accounts real work.
    let sched = &reports[0].scheduler;
    assert_eq!(sched.len(), workers, "one stats entry per worker");
    let tasks_run: u64 = sched.iter().map(|w| w.tasks_run).sum();
    assert!(tasks_run > 0, "workers reported zero tasks run");
}

#[test]
fn one_thousand_pipelines_with_mixed_faults_deliver() {
    chaos_stress(1);
}

#[test]
fn one_thousand_pipelines_with_mixed_faults_deliver_multicore() {
    chaos_stress(
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    );
}

#[test]
fn slow_modeled_service_does_not_starve_cohosted_pipelines() {
    // Satellite: modeled service costs are timer deferrals, not worker
    // sleeps. One worker, pipeline A's service models 80ms per call and
    // pipeline B's models 1ms; if dispatch slept out the model, the lone
    // worker would spend ~100% of wall time asleep on A and B would
    // starve. With deferral, B streams freely.
    let _serial = STRESS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let modules = module_registry();
    let mut slow = ServiceRegistry::new();
    slow.install(Arc::new(Doubler {
        cost: Duration::from_millis(80),
    }) as Arc<dyn Service>);
    let mut fast = ServiceRegistry::new();
    fast.install(Arc::new(Doubler {
        cost: Duration::from_millis(1),
    }) as Arc<dyn Service>);

    let mut rt = ReactorRuntime::new(ReactorConfig {
        workers: 1,
        ..ReactorConfig::default()
    });
    let config = |fps: f64| RuntimeConfig {
        fps,
        credits: 2,
        time_scale: 1.0,
        ..RuntimeConfig::default()
    };
    let a = rt
        .add_pipeline(&stress_plan("slow"), &modules, &slow, config(50.0))
        .unwrap();
    let b = rt
        .add_pipeline(&stress_plan("fast"), &modules, &fast, config(100.0))
        .unwrap();

    let reports = rt.run_for(Duration::from_secs(2));
    let slow_delivered = reports[a].metrics.frames_delivered;
    let fast_delivered = reports[b].metrics.frames_delivered;
    assert!(
        slow_delivered >= 1,
        "slow pipeline made no progress: {:?}",
        reports[a].errors
    );
    // B is paced at 100 fps; even half rate over 2s is 100 frames. A
    // starved worker would leave it near zero.
    assert!(
        fast_delivered >= 60,
        "fast pipeline starved behind slow modeled service: {fast_delivered} delivered \
         (slow pipeline: {slow_delivered})"
    );
}
