//! End-to-end integration: the full fitness application running on the
//! *threaded* local runtime — real frames, real pose detection, real
//! classifiers, real inter-module channels — no simulation involved.

use std::time::Duration;
use videopipe::apps::fitness;
use videopipe::core::prelude::*;

fn run_fitness_threaded(plan: &DeploymentPlan) -> videopipe::core::runtime::RunReport {
    let modules = fitness::module_registry(9);
    let services = fitness::service_registry(9);
    let runtime = LocalRuntime::deploy(
        plan,
        &modules,
        &services,
        RuntimeConfig {
            fps: 60.0,
            ..RuntimeConfig::default()
        },
    )
    .expect("deploy");
    // Generous deadline: the full-workspace debug test run executes many
    // heavy suites in parallel and this test does real ML per frame.
    runtime.run_until_deliveries(30, Duration::from_secs(120))
}

#[test]
fn fitness_pipeline_runs_on_real_threads() {
    let report = run_fitness_threaded(&fitness::videopipe_plan().unwrap());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        report.metrics.frames_delivered >= 30,
        "only {} frames delivered",
        report.metrics.frames_delivered
    );
    // All five stages produced latency samples.
    for stage in [
        "video_streaming",
        "pose_detection",
        "activity_recognition",
        "rep_counter",
        "display",
    ] {
        assert!(
            report.metrics.stages.contains_key(stage),
            "missing stage {stage}"
        );
    }
    // The display actually rendered frames with labels.
    assert!(
        report.logs.iter().any(|l| l.contains("activity=")),
        "no display output in {:?}",
        report.logs.iter().take(5).collect::<Vec<_>>()
    );
    // Rep counter calibrated during the run.
    assert!(report.logs.iter().any(|l| l.contains("calibrated")));
}

#[test]
fn fitness_pipeline_runs_over_real_tcp_sockets() {
    // Same application, but every cross-device hop (phone → desktop frame,
    // desktop → tv results, tv → phone completion signal) goes over real
    // loopback TCP with the wire codec.
    use videopipe::core::runtime::EdgeTransport;
    let modules = fitness::module_registry(9);
    let services = fitness::service_registry(9);
    let runtime = LocalRuntime::deploy(
        &fitness::videopipe_plan().unwrap(),
        &modules,
        &services,
        RuntimeConfig {
            fps: 60.0,
            transport: EdgeTransport::Tcp,
            ..RuntimeConfig::default()
        },
    )
    .expect("deploy");
    let report = runtime.run_until_deliveries(30, Duration::from_secs(120));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        report.metrics.frames_delivered >= 30,
        "only {} frames over TCP",
        report.metrics.frames_delivered
    );
    assert!(report.logs.iter().any(|l| l.contains("activity=")));
}

#[test]
fn baseline_topology_also_runs_on_real_threads() {
    let report = run_fitness_threaded(&fitness::baseline_plan().unwrap());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(report.metrics.frames_delivered >= 30);
}

#[test]
fn gesture_pipeline_toggles_the_light_on_real_threads() {
    use std::sync::Arc;
    use videopipe::apps::gesture;
    use videopipe::apps::iot::IotHub;
    use videopipe::media::motion::ExerciseKind;

    let hub = Arc::new(IotHub::new());
    let plan = gesture::videopipe_plan().unwrap();
    let modules = gesture::module_registry(5, ExerciseKind::Clap, Arc::clone(&hub));
    let services = gesture::service_registry(5);
    let runtime = LocalRuntime::deploy(
        &plan,
        &modules,
        &services,
        RuntimeConfig {
            fps: 60.0,
            ..RuntimeConfig::default()
        },
    )
    .expect("deploy");
    // Enough frames for the 15-pose window plus the 3-label confirmation.
    let report = runtime.run_until_deliveries(50, Duration::from_secs(120));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        hub.command_count() > 0,
        "clapping should toggle the light; logs: {:?}",
        report.logs.iter().take(10).collect::<Vec<_>>()
    );
    assert!(hub.light_on() || hub.command_count().is_multiple_of(2));
}
