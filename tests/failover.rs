//! Self-healing acceptance: a mid-pipeline device crashes at t = 5 s and
//! the scenario recovers automatically — the loss is detected via missed
//! heartbeats, placement is recomputed over the survivors, the stateful
//! module resumes from its last checkpoint, in-flight frames of the dead
//! epoch are fenced (credits reclaimed), and deliveries continue without
//! double-counting. With failover disabled the same scenario demonstrably
//! stalls.

use std::sync::Arc;
use std::time::Duration;
use videopipe::core::prelude::*;
use videopipe::media::FrameStore;
use videopipe::sim::{FailoverConfig, FaultPlan, Scenario, ScenarioReport, SimProfile};

/// Source minting one message per admitted tick.
struct Src;
impl Module for Src {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::FrameTick { t_ns } = event {
            ctx.call_module("work", Payload::Count(t_ns))?;
        }
        Ok(())
    }
}

/// Stateful mid-pipeline worker: calls the `double` service on every frame
/// and keeps a running tally. The tally is the state that must survive the
/// crash — it checkpoints as eight big-endian bytes and logs once when an
/// instance resumes from a restored snapshot.
struct Tally {
    count: u64,
    restored: Option<u64>,
}
impl Module for Tally {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::Message(msg) = event {
            if let Some(from) = self.restored.take() {
                ctx.log(&format!("resumed from {from}"));
            }
            let resp = ctx.call_service("double", ServiceRequest::new("go", msg.payload))?;
            self.count += 1;
            ctx.log(&format!("tally {}", self.count));
            ctx.call_module("sink", resp.payload)?;
        }
        Ok(())
    }
    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.count.to_be_bytes().to_vec())
    }
    fn restore(&mut self, snapshot: &[u8]) {
        if let Ok(bytes) = <[u8; 8]>::try_from(snapshot) {
            self.count = u64::from_be_bytes(bytes);
            self.restored = Some(self.count);
        }
    }
}

/// Sink returning the flow-control credit.
struct Sink;
impl Module for Sink {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::Message(_) = event {
            ctx.signal_source()?;
        }
        Ok(())
    }
}

/// A cheap stateless service, bound on both the crashing device and the
/// spare so the replanner has somewhere to rebind.
struct Doubler;
impl Service for Doubler {
    fn name(&self) -> &str {
        "double"
    }
    fn handle(
        &self,
        request: &ServiceRequest,
        _store: &FrameStore,
    ) -> Result<ServiceResponse, PipelineError> {
        match request.payload {
            Payload::Count(n) => Ok(ServiceResponse::new(Payload::Count(n.wrapping_mul(2)))),
            ref other => Err(PipelineError::Service {
                service: "double".into(),
                reason: format!("expected count, got {}", other.kind_name()),
            }),
        }
    }
}

/// Three devices: `edge` holds the source and sink, `mid` hosts the worker
/// and one copy of the service, `spare` idles with the other copy. `mid`
/// dies at `crash_at`.
fn run_scenario(crash_at: Duration, failover: bool, seed: u64) -> ScenarioReport {
    let spec = PipelineSpec::new("selfheal")
        .with_module(ModuleSpec::new("src", "Src").with_next("work"))
        .with_module(
            ModuleSpec::new("work", "Tally")
                .with_service("double")
                .with_next("sink"),
        )
        .with_module(ModuleSpec::new("sink", "Sink"));
    let devices = vec![
        DeviceSpec::new("edge", 1.0),
        DeviceSpec::new("mid", 1.0)
            .with_containers(1)
            .with_service("double"),
        DeviceSpec::new("spare", 1.0)
            .with_containers(1)
            .with_service("double"),
    ];
    let placement = Placement::new()
        .assign("src", "edge")
        .assign("work", "mid")
        .assign("sink", "edge");
    let deployed = plan(&spec, &devices, &placement).unwrap();

    let mut modules = ModuleRegistry::new();
    modules.register("Src", || Box::new(Src));
    modules.register("Tally", || {
        Box::new(Tally {
            count: 0,
            restored: None,
        })
    });
    modules.register("Sink", || Box::new(Sink));
    let mut services = ServiceRegistry::new();
    services.install(Arc::new(Doubler));

    let mut scenario = Scenario::new(SimProfile::deterministic().with_seed(seed));
    scenario.inject_faults(FaultPlan::new(seed).with_device_crash("mid", crash_at));
    if failover {
        scenario.enable_failover(FailoverConfig::default());
    }
    scenario
        .add_pipeline(&deployed, &modules, &services, 10.0, 1)
        .unwrap();
    scenario.run(Duration::from_secs(12))
}

/// The highest tally value a `Tally` instance logged.
fn max_tally(report: &ScenarioReport) -> u64 {
    report
        .logs
        .iter()
        .filter_map(|l| l.strip_prefix("work: tally "))
        .filter_map(|n| n.parse().ok())
        .max()
        .unwrap_or(0)
}

#[test]
fn mid_pipeline_device_crash_recovers_automatically() {
    let crash_at = Duration::from_secs(5);
    let report = run_scenario(crash_at, true, 11);
    let metrics = &report.pipelines[0].1;

    // The loss was detected, replanned around, and the pipeline recovered.
    assert_eq!(report.failovers.len(), 1, "{:?}", report.failovers);
    let ev = &report.failovers[0];
    assert_eq!(ev.device, "mid");
    assert_eq!(ev.crashed_at, crash_at);
    assert!(
        ev.detection_latency() < Duration::from_secs(1),
        "detection took {:?}",
        ev.detection_latency()
    );
    let mttr = ev.mttr().expect("no delivery after failover");
    assert!(mttr < Duration::from_secs(2), "MTTR {mttr:?}");

    // Surviving-epoch frames were delivered exactly once: every admitted
    // credit is accounted for (delivered, faulted at the fence, or still in
    // flight at the end) and dedup kept deliveries <= admissions.
    assert!(metrics.credits_balanced(), "{metrics:?}");
    assert!(metrics.frames_delivered <= metrics.frames_admitted);
    // Roughly 10 fps for 12 s minus the outage window: well over the ~50
    // frames a stalled run would cap at.
    assert!(
        metrics.frames_delivered > 80,
        "recovery too weak: {} delivered",
        metrics.frames_delivered
    );

    // The stateful tally moved to a survivor, restored its checkpoint, and
    // kept counting past the restored value.
    assert!(
        report.logs.iter().any(|l| l.contains("moved \"mid\"")),
        "worker never moved: {:?}",
        report
            .logs
            .iter()
            .filter(|l| l.starts_with("failover"))
            .collect::<Vec<_>>()
    );
    assert!(report
        .logs
        .iter()
        .any(|l| l.contains("restored from checkpoint")));
    let resumed_from: u64 = report
        .logs
        .iter()
        .find_map(|l| l.strip_prefix("work: resumed from "))
        .expect("tally never resumed")
        .parse()
        .unwrap();
    assert!(resumed_from > 0, "checkpoint was empty");
    assert!(
        max_tally(&report) > resumed_from,
        "tally did not advance past the restored value {resumed_from}"
    );
}

#[test]
fn the_same_crash_stalls_without_failover() {
    let crash_at = Duration::from_secs(5);
    let stalled = run_scenario(crash_at, false, 11);
    let healed = run_scenario(crash_at, true, 11);
    let m_stalled = &stalled.pipelines[0].1;
    let m_healed = &healed.pipelines[0].1;

    // Without failover the in-flight frame dies with the device and its
    // credit never comes back: admission freezes at the crash.
    assert!(stalled.failovers.is_empty());
    assert_eq!(m_stalled.in_flight_at_end, 1, "{m_stalled:?}");
    assert!(
        m_stalled.frames_delivered <= 51,
        "expected a stall at ~5 s x 10 fps: {} delivered",
        m_stalled.frames_delivered
    );
    assert!(
        m_healed.frames_delivered > m_stalled.frames_delivered + 30,
        "failover gained too little: {} vs {}",
        m_healed.frames_delivered,
        m_stalled.frames_delivered
    );
}

/// Fixed-seed smoke for CI (`scripts/check.sh`): one fast deterministic
/// crash-and-recover cycle with exact replay.
#[test]
fn device_crash_smoke_is_deterministic() {
    let run = || {
        let report = run_scenario(Duration::from_secs(2), true, 7);
        let m = &report.pipelines[0].1;
        assert!(m.credits_balanced(), "{m:?}");
        assert_eq!(report.failovers.len(), 1);
        (
            m.frames_delivered,
            m.frames_faulted,
            report.failovers[0].mttr(),
        )
    };
    let (d1, f1, mttr1) = run();
    let (d2, f2, mttr2) = run();
    assert_eq!((d1, f1, mttr1), (d2, f2, mttr2));
    assert!(mttr1.is_some());
}
