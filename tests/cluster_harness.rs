//! Cluster chaos harness: real `videopipe-node` / `videopipe-coordinator`
//! processes under injected faults (ISSUE PR-9 acceptance).
//!
//! Each test declares a [`ClusterScenario`] and runs it through the
//! [`LocalProcessRunner`] against the freshly built binaries. The tests
//! serialize on a global gate: every scenario spawns several OS processes
//! hosting hundreds of pipelines, and timing assertions (detection < 1 s,
//! MTTR < 2 s) are only fair when scenarios do not fight for cores.

use std::sync::Mutex;
use std::time::Duration;

use videopipe::cluster::scenario::{ClusterScenario, Fault, LocalProcessRunner};

/// Serializes scenarios (see module docs).
static GATE: Mutex<()> = Mutex::new(());

fn runner() -> LocalProcessRunner {
    LocalProcessRunner::new(
        env!("CARGO_BIN_EXE_videopipe-coordinator"),
        env!("CARGO_BIN_EXE_videopipe-node"),
    )
}

/// The ISSUE acceptance scenario: 3 nodes, 200 pipelines, SIGKILL one
/// node mid-run. Detection < 1 s, fleet MTTR < 2 s, ≥ 90 % delivery,
/// exactly-once preserved, nobody wedges.
#[test]
fn three_node_kill_recover() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let scenario = ClusterScenario::new("kill-recover", 3, 200)
        .fps(20.0)
        .run_for(Duration::from_secs(7))
        .with_fault(Fault::KillNode {
            node: 1,
            at: Duration::from_millis(2500),
        });
    let outcome = runner().run(&scenario).expect("scenario runs");

    assert_eq!(outcome.failovers, 1, "exactly one confirmed node loss");
    assert!(
        outcome.max_detect_ms > 0.0 && outcome.max_detect_ms < 1000.0,
        "detection latency {} ms not under 1 s",
        outcome.max_detect_ms
    );
    assert!(
        outcome.max_mttr_ms > 0.0 && outcome.max_mttr_ms < 2000.0,
        "fleet MTTR {} ms not under 2 s",
        outcome.max_mttr_ms
    );
    assert!(
        outcome.delivery_ratio() >= 0.90,
        "delivery ratio {:.3} ({} / {}) below 90 %",
        outcome.delivery_ratio(),
        outcome.delivered,
        outcome.expected
    );
    assert_eq!(
        outcome.double_counted, 0,
        "exactly-once violated: {} frames counted twice",
        outcome.double_counted
    );
    // Nobody wedged: the coordinator and both survivors drained cleanly
    // on SIGTERM; the SIGKILLed node is rightly recorded as unclean.
    assert!(outcome.coordinator_clean_exit, "coordinator wedged");
    assert!(outcome.node_clean_exits[0], "node-0 wedged");
    assert!(!outcome.node_clean_exits[1], "node-1 was SIGKILLed");
    assert!(outcome.node_clean_exits[2], "node-2 wedged");
    // The orphaned third of the fleet all found a new home.
    let recovered = outcome.status.u64("failover.0.recovered");
    let orphaned = outcome.status.u64("failover.0.tenants");
    assert!(orphaned > 0, "the killed node should have hosted tenants");
    assert_eq!(recovered, orphaned, "not all orphaned tenants recovered");
}

/// Node rejoin: after confirmed loss + replan, a restarted node under the
/// same identity is re-admitted and rebalanced onto — without any frame
/// being counted twice (epoch fence + dedup across real processes).
#[test]
fn killed_node_rejoins_and_rebalances_without_double_counting() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let scenario = ClusterScenario::new("rejoin", 3, 30)
        .fps(20.0)
        .run_for(Duration::from_secs(8))
        .with_fault(Fault::KillNode {
            node: 1,
            at: Duration::from_millis(2000),
        })
        .with_fault(Fault::RestartNode {
            node: 1,
            at: Duration::from_millis(4500),
        });
    let outcome = runner().run(&scenario).expect("scenario runs");

    assert_eq!(outcome.failovers, 1, "one failover from the kill");
    assert_eq!(outcome.double_counted, 0, "rejoin double-counted frames");
    assert!(
        outcome.moves > 0,
        "rejoin should have rebalanced tenants back"
    );
    // Before teardown the restarted node was alive and hosting again.
    assert_eq!(
        outcome.pre_teardown.get("node.node-1.status"),
        Some("alive"),
        "restarted node was not re-admitted"
    );
    assert!(
        outcome.pre_teardown.u64("node.node-1.tenants") > 0,
        "restarted node hosts nothing after rebalance"
    );
    assert!(
        outcome.delivery_ratio() >= 0.85,
        "delivery ratio {:.3} collapsed across kill + rejoin",
        outcome.delivery_ratio()
    );
    // All three exit clean at the end — including the restarted node-1.
    assert!(outcome.coordinator_clean_exit, "coordinator wedged");
    assert!(
        outcome.node_clean_exits.iter().all(|&c| c),
        "a node wedged at final drain: {:?}",
        outcome.node_clean_exits
    );
}

/// Partition stand-in: SIGSTOP freezes a node past the lease (it is
/// failed over), SIGCONT revives it as a zombie still running stale
/// pipeline instances. Its stale-epoch reports must be fenced — counted
/// and refused — and exactly-once must hold fleet-wide.
#[test]
fn paused_node_resumes_as_zombie_and_is_fenced() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let scenario = ClusterScenario::new("zombie-fence", 3, 30)
        .fps(20.0)
        .run_for(Duration::from_secs(8))
        .with_fault(Fault::PauseNode {
            node: 1,
            at: Duration::from_millis(2000),
            pause: Duration::from_millis(2500),
        });
    let outcome = runner().run(&scenario).expect("scenario runs");

    assert_eq!(outcome.failovers, 1, "the frozen node must be failed over");
    assert!(
        outcome.fenced_reports > 0,
        "the revived zombie's stale-epoch reports were never fenced"
    );
    assert_eq!(
        outcome.double_counted, 0,
        "zombie reports leaked into delivery totals"
    );
    assert!(outcome.coordinator_clean_exit, "coordinator wedged");
}

/// Graceful shutdown: a faultless fleet TERMs clean — every node drains
/// (final checkpoints, retired reports, Bye), nothing is lost, nothing is
/// failed over.
#[test]
fn graceful_sigterm_drains_clean() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let scenario = ClusterScenario::new("graceful", 2, 10)
        .fps(20.0)
        .run_for(Duration::from_millis(3500));
    let outcome = runner().run(&scenario).expect("scenario runs");

    assert_eq!(outcome.failovers, 0, "faultless run reported a failover");
    assert_eq!(outcome.double_counted, 0);
    assert_eq!(outcome.duplicates, 0, "faultless run produced duplicates");
    assert!(
        outcome.delivery_ratio() >= 0.90,
        "delivery ratio {:.3} in a faultless run",
        outcome.delivery_ratio()
    );
    assert!(outcome.coordinator_clean_exit, "coordinator wedged");
    assert!(
        outcome.node_clean_exits.iter().all(|&c| c),
        "a node failed to drain on SIGTERM: {:?}",
        outcome.node_clean_exits
    );
    // Both nodes said goodbye.
    assert_eq!(outcome.status.u64("byes"), 2);
}
