//! Integration: configuration text → validated spec → deployment plan →
//! automatic placement, across crates.

use videopipe::apps::fitness;
use videopipe::core::config;
use videopipe::core::deploy::{autoplace_pinned, estimate_latency, plan, Placement};
use videopipe::sim::SimProfile;

#[test]
fn fitness_config_text_plans_and_deploys() {
    let spec = config::parse(fitness::CONFIG_TEXT).expect("parse");
    assert_eq!(spec.name, "fitness");
    let deployment =
        plan(&spec, &fitness::devices(), &fitness::videopipe_placement()).expect("plan");
    assert_eq!(deployment.remote_binding_count(), 0);
    assert_eq!(deployment.modules_on(fitness::DESKTOP).len(), 3);
}

#[test]
fn autoplace_recovers_the_paper_placement_under_affinity_pins() {
    let spec = fitness::pipeline_spec();
    let params = SimProfile::calibrated().to_cost_params(28_000);
    let pins = Placement::new()
        .assign("video_streaming", fitness::PHONE)
        .assign("display", fitness::TV);
    let (placement, cost) =
        autoplace_pinned(&spec, &fitness::devices(), &params, &pins).expect("autoplace");
    assert_eq!(placement, fitness::videopipe_placement());
    // And the modeled cost of the recovered placement beats the baseline's.
    let baseline = plan(&spec, &fitness::devices(), &fitness::baseline_placement()).unwrap();
    assert!(cost < estimate_latency(&baseline, &params));
}

#[test]
fn config_errors_surface_with_line_numbers() {
    let broken = "modules: [\n  { name: a include(\"A.js\")\n    next_module: ghost } ]";
    match config::parse(broken) {
        Err(videopipe::core::PipelineError::Validation(msg)) => {
            assert!(msg.contains("ghost"), "{msg}");
        }
        other => panic!("expected a validation error, got {other:?}"),
    }
    let syntax = "modules: [\n  { name: }\n]";
    match config::parse(syntax) {
        Err(videopipe::core::PipelineError::Config { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected a config error, got {other:?}"),
    }
}

#[test]
fn plans_reject_capability_violations() {
    use videopipe::core::prelude::DeviceSpec;
    // A phone-only home cannot host the pose service.
    let devices = vec![DeviceSpec::new("phone", 1.0)];
    let placement = {
        let mut p = Placement::new();
        for m in &fitness::pipeline_spec().modules {
            p = p.assign(m.name.clone(), "phone");
        }
        p
    };
    let err = plan(&fitness::pipeline_spec(), &devices, &placement).unwrap_err();
    assert!(matches!(
        err,
        videopipe::core::PipelineError::ServiceUnavailable { .. }
    ));
}
