//! Integration: a cross-device hop over real TCP — frame captured and
//! encoded on the "phone" process side, shipped as a length-prefixed wire
//! message, decoded and pose-detected on the "desktop" side.

use std::time::Duration;
use videopipe::core::message::Payload;
use videopipe::media::codec;
use videopipe::media::motion::{ExerciseKind, MotionClip};
use videopipe::media::{FrameStore, SourceConfig, SyntheticVideoSource};
use videopipe::ml::PoseDetector;
use videopipe::net::tcp::{TcpListenerHandle, TcpSender};
use videopipe::net::{MsgReceiver, MsgSender, WireMessage};

#[test]
fn frames_survive_a_real_tcp_hop_and_remain_detectable() {
    // "Desktop": listens for frames.
    let listener = TcpListenerHandle::bind("127.0.0.1:0").expect("bind");
    let addr = format!("127.0.0.1:{}", listener.local_port());

    // "Phone": captures and ships 10 frames.
    let sender = TcpSender::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
    let mut source = SyntheticVideoSource::new(
        SourceConfig::new(30.0).with_noise(1.0).with_seed(3),
        MotionClip::new(ExerciseKind::Squat, 2.0),
    );
    let mut truths = Vec::new();
    for i in 0..10u64 {
        let t_ns = i * 33_000_000;
        let frame = source.capture(t_ns);
        truths.push(source.ground_truth_pose(t_ns));
        let encoded = codec::encode(&frame, codec::Quality::default());
        let payload = Payload::EncodedFrame(encoded).encode();
        sender
            .send(WireMessage::data("pose_detection", i, t_ns, payload))
            .expect("send");
    }

    // Desktop side: decode, insert into the local store, detect.
    let store = FrameStore::new();
    let detector = PoseDetector::new();
    for (i, truth) in truths.iter().enumerate() {
        let msg = listener
            .recv_timeout(Duration::from_secs(5))
            .expect("frame arrives");
        assert_eq!(msg.channel, "pose_detection");
        let Payload::EncodedFrame(bytes) = Payload::decode(&msg.payload).expect("payload") else {
            panic!("expected an encoded frame");
        };
        let frame = codec::decode(&bytes).expect("frame decodes");
        assert_eq!(frame.seq(), msg.seq);
        let id = store.insert(frame);
        let detected = detector
            .detect(&store.get(id).unwrap())
            .expect("person detected after the network hop");
        let err = detected.pose.mean_joint_error(truth);
        assert!(err < 0.03, "frame {i}: joint error {err} after TCP + codec");
        store.release(id);
    }
}

#[test]
fn service_request_roundtrip_over_tcp() {
    use videopipe::core::service::{ServiceRequest, ServiceResponse};

    let listener = TcpListenerHandle::bind("127.0.0.1:0").expect("bind");
    let addr = format!("127.0.0.1:{}", listener.local_port());
    let back_listener = TcpListenerHandle::bind("127.0.0.1:0").expect("bind back");
    let back_addr = format!("127.0.0.1:{}", back_listener.local_port());

    // Client sends a request with a reply address; a server thread answers.
    let server = std::thread::spawn(move || {
        let msg = listener
            .recv_timeout(Duration::from_secs(5))
            .expect("request");
        let request = ServiceRequest::decode(&msg.payload).expect("decode request");
        assert_eq!(request.op, "classify");
        let response = ServiceResponse::new(Payload::Label {
            label: "squat".into(),
            confidence: 0.9,
        });
        let back = TcpSender::connect_retry(&msg.reply_to, Duration::from_secs(5)).unwrap();
        back.send(WireMessage::response_to(&msg, response.encode()))
            .unwrap();
    });

    let sender = TcpSender::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    let request = ServiceRequest::new("classify", Payload::Vector(vec![0.5; 16]));
    sender
        .send(WireMessage::request(
            "activity_classifier",
            back_addr,
            77,
            request.encode(),
        ))
        .unwrap();

    let reply = back_listener
        .recv_timeout(Duration::from_secs(5))
        .expect("response");
    assert_eq!(reply.corr_id, 77);
    let response = ServiceResponse::decode(&reply.payload).expect("decode response");
    match response.payload {
        Payload::Label { label, .. } => assert_eq!(label, "squat"),
        other => panic!("expected label, got {}", other.kind_name()),
    }
    server.join().unwrap();
}
