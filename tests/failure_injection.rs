//! Failure injection: a misbehaving service must not wedge the pipeline —
//! the runtime returns the frame's flow-control credit and keeps going
//! (with one credit, a single leaked credit would deadlock everything,
//! so this exercises the most fragile part of the §2.3 design).

use std::sync::Arc;
use std::time::Duration;
use videopipe::apps::fitness;
use videopipe::core::prelude::*;
use videopipe::core::service::ChaosService;
use videopipe::sim::{Scenario, SimProfile};

fn chaotic_services(seed: u64, fail_every: u64) -> (ServiceRegistry, Arc<ChaosService>) {
    let mut services = fitness::service_registry(seed);
    let pose = services.get("pose_detector").expect("pose installed");
    let chaos = Arc::new(ChaosService::new(pose, fail_every));
    services.install(Arc::clone(&chaos) as Arc<dyn Service>);
    (services, chaos)
}

#[test]
fn sim_pipeline_survives_a_flaky_pose_service() {
    let (services, chaos) = chaotic_services(4, 5); // every 5th detect fails
    let mut scenario = Scenario::new(SimProfile::deterministic());
    let handle = scenario
        .add_pipeline(
            &fitness::videopipe_plan().unwrap(),
            &fitness::module_registry(4),
            &services,
            20.0,
            1,
        )
        .unwrap();
    let report = scenario.run(Duration::from_secs(20));

    // Failures were recorded...
    assert!(
        !report.errors.is_empty(),
        "injected faults should surface as errors"
    );
    assert!(report.errors.iter().all(|e| e.contains("injected fault")));
    // ...but the pipeline never stalled: deliveries continued throughout.
    let metrics = report.metrics(handle);
    assert!(
        metrics.frames_delivered > 100,
        "pipeline wedged after failures: only {} delivered",
        metrics.frames_delivered
    );
    // Roughly 1/5 of frames died at the pose stage.
    let died = chaos.calls() / 5;
    assert!(
        metrics.frames_delivered + 2 * died > chaos.calls(),
        "accounting off: {} delivered, {} calls",
        metrics.frames_delivered,
        chaos.calls()
    );
}

#[test]
fn threaded_pipeline_survives_a_flaky_pose_service() {
    let (services, _chaos) = chaotic_services(4, 4);
    let runtime = LocalRuntime::deploy(
        &fitness::videopipe_plan().unwrap(),
        &fitness::module_registry(4),
        &services,
        RuntimeConfig {
            fps: 100.0,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = runtime.run_until_deliveries(20, Duration::from_secs(30));
    assert!(
        report.metrics.frames_delivered >= 20,
        "threaded pipeline wedged: {} delivered, errors {:?}",
        report.metrics.frames_delivered,
        report.errors.iter().take(3).collect::<Vec<_>>()
    );
    assert!(!report.errors.is_empty(), "faults should be reported");
}

/// Chaos matrix: fault type × transport on the threaded runtime. Every cell
/// asserts the same envelope — the delivery target is reached (no wedge),
/// no flow-control credit leaks, and the configured resilience mechanism is
/// observed doing its job.
mod chaos_matrix {
    use super::*;
    use std::time::Instant;
    use videopipe::core::runtime::EdgeTransport;
    use videopipe::core::service::{ChaosService, ServiceCost};
    use videopipe::media::{Frame, FrameBuf, FrameStore};

    struct Src;
    impl Module for Src {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::FrameTick { t_ns } = event {
                let frame: Frame = FrameBuf::new(16, 16).freeze(ctx.header().frame_seq, t_ns);
                let id = ctx.frame_store().insert(frame);
                ctx.call_module("mid", Payload::FrameRef(id))?;
            }
            Ok(())
        }
    }

    struct Mid;
    impl Module for Mid {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(msg) = event {
                let Payload::FrameRef(id) = msg.payload else {
                    return Err(PipelineError::BadPayload("expected frame"));
                };
                let frame = ctx.frame_store().get(id)?;
                let resp = ctx.call_service(
                    "doubler",
                    ServiceRequest::new("double", Payload::Count(frame.seq())),
                );
                ctx.frame_store().release(id);
                ctx.call_module("sink", resp?.payload)?;
            }
            Ok(())
        }
    }

    struct Sink;
    impl Module for Sink {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(_) = event {
                ctx.signal_source()?;
            }
            Ok(())
        }
    }

    struct Doubler;
    impl Service for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn handle(
            &self,
            request: &ServiceRequest,
            _store: &FrameStore,
        ) -> Result<ServiceResponse, PipelineError> {
            match request.payload {
                Payload::Count(n) => Ok(ServiceResponse::new(Payload::Count(n * 2))),
                ref other => Err(PipelineError::Service {
                    service: "doubler".into(),
                    reason: format!("expected count, got {}", other.kind_name()),
                }),
            }
        }
        fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
            ServiceCost::flat(Duration::from_millis(1))
        }
    }

    /// src + sink on the phone, mid + doubler on the desktop: every frame
    /// crosses the device boundary twice, exercising both TCP directions.
    fn deploy(
        service: Arc<dyn Service>,
        transport: EdgeTransport,
        resilience: ResilienceConfig,
        batch: BatchConfig,
    ) -> LocalRuntime {
        let spec = PipelineSpec::new("chaos")
            .with_module(ModuleSpec::new("src", "Src").with_next("mid"))
            .with_module(
                ModuleSpec::new("mid", "Mid")
                    .with_service("doubler")
                    .with_next("sink"),
            )
            .with_module(ModuleSpec::new("sink", "Sink"));
        let devices = vec![
            DeviceSpec::new("phone", 1.0),
            DeviceSpec::new("desktop", 1.0)
                .with_containers(2)
                .with_service("doubler"),
        ];
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "desktop")
            .assign("sink", "phone");
        let plan = plan(&spec, &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("Src", || Box::new(Src));
        modules.register("Mid", || Box::new(Mid));
        modules.register("Sink", || Box::new(Sink));
        let mut services = ServiceRegistry::new();
        services.install(service);
        LocalRuntime::deploy(
            &plan,
            &modules,
            &services,
            RuntimeConfig {
                fps: 200.0,
                transport,
                resilience,
                batch,
                ..RuntimeConfig::default()
            },
        )
        .unwrap()
    }

    /// Every cell runs with request-at-a-time dispatch and with adaptive
    /// micro-batching, so the resilience mechanisms are exercised under
    /// both drain policies.
    fn batch_modes() -> [BatchConfig; 2] {
        [BatchConfig::disabled(), BatchConfig::up_to(8)]
    }

    /// Backstop for every cell: even if a frame is lost outright, its
    /// credit lease expires instead of wedging the single-credit source.
    fn lease() -> Option<Duration> {
        Some(Duration::from_secs(2))
    }

    #[test]
    fn seeded_failures_with_retries_meet_delivery_slo() {
        for transport in [EdgeTransport::Inproc, EdgeTransport::Tcp] {
            for batch in batch_modes() {
                let chaos = Arc::new(ChaosService::probabilistic(Arc::new(Doubler), 7, 0.1));
                let runtime = deploy(
                    chaos,
                    transport,
                    ResilienceConfig {
                        retry: RetryPolicy::exponential(
                            3,
                            Duration::from_millis(1),
                            Duration::from_millis(8),
                        ),
                        credit_timeout: lease(),
                        ..ResilienceConfig::default()
                    },
                    batch,
                );
                let report = runtime.run_until_deliveries(100, Duration::from_secs(20));
                assert!(
                    report.metrics.frames_delivered >= 100,
                    "[{transport:?}/{batch:?}] wedged: {} delivered, errors {:?}",
                    report.metrics.frames_delivered,
                    report.errors.iter().take(3).collect::<Vec<_>>()
                );
                assert!(
                    report.metrics.delivery_ratio() >= 0.9,
                    "[{transport:?}/{batch:?}] delivery ratio {:.3}",
                    report.metrics.delivery_ratio()
                );
                assert!(
                    report.metrics.credits_balanced(),
                    "[{transport:?}/{batch:?}] credit leak: {:?}",
                    report.metrics
                );
            }
        }
    }

    #[test]
    fn breaker_opens_and_recovers_during_outage_burst() {
        for batch in batch_modes() {
            let chaos = Arc::new(ChaosService::outage(
                Arc::new(Doubler),
                Duration::from_millis(400),
                Duration::from_millis(300),
            ));
            let runtime = deploy(
                chaos,
                EdgeTransport::Tcp,
                ResilienceConfig {
                    breaker_failure_threshold: 3,
                    breaker_cooldown: Duration::from_millis(50),
                    degradation: DegradationPolicy::LastKnownGood,
                    credit_timeout: lease(),
                    ..ResilienceConfig::default()
                },
                batch,
            );
            let report = runtime.run_for(Duration::from_millis(1500));
            let breaker = report
                .breakers
                .get("doubler")
                .expect("breaker snapshot for doubler");
            assert!(
                breaker.opened >= 1,
                "[{batch:?}] breaker never opened: {breaker:?}"
            );
            assert!(
                breaker.reclosed >= 1,
                "[{batch:?}] breaker never recovered half-open -> closed: {breaker:?}"
            );
            // A drained batch must not consume more than one half-open
            // probe per cooldown window: probes are bounded by the number
            // of windows the run can contain, not by batch size.
            let windows = 1 + 1500 / 50;
            assert!(
                breaker.probes <= windows,
                "[{batch:?}] batched dispatch burned probes: {breaker:?}"
            );
            // Last-known-good degradation keeps frames flowing through the
            // outage, so the delivery SLO holds across the burst.
            assert!(
                report.metrics.delivery_ratio() >= 0.9,
                "[{batch:?}] delivery ratio {:.3}: {:?}",
                report.metrics.delivery_ratio(),
                report.metrics
            );
            assert!(
                report.metrics.credits_balanced(),
                "[{batch:?}] credit leak: {:?}",
                report.metrics
            );
        }
    }

    #[test]
    fn injected_latency_trips_typed_deadlines_without_wedging() {
        // Every 10th call sleeps past the 25 ms deadline; with no retries
        // those frames die with a typed timeout and return their credit.
        for batch in batch_modes() {
            let chaos = Arc::new(ChaosService::delaying(
                Arc::new(Doubler),
                10,
                Duration::from_millis(60),
            ));
            let runtime = deploy(
                chaos,
                EdgeTransport::Inproc,
                ResilienceConfig {
                    service_call_timeout: Duration::from_millis(25),
                    credit_timeout: lease(),
                    ..ResilienceConfig::default()
                },
                batch,
            );
            let report = runtime.run_until_deliveries(50, Duration::from_secs(20));
            assert!(
                report.metrics.frames_delivered >= 50,
                "[{batch:?}] wedged: {} delivered",
                report.metrics.frames_delivered
            );
            assert!(
                report.errors.iter().any(|e| e.contains("timed out")),
                "[{batch:?}] expected typed timeouts in {:?}",
                report.errors.iter().take(3).collect::<Vec<_>>()
            );
            assert!(
                report.metrics.delivery_ratio() >= 0.85,
                "[{batch:?}] delivery ratio {:.3}",
                report.metrics.delivery_ratio()
            );
            assert!(
                report.metrics.credits_balanced(),
                "[{batch:?}] credit leak: {:?}",
                report.metrics
            );
        }
    }

    #[test]
    fn panicking_service_is_supervised_and_retried() {
        for batch in batch_modes() {
            let chaos = Arc::new(ChaosService::panicking(Arc::new(Doubler), 7));
            let runtime = deploy(
                chaos,
                EdgeTransport::Inproc,
                ResilienceConfig {
                    retry: RetryPolicy::exponential(
                        3,
                        Duration::from_millis(1),
                        Duration::from_millis(8),
                    ),
                    credit_timeout: lease(),
                    ..ResilienceConfig::default()
                },
                batch,
            );
            let report = runtime.run_until_deliveries(60, Duration::from_secs(20));
            assert!(
                report.metrics.frames_delivered >= 60,
                "[{batch:?}] wedged: {} delivered, errors {:?}",
                report.metrics.frames_delivered,
                report.errors.iter().take(3).collect::<Vec<_>>()
            );
            assert!(
                report.metrics.delivery_ratio() >= 0.9,
                "[{batch:?}] delivery ratio {:.3}",
                report.metrics.delivery_ratio()
            );
            assert!(
                report.metrics.credits_balanced(),
                "[{batch:?}] credit leak: {:?}",
                report.metrics
            );
        }
    }

    #[test]
    fn tcp_disconnect_mid_stream_recovers_and_drains() {
        for batch in batch_modes() {
            let runtime = deploy(
                Arc::new(Doubler),
                EdgeTransport::Tcp,
                ResilienceConfig {
                    credit_timeout: lease(),
                    ..ResilienceConfig::default()
                },
                batch,
            );
            // Let the stream establish, cut every TCP connection mid-flight,
            // then require the pipeline to reach its target anyway.
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut severed = 0;
            while runtime.deliveries() < 150 && Instant::now() < deadline {
                if severed == 0 && runtime.deliveries() >= 50 {
                    severed = runtime.inject_tcp_disconnect();
                    assert!(severed > 0, "tcp transport should have live peers");
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let report = runtime.finish();
            assert!(severed > 0, "[{batch:?}] disconnect was never injected");
            assert!(
                report.metrics.frames_delivered >= 150,
                "[{batch:?}] pipeline did not recover from the disconnect: {} delivered, errors {:?}",
                report.metrics.frames_delivered,
                report.errors.iter().take(3).collect::<Vec<_>>()
            );
            assert!(
                report.metrics.delivery_ratio() >= 0.9,
                "[{batch:?}] delivery ratio {:.3}",
                report.metrics.delivery_ratio()
            );
            assert!(
                report.metrics.credits_balanced(),
                "[{batch:?}] credit leak: {:?}",
                report.metrics
            );
        }
    }

    /// A sink that returns the flow-control credit TWICE per frame — the
    /// shape of at-least-once redelivery after a partition heals and the
    /// retry layer re-sends a frame that had in fact already arrived.
    struct DupSink;
    impl Module for DupSink {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(_) = event {
                ctx.signal_source()?;
                ctx.signal_source()?;
            }
            Ok(())
        }
    }

    /// Partition-heal + retry must not double-count deliveries: with
    /// outstanding-admission tracking off (no credit lease, no heartbeats),
    /// the dedup window is the only thing between a duplicate completion
    /// signal and a double-counted delivery, which pins its semantics.
    #[test]
    fn partition_heal_with_redelivery_does_not_double_count() {
        let spec = PipelineSpec::new("chaos")
            .with_module(ModuleSpec::new("src", "Src").with_next("mid"))
            .with_module(
                ModuleSpec::new("mid", "Mid")
                    .with_service("doubler")
                    .with_next("sink"),
            )
            .with_module(ModuleSpec::new("sink", "DupSink"));
        let devices = vec![
            DeviceSpec::new("phone", 1.0),
            DeviceSpec::new("desktop", 1.0)
                .with_containers(2)
                .with_service("doubler"),
        ];
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "desktop")
            .assign("sink", "phone");
        let plan = plan(&spec, &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("Src", || Box::new(Src));
        modules.register("Mid", || Box::new(Mid));
        modules.register("DupSink", || Box::new(DupSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(Doubler));
        let runtime = LocalRuntime::deploy(
            &plan,
            &modules,
            &services,
            RuntimeConfig {
                fps: 200.0,
                credits: 4,
                transport: EdgeTransport::Tcp,
                resilience: ResilienceConfig {
                    retry: RetryPolicy::exponential(
                        3,
                        Duration::from_millis(1),
                        Duration::from_millis(8),
                    ),
                    ..ResilienceConfig::default()
                },
                dedup_window: 16,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // Sever every TCP connection mid-stream (the partition), then let
        // the reconnect/retry layer heal it and drive the run to target.
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut severed = 0;
        while runtime.deliveries() < 150 && Instant::now() < deadline {
            if severed == 0 && runtime.deliveries() >= 50 {
                severed = runtime.inject_tcp_disconnect();
                assert!(severed > 0, "tcp transport should have live peers");
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let report = runtime.finish();
        assert!(severed > 0, "partition was never injected");
        assert!(
            report.metrics.frames_delivered >= 150,
            "did not heal: {} delivered, errors {:?}",
            report.metrics.frames_delivered,
            report.errors.iter().take(3).collect::<Vec<_>>()
        );
        // Every frame signalled twice, yet each was counted at most once.
        assert!(
            report.metrics.frames_delivered <= report.metrics.frames_admitted,
            "double-counted deliveries: {:?}",
            report.metrics
        );
        assert!(
            report.metrics.credits_balanced(),
            "credit leak: {:?}",
            report.metrics
        );
    }
}

#[test]
fn every_frame_failing_still_returns_credits() {
    // Worst case: the pose service never succeeds. No frame is ever
    // delivered, but the source keeps getting its credit back (admissions
    // continue), so a later service recovery would resume the pipeline.
    let (services, chaos) = chaotic_services(4, 1);
    let mut scenario = Scenario::new(SimProfile::deterministic());
    let handle = scenario
        .add_pipeline(
            &fitness::videopipe_plan().unwrap(),
            &fitness::module_registry(4),
            &services,
            20.0,
            1,
        )
        .unwrap();
    let report = scenario.run(Duration::from_secs(10));
    let metrics = report.metrics(handle);
    assert_eq!(metrics.frames_delivered, 0);
    assert!(
        chaos.calls() > 50,
        "admissions should continue despite total service failure: {} calls",
        chaos.calls()
    );
}
