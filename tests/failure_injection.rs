//! Failure injection: a misbehaving service must not wedge the pipeline —
//! the runtime returns the frame's flow-control credit and keeps going
//! (with one credit, a single leaked credit would deadlock everything,
//! so this exercises the most fragile part of the §2.3 design).

use std::sync::Arc;
use std::time::Duration;
use videopipe::apps::fitness;
use videopipe::core::prelude::*;
use videopipe::core::service::ChaosService;
use videopipe::sim::{Scenario, SimProfile};

fn chaotic_services(seed: u64, fail_every: u64) -> (ServiceRegistry, Arc<ChaosService>) {
    let mut services = fitness::service_registry(seed);
    let pose = services.get("pose_detector").expect("pose installed");
    let chaos = Arc::new(ChaosService::new(pose, fail_every));
    services.install(Arc::clone(&chaos) as Arc<dyn Service>);
    (services, chaos)
}

#[test]
fn sim_pipeline_survives_a_flaky_pose_service() {
    let (services, chaos) = chaotic_services(4, 5); // every 5th detect fails
    let mut scenario = Scenario::new(SimProfile::deterministic());
    let handle = scenario
        .add_pipeline(
            &fitness::videopipe_plan().unwrap(),
            &fitness::module_registry(4),
            &services,
            20.0,
            1,
        )
        .unwrap();
    let report = scenario.run(Duration::from_secs(20));

    // Failures were recorded...
    assert!(
        !report.errors.is_empty(),
        "injected faults should surface as errors"
    );
    assert!(report.errors.iter().all(|e| e.contains("injected fault")));
    // ...but the pipeline never stalled: deliveries continued throughout.
    let metrics = report.metrics(handle);
    assert!(
        metrics.frames_delivered > 100,
        "pipeline wedged after failures: only {} delivered",
        metrics.frames_delivered
    );
    // Roughly 1/5 of frames died at the pose stage.
    let died = chaos.calls() / 5;
    assert!(
        metrics.frames_delivered + 2 * died > chaos.calls(),
        "accounting off: {} delivered, {} calls",
        metrics.frames_delivered,
        chaos.calls()
    );
}

#[test]
fn threaded_pipeline_survives_a_flaky_pose_service() {
    let (services, _chaos) = chaotic_services(4, 4);
    let runtime = LocalRuntime::deploy(
        &fitness::videopipe_plan().unwrap(),
        &fitness::module_registry(4),
        &services,
        RuntimeConfig {
            fps: 100.0,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = runtime.run_until_deliveries(20, Duration::from_secs(30));
    assert!(
        report.metrics.frames_delivered >= 20,
        "threaded pipeline wedged: {} delivered, errors {:?}",
        report.metrics.frames_delivered,
        report.errors.iter().take(3).collect::<Vec<_>>()
    );
    assert!(!report.errors.is_empty(), "faults should be reported");
}

#[test]
fn every_frame_failing_still_returns_credits() {
    // Worst case: the pose service never succeeds. No frame is ever
    // delivered, but the source keeps getting its credit back (admissions
    // continue), so a later service recovery would resume the pipeline.
    let (services, chaos) = chaotic_services(4, 1);
    let mut scenario = Scenario::new(SimProfile::deterministic());
    let handle = scenario
        .add_pipeline(
            &fitness::videopipe_plan().unwrap(),
            &fitness::module_registry(4),
            &services,
            20.0,
            1,
        )
        .unwrap();
    let report = scenario.run(Duration::from_secs(10));
    let metrics = report.metrics(handle);
    assert_eq!(metrics.frames_delivered, 0);
    assert!(
        chaos.calls() > 50,
        "admissions should continue despite total service failure: {} calls",
        chaos.calls()
    );
}
