//! Property tests for the messaging substrate.

use proptest::prelude::*;
use videopipe_net::{Endpoint, InprocHub, MsgReceiver, MsgSender, WireMessage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-sender FIFO: messages from one sender arrive in send order.
    #[test]
    fn inproc_is_fifo_per_sender(count in 1usize..64) {
        let hub = InprocHub::new();
        let rx = hub.bind("sink").unwrap();
        let tx = hub.connect("sink").unwrap();
        for i in 0..count as u64 {
            tx.send(WireMessage::signal("sink", i)).unwrap();
        }
        for i in 0..count as u64 {
            prop_assert_eq!(rx.recv().unwrap().seq, i);
        }
    }

    /// Endpoint parsing never panics on arbitrary strings.
    #[test]
    fn endpoint_parse_never_panics(input in "\\PC{0,64}") {
        let _ = input.parse::<Endpoint>();
    }

    /// Whatever parses also displays back to something that reparses
    /// equal (full normalisation round trip).
    #[test]
    fn endpoint_parse_display_fixpoint(input in "(bind|connect)#(tcp://[a-z*][a-z0-9.*]{0,10}:[0-9]{1,5}|inproc://[a-z]{1,10})") {
        if let Ok(ep) = input.parse::<Endpoint>() {
            let redisplayed: Endpoint = ep.to_string().parse().unwrap();
            prop_assert_eq!(redisplayed, ep);
        }
    }

    /// Stream framing: any sequence of messages written to a buffer reads
    /// back identically, then reports a clean disconnect.
    #[test]
    fn stream_framing_roundtrip(seqs in proptest::collection::vec((any::<u64>(), 0usize..256), 0..12)) {
        use videopipe_net::{read_frame, write_frame};
        let mut buf = Vec::new();
        let messages: Vec<WireMessage> = seqs
            .iter()
            .map(|(seq, len)| WireMessage::data("chan", *seq, 0, bytes::Bytes::from(vec![1u8; *len])))
            .collect();
        for msg in &messages {
            write_frame(&mut buf, msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in &messages {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap(), msg);
        }
        prop_assert!(read_frame(&mut cursor).is_err());
    }
}
