//! Property tests for the messaging substrate.

use proptest::prelude::*;
use std::sync::Arc;
use videopipe_net::{
    BufferPool, Endpoint, FrameBatch, InprocHub, MsgReceiver, MsgSender, StreamDecoder,
    WireMessage, MAX_FRAME_LEN,
};

/// Writer that accepts at most `cap` bytes per call — models a kernel that
/// keeps returning short writes.
struct ShortWriter {
    out: Vec<u8>,
    cap: usize,
}

impl std::io::Write for ShortWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.cap);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The PR 9 codec: every frame batch-encoded contiguously. The zero-copy
/// path must stay byte-identical to this.
fn legacy_framing(msgs: &[WireMessage]) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    for msg in msgs {
        msg.encode_framed_into(&mut buf).unwrap();
    }
    buf.to_vec()
}

/// Strategy over well-formed wire messages (all kinds, arbitrary ids and
/// payload bytes) — the seed for the corruption properties below.
fn arb_wire_message() -> impl Strategy<Value = WireMessage> {
    (
        0u8..5,
        "[a-z0-9_/.]{0,32}",
        "[a-z0-9_/.]{0,32}",
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(
            |(kind, channel, reply_to, corr_id, seq, ts, epoch, payload)| {
                let mut msg = WireMessage::data(channel, seq, ts, bytes::Bytes::from(payload));
                msg.kind = videopipe_net::MessageKind::from_u8(kind).expect("kind in range");
                msg.reply_to = reply_to;
                msg.corr_id = corr_id;
                msg.epoch = epoch;
                msg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-sender FIFO: messages from one sender arrive in send order.
    #[test]
    fn inproc_is_fifo_per_sender(count in 1usize..64) {
        let hub = InprocHub::new();
        let rx = hub.bind("sink").unwrap();
        let tx = hub.connect("sink").unwrap();
        for i in 0..count as u64 {
            tx.send(WireMessage::signal("sink", i)).unwrap();
        }
        for i in 0..count as u64 {
            prop_assert_eq!(rx.recv().unwrap().seq, i);
        }
    }

    /// Endpoint parsing never panics on arbitrary strings.
    #[test]
    fn endpoint_parse_never_panics(input in "\\PC{0,64}") {
        let _ = input.parse::<Endpoint>();
    }

    /// Whatever parses also displays back to something that reparses
    /// equal (full normalisation round trip).
    #[test]
    fn endpoint_parse_display_fixpoint(input in "(bind|connect)#(tcp://[a-z*][a-z0-9.*]{0,10}:[0-9]{1,5}|inproc://[a-z]{1,10})") {
        if let Ok(ep) = input.parse::<Endpoint>() {
            let redisplayed: Endpoint = ep.to_string().parse().unwrap();
            prop_assert_eq!(redisplayed, ep);
        }
    }

    /// Stream framing: any sequence of messages written to a buffer reads
    /// back identically, then reports a clean disconnect.
    #[test]
    fn stream_framing_roundtrip(seqs in proptest::collection::vec((any::<u64>(), 0usize..256), 0..12)) {
        use videopipe_net::{read_frame, write_frame};
        let mut buf = Vec::new();
        let messages: Vec<WireMessage> = seqs
            .iter()
            .map(|(seq, len)| WireMessage::data("chan", *seq, 0, bytes::Bytes::from(vec![1u8; *len])))
            .collect();
        for msg in &messages {
            write_frame(&mut buf, msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in &messages {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap(), msg);
        }
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    /// Decode is total on arbitrary bytes: it never panics, and when it
    /// does accept, the input was a canonical encoding (re-encoding the
    /// result reproduces the exact input — no bytes silently ignored).
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(msg) = WireMessage::decode(&bytes) {
            let reencoded = msg.encode().unwrap();
            prop_assert_eq!(reencoded.as_ref(), bytes.as_slice());
        }
    }

    /// Every proper prefix of a valid encoding is a typed error: a frame
    /// cut anywhere mid-stream can never decode (or panic).
    #[test]
    fn decode_truncation_is_typed_error(msg in arb_wire_message(), frac in 0.0f64..1.0) {
        let encoded = msg.encode().unwrap();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((encoded.len() as f64) * frac) as usize;
        let cut = cut.min(encoded.len().saturating_sub(1));
        prop_assert!(WireMessage::decode(&encoded[..cut]).is_err(), "prefix of {} bytes decoded", cut);
    }

    /// A single flipped bit anywhere in a valid encoding either yields a
    /// typed error or decodes to a message that canonically re-encodes to
    /// the corrupted bytes — never a panic, never a silent misparse.
    #[test]
    fn decode_bit_flip_never_panics(msg in arb_wire_message(), pos in any::<u64>(), bit in 0u8..8) {
        let mut encoded = msg.encode().unwrap().to_vec();
        #[allow(clippy::cast_possible_truncation)]
        let idx = (pos % encoded.len() as u64) as usize;
        encoded[idx] ^= 1 << bit;
        if let Ok(corrupted) = WireMessage::decode(&encoded) {
            let reencoded = corrupted.encode().unwrap();
            prop_assert_eq!(reencoded.as_ref(), encoded.as_slice());
        }
    }

    /// A hostile payload-length prefix (up to u32::MAX, far beyond the
    /// actual buffer) is rejected by bounds checks BEFORE any allocation:
    /// decode returns a typed error instead of reserving gigabytes.
    #[test]
    fn decode_hostile_payload_length_rejected(msg in arb_wire_message(), claimed in 0u32..u32::MAX) {
        let mut encoded = msg.encode().unwrap().to_vec();
        // The frame layout ends with payload_len(4) + payload bytes:
        // overwrite the length field with an arbitrary claim and drop the
        // real payload so the claim always exceeds what's present.
        let len_at = encoded.len() - msg.payload.len() - 4;
        encoded.truncate(len_at);
        encoded.extend_from_slice(&claimed.to_be_bytes());
        let result = WireMessage::decode(&encoded);
        if claimed == 0 {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err(), "claimed {} bytes with none present", claimed);
        }
    }

    /// Stream reads with a hostile frame-length prefix fail fast: any
    /// declared length beyond MAX_FRAME_LEN is a typed error without
    /// buffering a byte of body.
    #[test]
    fn read_frame_hostile_length_rejected(extra in 1u32..u32::MAX - MAX_FRAME_LEN as u32, garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        use videopipe_net::read_frame;
        let mut buf = (MAX_FRAME_LEN as u32 + extra).to_be_bytes().to_vec();
        buf.extend_from_slice(&garbage);
        let mut cursor = std::io::Cursor::new(buf);
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    /// Fleet control-plane payloads inherit the same totality: arbitrary
    /// bytes never panic ControlMsg::decode, and valid messages roundtrip.
    #[test]
    fn control_decode_total_and_roundtrips(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        use videopipe_net::control::ControlMsg;
        let _ = ControlMsg::decode(&bytes);
        let msg = ControlMsg::Heartbeat { node_id: "n".into(), seq: bytes.len() as u64 };
        prop_assert_eq!(ControlMsg::decode(&msg.encode()).unwrap(), msg);
    }

    /// Vectored encoding is byte-identical to the PR 9 contiguous codec,
    /// no matter how short the kernel cuts each write or how tight the
    /// per-flush byte/iovec caps are.
    #[test]
    fn vectored_encode_matches_legacy_codec(
        msgs in proptest::collection::vec(arb_wire_message(), 0..8),
        cap in 1usize..200,
        max_bytes in 16usize..4096,
        max_iovecs in 1usize..16,
    ) {
        let legacy = legacy_framing(&msgs);
        let mut batch = FrameBatch::new();
        for msg in &msgs {
            batch.stage(msg).unwrap();
        }
        prop_assert_eq!(batch.pending_bytes(), legacy.len());
        let mut writer = ShortWriter { out: Vec::new(), cap };
        while !batch.is_empty() {
            let (_, n) = batch.write_some(&mut writer, max_bytes, max_iovecs).unwrap();
            prop_assert!(n > 0, "write made no progress");
        }
        prop_assert_eq!(writer.out, legacy);
    }

    /// Pooled streaming decode recovers every message intact from the
    /// legacy byte stream, however the reads are chunked (partial-frame
    /// interleavings included), leaving neither residue nor corruption.
    #[test]
    fn pooled_decode_matches_legacy_codec(
        msgs in proptest::collection::vec(arb_wire_message(), 0..8),
        chunk in 1usize..300,
        pool_chunk in 64usize..2048,
    ) {
        let legacy = legacy_framing(&msgs);
        let mut decoder = StreamDecoder::new(Arc::new(BufferPool::new(pool_chunk, 4)));
        let mut decoded = Vec::new();
        for piece in legacy.chunks(chunk) {
            decoder.feed(piece);
            while let Some(msg) = decoder.next_frame() {
                decoded.push(msg);
            }
        }
        prop_assert_eq!(decoded, msgs);
        prop_assert!(!decoder.is_corrupt());
        prop_assert!(!decoder.has_partial(), "bytes left after whole frames");
    }

    /// Full-duplex closure: vectored-encode under short writes, then
    /// pooled-decode under partial reads, returns the original messages —
    /// the two zero-copy halves agree end to end.
    #[test]
    fn zero_copy_roundtrip_under_interleavings(
        msgs in proptest::collection::vec(arb_wire_message(), 0..8),
        cap in 1usize..100,
        chunk in 1usize..100,
    ) {
        let mut batch = FrameBatch::new();
        for msg in &msgs {
            batch.stage(msg).unwrap();
        }
        let mut writer = ShortWriter { out: Vec::new(), cap };
        while !batch.is_empty() {
            batch.write_some(&mut writer, 4096, 8).unwrap();
        }
        let mut decoder = StreamDecoder::new(Arc::new(BufferPool::new(256, 4)));
        let mut decoded = Vec::new();
        for piece in writer.out.chunks(chunk) {
            decoder.feed(piece);
            while let Some(msg) = decoder.next_frame() {
                decoded.push(msg);
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    /// The borrow-on-decode path agrees with the copying decode on every
    /// well-formed body (and on its payload bytes exactly).
    #[test]
    fn decode_shared_matches_decode(msg in arb_wire_message()) {
        let mut framed = bytes::BytesMut::new();
        msg.encode_framed_into(&mut framed).unwrap();
        let frozen = framed.freeze();
        let body = frozen.slice(4..);
        let copied = WireMessage::decode(&body).unwrap();
        let shared = WireMessage::decode_shared(&body).unwrap();
        prop_assert_eq!(&copied, &shared);
        prop_assert_eq!(&shared, &msg);
    }
}
