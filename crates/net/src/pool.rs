//! Pooled buffers for the zero-copy wire path.
//!
//! The receive path reads straight into pooled chunks that are frozen whole
//! and sliced into frame payloads without copying; the send path stages
//! frame headers in pooled arenas that vectored writes reference in place.
//! Both directions return their buffers here, and the pool's job is to hand
//! the same allocations back out instead of hitting the allocator per
//! chunk.
//!
//! Ownership rules (see DESIGN.md §5.14): a buffer leaves the pool via
//! [`BufferPool::get_scratch`]/[`BufferPool::get_arena`], is frozen into
//! [`Bytes`] once filled, and is registered back with
//! [`BufferPool::recycle`] *while frames decoded from it are still alive*.
//! The pool holds one weak-ish handle (a plain `Bytes` clone) per recycled
//! chunk; the moment every payload slice drops, that handle becomes the
//! sole owner and the next `get_*` call reclaims the allocation via
//! [`Bytes::try_into_mut`]. Nothing is ever copied to reclaim — the
//! refcount reaching one *is* the return-to-pool event.

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default pooled chunk size (bytes). One chunk typically carries a whole
/// read batch of coalesced frames, so payload slices share one allocation.
pub const DEFAULT_CHUNK: usize = 16 * 1024;

/// Free buffers retained before extras are released to the allocator.
const DEFAULT_MAX_RETAINED: usize = 32;

/// Frozen chunks tracked for refcount-drop reclamation. Beyond this the
/// oldest handle is forgotten (its memory frees normally once consumers
/// drop it) — the pool never pins unbounded history.
const MAX_PENDING_RECLAIM: usize = 32;

/// Buffers whose capacity outgrew the chunk size by this factor are not
/// retained: one 16 MiB frame must not turn the pool into a 16 MiB cache.
const OVERSIZE_FACTOR: usize = 4;

/// A pool of reusable byte buffers shared by stream decoders and frame
/// batches. Cheap to share behind an `Arc`; all methods take `&self`.
pub struct BufferPool {
    chunk: usize,
    max_retained: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    reclaimed: AtomicU64,
}

struct PoolInner {
    free: Vec<BytesMut>,
    /// Frozen chunks whose payload slices are still referenced somewhere
    /// downstream. Scanned on `get_*`: a handle with no other owners is
    /// unwrapped back into a reusable buffer.
    pending: VecDeque<Bytes>,
}

/// Counters describing how well the pool is recycling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers served from the free list.
    pub hits: u64,
    /// Buffers that had to be freshly allocated.
    pub misses: u64,
    /// Frozen chunks reclaimed after their last downstream reference
    /// dropped (a subset of `hits` once re-served).
    pub reclaimed: u64,
    /// Frozen chunks currently awaiting their refcount to drop.
    pub awaiting_reclaim: usize,
    /// Buffers currently idle on the free list.
    pub free: usize,
}

impl BufferPool {
    /// Creates a pool serving buffers of at least `chunk` bytes.
    pub fn new(chunk: usize, max_retained: usize) -> Self {
        BufferPool {
            chunk: chunk.max(64),
            max_retained,
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                pending: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
        }
    }

    /// The pool's chunk size.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// A full-length scratch buffer (`len() == capacity() >= chunk`) for
    /// reading into: contents are unspecified, callers must track their
    /// own fill level and never expose bytes they did not write.
    pub fn get_scratch(&self) -> BytesMut {
        let mut buf = self.get_any();
        if buf.len() < buf.capacity() {
            let cap = buf.capacity();
            // Zero-fill happens at most once per fresh allocation; reused
            // buffers come back already full-length.
            buf.resize(cap, 0);
        }
        buf
    }

    /// An empty append buffer (`len() == 0`, `capacity() >= chunk`) for
    /// staging encoded headers.
    pub fn get_arena(&self) -> BytesMut {
        let mut buf = self.get_any();
        buf.clear();
        buf
    }

    fn get_any(&self) -> BytesMut {
        {
            let mut inner = self.inner.lock();
            if let Some(buf) = inner.free.pop() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return buf;
            }
            // No free buffer: see whether any frozen chunk has shed its
            // last downstream reference and can be unwrapped in place.
            let mut i = 0;
            while i < inner.pending.len() {
                if inner.pending[i].is_unique() {
                    let handle = inner.pending.remove(i).expect("index in range");
                    if let Ok(buf) = handle.try_into_mut() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.reclaimed.fetch_add(1, Ordering::Relaxed);
                        crate::telemetry::POOL_RECLAIMED.fetch_add(1, Ordering::Relaxed);
                        return buf;
                    }
                    // Unreachable in practice (we held the lock and the
                    // handle was unique), but fall through harmlessly.
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::telemetry::POOL_MISSES.fetch_add(1, Ordering::Relaxed);
        BytesMut::with_capacity(self.chunk)
    }

    /// Returns a mutable buffer directly (arena swaps, growth leftovers).
    /// Oversized or surplus buffers are released to the allocator.
    pub fn put(&self, buf: BytesMut) {
        if buf.capacity() < self.chunk || buf.capacity() > self.chunk * OVERSIZE_FACTOR {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.free.len() < self.max_retained {
            inner.free.push(buf);
        }
    }

    /// Registers a frozen chunk for refcount-drop reclamation: when every
    /// other reference (decoded payloads, staged headers) drops, the next
    /// `get_*` call recovers the allocation without copying.
    pub fn recycle(&self, frozen: Bytes) {
        let mut inner = self.inner.lock();
        inner.pending.push_back(frozen);
        if inner.pending.len() > MAX_PENDING_RECLAIM {
            // Forget the oldest handle; its memory frees normally when the
            // remaining consumers drop it.
            inner.pending.pop_front();
        }
    }

    /// Current pool counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            awaiting_reclaim: inner.pending.len(),
            free: inner.free.len(),
        }
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(DEFAULT_CHUNK, DEFAULT_MAX_RETAINED)
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("chunk", &self.chunk)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_full_length_and_arena_is_empty() {
        let pool = BufferPool::new(1024, 4);
        let s = pool.get_scratch();
        assert_eq!(s.len(), s.capacity());
        assert!(s.capacity() >= 1024);
        let a = pool.get_arena();
        assert!(a.is_empty());
        assert!(a.capacity() >= 1024);
    }

    #[test]
    fn put_then_get_reuses_the_allocation() {
        let pool = BufferPool::new(1024, 4);
        let buf = pool.get_scratch();
        let ptr = buf.as_ref().as_ptr();
        pool.put(buf);
        let again = pool.get_scratch();
        assert_eq!(again.as_ref().as_ptr(), ptr);
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn recycle_reclaims_only_after_last_reference_drops() {
        let pool = BufferPool::new(1024, 4);
        let buf = pool.get_scratch();
        let ptr = buf.as_ref().as_ptr();
        let frozen = buf.freeze();
        let payload = frozen.slice(10..20);
        pool.recycle(frozen);

        // A downstream payload still references the chunk: the pool must
        // allocate fresh rather than steal shared storage.
        let other = pool.get_scratch();
        assert_ne!(other.as_ref().as_ptr(), ptr);
        assert_eq!(pool.stats().reclaimed, 0);

        drop(payload);
        let reclaimed = pool.get_scratch();
        assert_eq!(
            reclaimed.as_ref().as_ptr(),
            ptr,
            "refcount drop returns the chunk"
        );
        assert_eq!(pool.stats().reclaimed, 1);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufferPool::new(1024, 4);
        pool.put(BytesMut::with_capacity(1024 * OVERSIZE_FACTOR + 1));
        pool.put(BytesMut::with_capacity(16)); // under-chunk, also refused
        assert_eq!(pool.stats().free, 0);
    }

    #[test]
    fn pending_reclaim_is_bounded() {
        let pool = BufferPool::new(64, 4);
        let mut keep = Vec::new();
        for _ in 0..(MAX_PENDING_RECLAIM + 8) {
            let frozen = pool.get_scratch().freeze();
            keep.push(frozen.clone()); // hold a reference so nothing reclaims
            pool.recycle(frozen);
        }
        assert!(pool.stats().awaiting_reclaim <= MAX_PENDING_RECLAIM);
    }
}
