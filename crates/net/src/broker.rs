//! A deliberately *brokered* message relay — the ablation baseline.
//!
//! Paper §3.2: "While publish subscribe systems such as Kafka or queue based
//! system RabbitMQ have brokers in their systems, these brokers will incur
//! extra data communication overheads because the data was first sent to the
//! broker and then forwarded to the final destination."
//!
//! VideoPipe itself never routes through a broker. This module exists so the
//! claim can be *measured*: [`BrokerSender`] forwards every message through
//! a relay thread (one extra hop plus configurable forwarding delay), and
//! the `ablation_broker` bench compares pipeline latency over direct vs
//! brokered transports.

use crate::error::NetError;
use crate::inproc::InprocHub;
use crate::wire::WireMessage;
use crate::MsgSender;
use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A relay that receives every message, then forwards it to the destination
/// channel on the hub, after an optional forwarding delay.
pub struct Broker {
    tx: Sender<WireMessage>,
    forwarded: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Broker {
    /// Starts a broker forwarding onto `hub` with the given per-message
    /// forwarding delay (models broker ingest/dispatch costs).
    pub fn start(hub: InprocHub, forward_delay: Duration) -> Self {
        let (tx, rx) = unbounded::<WireMessage>();
        let forwarded = Arc::new(AtomicU64::new(0));
        let count = Arc::clone(&forwarded);
        let thread = std::thread::Builder::new()
            .name("vp-broker".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    if !forward_delay.is_zero() {
                        std::thread::sleep(forward_delay);
                    }
                    // Forward to the destination channel; unknown
                    // destinations are dropped (as a real broker would after
                    // retention).
                    if let Ok(sender) = hub.connect(&msg.channel) {
                        // Count before forwarding: a receiver woken by the
                        // send must already observe the updated counter.
                        count.fetch_add(1, Ordering::Relaxed);
                        let _ = sender.send(msg);
                    }
                }
            })
            .expect("spawn broker thread");
        Broker {
            tx,
            forwarded,
            thread: Some(thread),
        }
    }

    /// A sender that routes through this broker towards `channel`.
    pub fn sender_for(&self, channel: impl Into<String>) -> BrokerSender {
        BrokerSender {
            channel: channel.into(),
            tx: self.tx.clone(),
        }
    }

    /// Messages forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        // Close the ingest channel; the forwarding thread drains and exits.
        let (dead_tx, _) = unbounded();
        self.tx = dead_tx;
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("forwarded", &self.forwarded())
            .finish_non_exhaustive()
    }
}

/// A sender that routes through a [`Broker`] instead of directly to the
/// destination.
#[derive(Clone)]
pub struct BrokerSender {
    channel: String,
    tx: Sender<WireMessage>,
}

impl std::fmt::Debug for BrokerSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerSender")
            .field("channel", &self.channel)
            .finish()
    }
}

impl MsgSender for BrokerSender {
    fn send(&self, mut msg: WireMessage) -> Result<(), NetError> {
        msg.channel = self.channel.clone();
        self.tx.send(msg).map_err(|_| NetError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgReceiver;
    use bytes::Bytes;

    #[test]
    fn broker_forwards_to_destination() {
        let hub = InprocHub::new();
        let rx = hub.bind("dest").unwrap();
        let broker = Broker::start(hub.clone(), Duration::ZERO);
        let sender = broker.sender_for("dest");
        sender
            .send(WireMessage::data("ignored", 5, 0, Bytes::new()))
            .unwrap();
        let msg = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.seq, 5);
        assert_eq!(msg.channel, "dest");
        assert_eq!(broker.forwarded(), 1);
    }

    #[test]
    fn broker_adds_measurable_delay() {
        let hub = InprocHub::new();
        let rx = hub.bind("slowdest").unwrap();
        let broker = Broker::start(hub.clone(), Duration::from_millis(20));
        let sender = broker.sender_for("slowdest");
        let start = std::time::Instant::now();
        sender.send(WireMessage::signal("x", 1)).unwrap();
        rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn unknown_destination_is_dropped() {
        let hub = InprocHub::new();
        let broker = Broker::start(hub, Duration::ZERO);
        let sender = broker.sender_for("ghost");
        sender.send(WireMessage::signal("x", 1)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(broker.forwarded(), 0);
    }

    #[test]
    fn broker_drop_is_clean() {
        let hub = InprocHub::new();
        let _rx = hub.bind("d").unwrap();
        let broker = Broker::start(hub, Duration::ZERO);
        drop(broker); // must not hang
    }
}
