use crate::error::NetError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// Maximum encoded frame length accepted by the stream decoder (16 MiB —
/// far above any encoded video frame, defensive against corrupt prefixes).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Maximum channel-name length on the wire.
pub const MAX_CHANNEL_LEN: usize = 255;

/// The kind of a wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageKind {
    /// Pipeline data flowing along a DAG edge (`call_module`).
    Data = 0,
    /// A service request (`call_service`).
    Request = 1,
    /// A service response.
    Response = 2,
    /// Flow-control signal (the final module's "send the next frame").
    Signal = 3,
    /// Runtime control (deploy, shutdown, telemetry).
    Control = 4,
}

impl MessageKind {
    /// Decodes the wire byte.
    pub fn from_u8(v: u8) -> Option<MessageKind> {
        match v {
            0 => Some(MessageKind::Data),
            1 => Some(MessageKind::Request),
            2 => Some(MessageKind::Response),
            3 => Some(MessageKind::Signal),
            4 => Some(MessageKind::Control),
            _ => None,
        }
    }
}

/// A message on the wire.
///
/// `channel` addresses the destination (module name, service name, or pub/sub
/// topic); `reply_to` carries the requester's inbox for REQ/REP; `corr_id`
/// correlates a response to its request; `seq`/`timestamp_ns` propagate the
/// frame identity end-to-end for latency accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    /// Message kind.
    pub kind: MessageKind,
    /// Destination channel (module, service or topic name).
    pub channel: String,
    /// Reply inbox for requests (empty when unused).
    pub reply_to: String,
    /// Request/response correlation id (0 when unused).
    pub corr_id: u64,
    /// Source frame sequence number.
    pub seq: u64,
    /// Source frame capture timestamp (nanoseconds).
    pub timestamp_ns: u64,
    /// Pipeline failover epoch the message belongs to. Each confirmed
    /// device-loss failover bumps the epoch; receivers fence messages from
    /// dead epochs so redelivered frames cannot double-count.
    pub epoch: u64,
    /// Opaque payload bytes (the core crate defines the payload codec).
    pub payload: Bytes,
}

impl WireMessage {
    /// Creates a data message for `channel`.
    pub fn data(channel: impl Into<String>, seq: u64, timestamp_ns: u64, payload: Bytes) -> Self {
        WireMessage {
            kind: MessageKind::Data,
            channel: channel.into(),
            reply_to: String::new(),
            corr_id: 0,
            seq,
            timestamp_ns,
            epoch: 0,
            payload,
        }
    }

    /// Creates a request to `service` with a reply inbox and correlation id.
    pub fn request(
        service: impl Into<String>,
        reply_to: impl Into<String>,
        corr_id: u64,
        payload: Bytes,
    ) -> Self {
        WireMessage {
            kind: MessageKind::Request,
            channel: service.into(),
            reply_to: reply_to.into(),
            corr_id,
            seq: 0,
            timestamp_ns: 0,
            epoch: 0,
            payload,
        }
    }

    /// Creates the response to `request`.
    pub fn response_to(request: &WireMessage, payload: Bytes) -> Self {
        WireMessage {
            kind: MessageKind::Response,
            channel: request.reply_to.clone(),
            reply_to: String::new(),
            corr_id: request.corr_id,
            seq: request.seq,
            timestamp_ns: request.timestamp_ns,
            epoch: request.epoch,
            payload,
        }
    }

    /// Creates a flow-control signal addressed to `channel`.
    pub fn signal(channel: impl Into<String>, seq: u64) -> Self {
        WireMessage {
            kind: MessageKind::Signal,
            channel: channel.into(),
            reply_to: String::new(),
            corr_id: 0,
            seq,
            timestamp_ns: 0,
            epoch: 0,
            payload: Bytes::new(),
        }
    }

    /// Returns the message stamped with a failover epoch.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Encoded size in bytes (exact).
    pub fn encoded_len(&self) -> usize {
        // kind(1) + channel(1+len) + reply_to(1+len) + corr(8) + seq(8)
        // + ts(8) + epoch(8) + payload(4+len)
        1 + 1
            + self.channel.len()
            + 1
            + self.reply_to.len()
            + 8
            + 8
            + 8
            + 8
            + 4
            + self.payload.len()
    }

    /// Encodes into a fresh buffer (no length prefix; see [`write_frame`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] when a channel name exceeds
    /// [`MAX_CHANNEL_LEN`].
    pub fn encode(&self) -> Result<Bytes, NetError> {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf)?;
        Ok(buf.freeze())
    }

    /// Appends the encoded message body (no length prefix) to `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] when a channel name exceeds
    /// [`MAX_CHANNEL_LEN`]; `buf` is untouched on error.
    pub fn encode_into(&self, buf: &mut BytesMut) -> Result<(), NetError> {
        if self.channel.len() > MAX_CHANNEL_LEN {
            return Err(NetError::BadFrame("channel name too long"));
        }
        if self.reply_to.len() > MAX_CHANNEL_LEN {
            return Err(NetError::BadFrame("reply_to name too long"));
        }
        buf.reserve(self.encoded_len());
        buf.put_u8(self.kind as u8);
        buf.put_u8(self.channel.len() as u8);
        buf.put_slice(self.channel.as_bytes());
        buf.put_u8(self.reply_to.len() as u8);
        buf.put_slice(self.reply_to.as_bytes());
        buf.put_u64(self.corr_id);
        buf.put_u64(self.seq);
        buf.put_u64(self.timestamp_ns);
        buf.put_u64(self.epoch);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        Ok(())
    }

    /// Appends the *framed* encoding — u32 length prefix plus body — to
    /// `buf`, so several messages coalesce into one contiguous buffer and a
    /// single stream write.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] for oversized channel names and
    /// [`NetError::FrameTooLarge`] when the body exceeds [`MAX_FRAME_LEN`];
    /// `buf` is untouched on error.
    pub fn encode_framed_into(&self, buf: &mut BytesMut) -> Result<(), NetError> {
        let body_len = self.encoded_len();
        if body_len > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge { len: body_len });
        }
        buf.reserve(4 + body_len);
        buf.put_u32(body_len as u32);
        match self.encode_into(buf) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Roll the prefix back so a failed append leaves no torn
                // framing in a coalescing buffer.
                buf.truncate(buf.len() - 4);
                Err(e)
            }
        }
    }

    /// Decodes a frame previously produced by [`WireMessage::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] on any truncation, bad kind byte, bad
    /// UTF-8 channel, or trailing garbage.
    pub fn decode(mut buf: &[u8]) -> Result<WireMessage, NetError> {
        fn need(buf: &[u8], n: usize) -> Result<(), NetError> {
            if buf.remaining() < n {
                Err(NetError::BadFrame("truncated frame"))
            } else {
                Ok(())
            }
        }
        need(buf, 2)?;
        let kind =
            MessageKind::from_u8(buf.get_u8()).ok_or(NetError::BadFrame("unknown message kind"))?;
        let chan_len = buf.get_u8() as usize;
        need(buf, chan_len)?;
        let channel = std::str::from_utf8(&buf[..chan_len])
            .map_err(|_| NetError::BadFrame("channel not utf-8"))?
            .to_string();
        buf.advance(chan_len);
        need(buf, 1)?;
        let reply_len = buf.get_u8() as usize;
        need(buf, reply_len)?;
        let reply_to = std::str::from_utf8(&buf[..reply_len])
            .map_err(|_| NetError::BadFrame("reply_to not utf-8"))?
            .to_string();
        buf.advance(reply_len);
        need(buf, 8 + 8 + 8 + 8 + 4)?;
        let corr_id = buf.get_u64();
        let seq = buf.get_u64();
        let timestamp_ns = buf.get_u64();
        let epoch = buf.get_u64();
        let payload_len = buf.get_u32() as usize;
        if payload_len > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge { len: payload_len });
        }
        need(buf, payload_len)?;
        let payload = Bytes::copy_from_slice(&buf[..payload_len]);
        buf.advance(payload_len);
        if buf.has_remaining() {
            return Err(NetError::BadFrame("trailing bytes"));
        }
        Ok(WireMessage {
            kind,
            channel,
            reply_to,
            corr_id,
            seq,
            timestamp_ns,
            epoch,
            payload,
        })
    }
}

/// Writes one length-prefixed frame to a stream as a single contiguous
/// write (prefix and body share one buffer — one syscall on an unbuffered
/// socket, not two).
///
/// # Errors
///
/// Propagates encode and I/O errors.
pub fn write_frame<W: Write>(writer: &mut W, msg: &WireMessage) -> Result<(), NetError> {
    let mut framed = BytesMut::with_capacity(4 + msg.encoded_len());
    msg.encode_framed_into(&mut framed)?;
    writer.write_all(&framed)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame from a stream.
///
/// # Errors
///
/// Returns [`NetError::Disconnected`] on clean EOF before a frame starts,
/// [`NetError::FrameTooLarge`] for implausible prefixes, and
/// [`NetError::BadFrame`]/[`NetError::Io`] otherwise.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<WireMessage, NetError> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(NetError::Disconnected)
        }
        Err(e) => return Err(NetError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge { len });
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    WireMessage::decode(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WireMessage {
        WireMessage {
            kind: MessageKind::Request,
            channel: "pose_detector".into(),
            reply_to: "module_a_inbox".into(),
            corr_id: 77,
            seq: 1234,
            timestamp_ns: 999_999_999,
            epoch: 7,
            payload: Bytes::from_static(b"hello frame"),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let msg = sample();
        let encoded = msg.encode().unwrap();
        assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = WireMessage::decode(&encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn roundtrip_empty_fields() {
        let msg = WireMessage::signal("", 0);
        let decoded = WireMessage::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(
            WireMessage::data("m", 1, 2, Bytes::new()).kind,
            MessageKind::Data
        );
        let req = WireMessage::request("svc", "inbox", 9, Bytes::new());
        assert_eq!(req.kind, MessageKind::Request);
        let resp = WireMessage::response_to(&req, Bytes::from_static(b"r"));
        assert_eq!(resp.kind, MessageKind::Response);
        assert_eq!(resp.channel, "inbox");
        assert_eq!(resp.corr_id, 9);
        assert_eq!(WireMessage::signal("src", 3).kind, MessageKind::Signal);
    }

    #[test]
    fn epoch_survives_roundtrip_and_replies() {
        let msg = WireMessage::signal("src", 3).with_epoch(42);
        assert_eq!(msg.epoch, 42);
        let decoded = WireMessage::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded.epoch, 42);
        let req = WireMessage::request("svc", "inbox", 9, Bytes::new()).with_epoch(5);
        let resp = WireMessage::response_to(&req, Bytes::new());
        assert_eq!(resp.epoch, 5, "responses belong to the request's epoch");
    }

    // Corruption resistance (truncation, bit flips, unknown kinds, bad
    // UTF-8, hostile length prefixes) is property-tested exhaustively in
    // `tests/prop_net.rs` — no example-based corruption tests here.

    #[test]
    fn encode_rejects_oversized_channel() {
        let msg = WireMessage::data("x".repeat(300), 0, 0, Bytes::new());
        assert!(msg.encode().is_err());
    }

    #[test]
    fn message_kind_roundtrip() {
        for kind in [
            MessageKind::Data,
            MessageKind::Request,
            MessageKind::Response,
            MessageKind::Signal,
            MessageKind::Control,
        ] {
            assert_eq!(MessageKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(MessageKind::from_u8(99), None);
    }

    #[test]
    fn stream_framing_roundtrip() {
        let mut buf = Vec::new();
        let a = sample();
        let b = WireMessage::signal("src", 5);
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap(), b);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            NetError::Disconnected
        ));
    }

    #[test]
    fn encode_framed_matches_prefix_plus_body() {
        let msg = sample();
        let mut framed = BytesMut::new();
        msg.encode_framed_into(&mut framed).unwrap();
        let body = msg.encode().unwrap();
        assert_eq!(&framed[..4], (body.len() as u32).to_be_bytes());
        assert_eq!(&framed[4..], &body[..]);
    }

    #[test]
    fn coalesced_frames_decode_in_order() {
        let a = sample();
        let b = WireMessage::signal("src", 5);
        let c = WireMessage::data("m", 7, 8, Bytes::from_static(b"xyz"));
        let mut batch = BytesMut::new();
        for msg in [&a, &b, &c] {
            msg.encode_framed_into(&mut batch).unwrap();
        }
        let mut cursor = std::io::Cursor::new(batch.freeze().to_vec());
        assert_eq!(read_frame(&mut cursor).unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap(), b);
        assert_eq!(read_frame(&mut cursor).unwrap(), c);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            NetError::Disconnected
        ));
    }

    #[test]
    fn encode_framed_failure_leaves_buffer_untouched() {
        let good = WireMessage::signal("src", 1);
        let bad = WireMessage::data("x".repeat(300), 0, 0, Bytes::new());
        let mut batch = BytesMut::new();
        good.encode_framed_into(&mut batch).unwrap();
        let len_before = batch.len();
        assert!(bad.encode_framed_into(&mut batch).is_err());
        assert_eq!(batch.len(), len_before, "torn frame left in batch buffer");
        let mut cursor = std::io::Cursor::new(batch.freeze().to_vec());
        assert_eq!(read_frame(&mut cursor).unwrap(), good);
    }

    #[test]
    fn read_frame_rejects_giant_prefix() {
        let bytes = (u32::MAX).to_be_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            NetError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn mid_frame_eof_is_io_error() {
        let a = sample();
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(NetError::Io(_))));
    }
}
