use crate::error::NetError;
use crate::pool::BufferPool;
use crate::telemetry;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Maximum encoded frame length accepted by the stream decoder (16 MiB —
/// far above any encoded video frame, defensive against corrupt prefixes).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Maximum channel-name length on the wire.
pub const MAX_CHANNEL_LEN: usize = 255;

/// The kind of a wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageKind {
    /// Pipeline data flowing along a DAG edge (`call_module`).
    Data = 0,
    /// A service request (`call_service`).
    Request = 1,
    /// A service response.
    Response = 2,
    /// Flow-control signal (the final module's "send the next frame").
    Signal = 3,
    /// Runtime control (deploy, shutdown, telemetry).
    Control = 4,
}

impl MessageKind {
    /// Decodes the wire byte.
    pub fn from_u8(v: u8) -> Option<MessageKind> {
        match v {
            0 => Some(MessageKind::Data),
            1 => Some(MessageKind::Request),
            2 => Some(MessageKind::Response),
            3 => Some(MessageKind::Signal),
            4 => Some(MessageKind::Control),
            _ => None,
        }
    }
}

/// A message on the wire.
///
/// `channel` addresses the destination (module name, service name, or pub/sub
/// topic); `reply_to` carries the requester's inbox for REQ/REP; `corr_id`
/// correlates a response to its request; `seq`/`timestamp_ns` propagate the
/// frame identity end-to-end for latency accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    /// Message kind.
    pub kind: MessageKind,
    /// Destination channel (module, service or topic name).
    pub channel: String,
    /// Reply inbox for requests (empty when unused).
    pub reply_to: String,
    /// Request/response correlation id (0 when unused).
    pub corr_id: u64,
    /// Source frame sequence number.
    pub seq: u64,
    /// Source frame capture timestamp (nanoseconds).
    pub timestamp_ns: u64,
    /// Pipeline failover epoch the message belongs to. Each confirmed
    /// device-loss failover bumps the epoch; receivers fence messages from
    /// dead epochs so redelivered frames cannot double-count.
    pub epoch: u64,
    /// Opaque payload bytes (the core crate defines the payload codec).
    pub payload: Bytes,
}

impl WireMessage {
    /// Creates a data message for `channel`.
    pub fn data(channel: impl Into<String>, seq: u64, timestamp_ns: u64, payload: Bytes) -> Self {
        WireMessage {
            kind: MessageKind::Data,
            channel: channel.into(),
            reply_to: String::new(),
            corr_id: 0,
            seq,
            timestamp_ns,
            epoch: 0,
            payload,
        }
    }

    /// Creates a request to `service` with a reply inbox and correlation id.
    pub fn request(
        service: impl Into<String>,
        reply_to: impl Into<String>,
        corr_id: u64,
        payload: Bytes,
    ) -> Self {
        WireMessage {
            kind: MessageKind::Request,
            channel: service.into(),
            reply_to: reply_to.into(),
            corr_id,
            seq: 0,
            timestamp_ns: 0,
            epoch: 0,
            payload,
        }
    }

    /// Creates the response to `request`.
    pub fn response_to(request: &WireMessage, payload: Bytes) -> Self {
        WireMessage {
            kind: MessageKind::Response,
            channel: request.reply_to.clone(),
            reply_to: String::new(),
            corr_id: request.corr_id,
            seq: request.seq,
            timestamp_ns: request.timestamp_ns,
            epoch: request.epoch,
            payload,
        }
    }

    /// Creates a flow-control signal addressed to `channel`.
    pub fn signal(channel: impl Into<String>, seq: u64) -> Self {
        WireMessage {
            kind: MessageKind::Signal,
            channel: channel.into(),
            reply_to: String::new(),
            corr_id: 0,
            seq,
            timestamp_ns: 0,
            epoch: 0,
            payload: Bytes::new(),
        }
    }

    /// Returns the message stamped with a failover epoch.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Encoded size in bytes (exact).
    pub fn encoded_len(&self) -> usize {
        // kind(1) + channel(1+len) + reply_to(1+len) + corr(8) + seq(8)
        // + ts(8) + epoch(8) + payload(4+len)
        1 + 1
            + self.channel.len()
            + 1
            + self.reply_to.len()
            + 8
            + 8
            + 8
            + 8
            + 4
            + self.payload.len()
    }

    /// Encodes into a fresh buffer (no length prefix; see [`write_frame`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] when a channel name exceeds
    /// [`MAX_CHANNEL_LEN`].
    pub fn encode(&self) -> Result<Bytes, NetError> {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf)?;
        Ok(buf.freeze())
    }

    /// Appends the encoded message body (no length prefix) to `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] when a channel name exceeds
    /// [`MAX_CHANNEL_LEN`]; `buf` is untouched on error.
    pub fn encode_into(&self, buf: &mut BytesMut) -> Result<(), NetError> {
        if self.channel.len() > MAX_CHANNEL_LEN {
            return Err(NetError::BadFrame("channel name too long"));
        }
        if self.reply_to.len() > MAX_CHANNEL_LEN {
            return Err(NetError::BadFrame("reply_to name too long"));
        }
        buf.reserve(self.encoded_len());
        buf.put_u8(self.kind as u8);
        buf.put_u8(self.channel.len() as u8);
        buf.put_slice(self.channel.as_bytes());
        buf.put_u8(self.reply_to.len() as u8);
        buf.put_slice(self.reply_to.as_bytes());
        buf.put_u64(self.corr_id);
        buf.put_u64(self.seq);
        buf.put_u64(self.timestamp_ns);
        buf.put_u64(self.epoch);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        Ok(())
    }

    /// Appends the *framed* encoding — u32 length prefix plus body — to
    /// `buf`, so several messages coalesce into one contiguous buffer and a
    /// single stream write.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] for oversized channel names and
    /// [`NetError::FrameTooLarge`] when the body exceeds [`MAX_FRAME_LEN`];
    /// `buf` is untouched on error.
    pub fn encode_framed_into(&self, buf: &mut BytesMut) -> Result<(), NetError> {
        let body_len = self.encoded_len();
        if body_len > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge { len: body_len });
        }
        buf.reserve(4 + body_len);
        buf.put_u32(body_len as u32);
        match self.encode_into(buf) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Roll the prefix back so a failed append leaves no torn
                // framing in a coalescing buffer.
                buf.truncate(buf.len() - 4);
                Err(e)
            }
        }
    }

    /// Appends only the *framed header* — the u32 length prefix plus every
    /// field up to and including the payload length, but **not** the
    /// payload bytes — to `buf`. Concatenating the appended bytes with the
    /// message's payload reproduces [`WireMessage::encode_framed_into`]
    /// exactly; this is the split the vectored send path uses to put an
    /// already-shared payload on the wire without copying it.
    ///
    /// # Errors
    ///
    /// Same contract as [`WireMessage::encode_framed_into`]; `buf` is
    /// untouched on error.
    pub fn encode_framed_header_into(&self, buf: &mut BytesMut) -> Result<(), NetError> {
        if self.channel.len() > MAX_CHANNEL_LEN {
            return Err(NetError::BadFrame("channel name too long"));
        }
        if self.reply_to.len() > MAX_CHANNEL_LEN {
            return Err(NetError::BadFrame("reply_to name too long"));
        }
        let body_len = self.encoded_len();
        if body_len > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge { len: body_len });
        }
        buf.reserve(4 + body_len - self.payload.len());
        buf.put_u32(body_len as u32);
        buf.put_u8(self.kind as u8);
        buf.put_u8(self.channel.len() as u8);
        buf.put_slice(self.channel.as_bytes());
        buf.put_u8(self.reply_to.len() as u8);
        buf.put_slice(self.reply_to.as_bytes());
        buf.put_u64(self.corr_id);
        buf.put_u64(self.seq);
        buf.put_u64(self.timestamp_ns);
        buf.put_u64(self.epoch);
        buf.put_u32(self.payload.len() as u32);
        Ok(())
    }

    /// Decodes a frame previously produced by [`WireMessage::encode`],
    /// copying the payload out of `buf`.
    ///
    /// Prefer [`WireMessage::decode_shared`] on the hot receive path: it
    /// borrows the payload from a shared read chunk instead of copying.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] on any truncation, bad kind byte, bad
    /// UTF-8 channel, or trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<WireMessage, NetError> {
        let (fields, payload_range) = decode_fields(buf)?;
        telemetry::RX_PAYLOAD_COPIES.fetch_add(1, Ordering::Relaxed);
        let payload = Bytes::copy_from_slice(&buf[payload_range]);
        Ok(fields.into_message(payload))
    }

    /// Decodes a frame whose bytes live in a shared buffer, returning a
    /// message whose payload is a zero-copy slice of `frame` — the frame
    /// simply bumps the chunk's refcount and the chunk stays alive until
    /// every payload decoded from it drops.
    ///
    /// # Errors
    ///
    /// Same contract as [`WireMessage::decode`].
    pub fn decode_shared(frame: &Bytes) -> Result<WireMessage, NetError> {
        let (fields, payload_range) = decode_fields(frame)?;
        telemetry::RX_ZERO_COPY_FRAMES.fetch_add(1, Ordering::Relaxed);
        let payload = frame.slice(payload_range);
        Ok(fields.into_message(payload))
    }
}

/// Everything in a frame except the payload bytes.
struct DecodedFields {
    kind: MessageKind,
    channel: String,
    reply_to: String,
    corr_id: u64,
    seq: u64,
    timestamp_ns: u64,
    epoch: u64,
}

impl DecodedFields {
    fn into_message(self, payload: Bytes) -> WireMessage {
        WireMessage {
            kind: self.kind,
            channel: self.channel,
            reply_to: self.reply_to,
            corr_id: self.corr_id,
            seq: self.seq,
            timestamp_ns: self.timestamp_ns,
            epoch: self.epoch,
            payload,
        }
    }
}

/// Parses every frame field, returning the payload's byte range within
/// `full` instead of materialising it — the caller decides whether the
/// payload is copied ([`WireMessage::decode`]) or borrowed
/// ([`WireMessage::decode_shared`]).
fn decode_fields(full: &[u8]) -> Result<(DecodedFields, std::ops::Range<usize>), NetError> {
    fn need(buf: &[u8], n: usize) -> Result<(), NetError> {
        if buf.remaining() < n {
            Err(NetError::BadFrame("truncated frame"))
        } else {
            Ok(())
        }
    }
    let mut buf = full;
    need(buf, 2)?;
    let kind =
        MessageKind::from_u8(buf.get_u8()).ok_or(NetError::BadFrame("unknown message kind"))?;
    let chan_len = buf.get_u8() as usize;
    need(buf, chan_len)?;
    let channel = std::str::from_utf8(&buf[..chan_len])
        .map_err(|_| NetError::BadFrame("channel not utf-8"))?
        .to_string();
    buf.advance(chan_len);
    need(buf, 1)?;
    let reply_len = buf.get_u8() as usize;
    need(buf, reply_len)?;
    let reply_to = std::str::from_utf8(&buf[..reply_len])
        .map_err(|_| NetError::BadFrame("reply_to not utf-8"))?
        .to_string();
    buf.advance(reply_len);
    need(buf, 8 + 8 + 8 + 8 + 4)?;
    let corr_id = buf.get_u64();
    let seq = buf.get_u64();
    let timestamp_ns = buf.get_u64();
    let epoch = buf.get_u64();
    let payload_len = buf.get_u32() as usize;
    if payload_len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge { len: payload_len });
    }
    need(buf, payload_len)?;
    let payload_start = full.len() - buf.remaining();
    buf.advance(payload_len);
    if buf.has_remaining() {
        return Err(NetError::BadFrame("trailing bytes"));
    }
    Ok((
        DecodedFields {
            kind,
            channel,
            reply_to,
            corr_id,
            seq,
            timestamp_ns,
            epoch,
        },
        payload_start..payload_start + payload_len,
    ))
}

/// Writes one length-prefixed frame to a stream as a single contiguous
/// write (prefix and body share one buffer — one syscall on an unbuffered
/// socket, not two).
///
/// # Errors
///
/// Propagates encode and I/O errors.
pub fn write_frame<W: Write>(writer: &mut W, msg: &WireMessage) -> Result<(), NetError> {
    let mut framed = BytesMut::with_capacity(4 + msg.encoded_len());
    msg.encode_framed_into(&mut framed)?;
    writer.write_all(&framed)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame from a stream.
///
/// # Errors
///
/// Returns [`NetError::Disconnected`] on clean EOF before a frame starts,
/// [`NetError::FrameTooLarge`] for implausible prefixes, and
/// [`NetError::BadFrame`]/[`NetError::Io`] otherwise.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<WireMessage, NetError> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(NetError::Disconnected)
        }
        Err(e) => return Err(NetError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge { len });
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    WireMessage::decode(&body)
}

/// Incremental, pooled frame decoder: the zero-copy receive path.
///
/// Bytes land directly in a pooled chunk (via [`StreamDecoder::read_space`]
/// / [`StreamDecoder::commit`], or [`StreamDecoder::feed`] when the caller
/// already owns the bytes). Whenever committed bytes complete one or more
/// frames, the chunk is *rotated*: a fresh pooled chunk takes over (the
/// trailing partial frame — usually a handful of bytes — is the only thing
/// copied), the filled chunk is frozen in O(1), and every completed frame
/// decodes as a zero-copy slice of the frozen chunk via
/// [`WireMessage::decode_shared`]. The frozen chunk is registered back with
/// the pool and is reclaimed, allocation intact, the moment the last
/// decoded payload drops.
///
/// Defensive properties, checked *before* buffering:
/// * a length prefix beyond [`MAX_FRAME_LEN`] poisons the stream
///   immediately — no body byte is ever buffered for it;
/// * a frame larger than the pooled chunk grows the buffer to exactly the
///   framed length (header-derived), so a slow-trickle peer holds at most
///   one frame's worth of memory, not an ever-growing backlog.
///
/// Decoded frames queue internally; callers drain them with
/// [`StreamDecoder::next_frame`], which lets a budgeted poll loop stop
/// mid-batch without losing frames.
pub struct StreamDecoder {
    pool: Arc<BufferPool>,
    /// Read window: `len()` is the writable size, `[0..filled]` is valid
    /// data, and the window always starts at the first unparsed byte.
    buf: BytesMut,
    filled: usize,
    pending: VecDeque<WireMessage>,
    /// Scratch list of completed frame body ranges (reused per commit).
    ranges: Vec<std::ops::Range<usize>>,
    corrupt: bool,
}

impl StreamDecoder {
    /// Creates a decoder drawing chunks from `pool`.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        StreamDecoder {
            pool,
            buf: BytesMut::new(),
            filled: 0,
            pending: VecDeque::new(),
            ranges: Vec::new(),
            corrupt: false,
        }
    }

    /// Writable space to read into; call [`StreamDecoder::commit`] with the
    /// number of bytes actually written. Returns an empty slice for a
    /// poisoned stream. Grows to exactly the framed length when the buffer
    /// is full mid-frame (never speculatively).
    pub fn read_space(&mut self) -> &mut [u8] {
        if self.corrupt {
            return &mut [];
        }
        if self.buf.is_empty() {
            self.buf = self.pool.get_scratch();
        }
        if self.filled == self.buf.len() {
            // The window is full with one partial frame (rotation drains
            // complete ones): the header is present — windows are far
            // larger than 4 bytes — so reserve exactly the framed length.
            let len =
                u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            debug_assert!(
                len <= MAX_FRAME_LEN,
                "oversized prefix must poison in commit"
            );
            let need = 4 + len;
            let mut bigger = BytesMut::with_capacity(need);
            bigger.resize(need, 0);
            bigger[..self.filled].copy_from_slice(&self.buf[..self.filled]);
            let old = std::mem::replace(&mut self.buf, bigger);
            self.pool.put(old);
        }
        &mut self.buf[self.filled..]
    }

    /// Marks `n` bytes of [`StreamDecoder::read_space`] as filled and
    /// decodes every frame they complete into the pending queue.
    pub fn commit(&mut self, n: usize) {
        assert!(
            self.filled + n <= self.buf.len(),
            "commit beyond read_space"
        );
        if self.corrupt {
            return;
        }
        self.filled += n;
        // Collect completed frame body ranges at the front of the window.
        self.ranges.clear();
        let mut consumed = 0usize;
        while self.filled - consumed >= 4 {
            let len = u32::from_be_bytes([
                self.buf[consumed],
                self.buf[consumed + 1],
                self.buf[consumed + 2],
                self.buf[consumed + 3],
            ]) as usize;
            if len > MAX_FRAME_LEN {
                // Poison before buffering a single body byte; frames
                // completed earlier in this commit still deliver below.
                self.corrupt = true;
                break;
            }
            if self.filled - consumed < 4 + len {
                break;
            }
            self.ranges.push(consumed + 4..consumed + 4 + len);
            consumed += 4 + len;
        }
        if self.ranges.is_empty() {
            return;
        }
        // Rotate: carry the partial tail into a fresh chunk, freeze the
        // filled chunk in place, and slice the completed frames out of it.
        let tail = self.filled - consumed;
        let mut next = self.pool.get_scratch();
        if next.len() < tail {
            next.resize(tail, 0);
        }
        next[..tail].copy_from_slice(&self.buf[consumed..self.filled]);
        let old = std::mem::replace(&mut self.buf, next);
        self.filled = tail;
        telemetry::RX_CHUNK_ROTATIONS.fetch_add(1, Ordering::Relaxed);
        telemetry::RX_TAIL_COPY_BYTES.fetch_add(tail as u64, Ordering::Relaxed);
        let frozen = old.freeze();
        for range in self.ranges.drain(..) {
            match WireMessage::decode_shared(&frozen.slice(range)) {
                Ok(msg) => self.pending.push_back(msg),
                Err(_) => {
                    self.corrupt = true;
                    break;
                }
            }
        }
        self.pool.recycle(frozen);
    }

    /// Copies `data` in as if it had been read into
    /// [`StreamDecoder::read_space`] — the convenience path for blocking
    /// readers and tests that already hold the bytes.
    pub fn feed(&mut self, mut data: &[u8]) {
        while !data.is_empty() && !self.corrupt {
            let space = self.read_space();
            let n = space.len().min(data.len());
            if n == 0 {
                break;
            }
            space[..n].copy_from_slice(&data[..n]);
            self.commit(n);
            data = &data[n..];
        }
    }

    /// Pops the next completed frame, if any.
    pub fn next_frame(&mut self) -> Option<WireMessage> {
        self.pending.pop_front()
    }

    /// Completed frames waiting to be drained.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Whether the stream hit an unrecoverable framing error (implausible
    /// prefix or undecodable body). Frames completed before the poison
    /// point still drain via [`StreamDecoder::next_frame`].
    pub fn is_corrupt(&self) -> bool {
        self.corrupt
    }

    /// Whether a partial frame is buffered awaiting more bytes.
    pub fn has_partial(&self) -> bool {
        self.filled > 0
    }

    /// Bytes currently buffered for the partial frame at the front.
    pub fn buffered_bytes(&self) -> usize {
        self.filled
    }

    /// Capacity of the current read window (tests assert the exact-reserve
    /// behaviour for oversized frames through this).
    pub fn window_capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl std::fmt::Debug for StreamDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamDecoder")
            .field("buffered_bytes", &self.filled)
            .field("pending_frames", &self.pending.len())
            .field("corrupt", &self.corrupt)
            .finish_non_exhaustive()
    }
}

/// How a staged frame's header bytes are held.
enum HeaderRepr {
    /// Byte range within the batch's live arena (pre-freeze).
    Staged { start: usize, end: usize },
    /// Zero-copy slice of a frozen arena generation.
    Frozen(Bytes),
}

/// One frame staged for a vectored write: header bytes (prefix + fields +
/// payload length) and the payload itself, which is never copied — the
/// write references the caller's `Bytes` directly.
struct StagedFrame {
    header: HeaderRepr,
    payload: Bytes,
    framed_len: usize,
}

/// An ordered queue of encoded frames flushed with vectored writes: the
/// zero-copy send path.
///
/// [`FrameBatch::stage`] encodes a frame's header into a pooled arena
/// (surfacing encode errors immediately) and keeps the payload as a shared
/// `Bytes`. [`FrameBatch::write_some`] freezes the arena in O(1), builds an
/// `IoSlice` list over `[header, payload]` pairs and hands the whole batch
/// to one `write_vectored` syscall, resuming cleanly after short writes via
/// a byte cursor on the front frame. Frozen arenas recycle through the pool
/// once their frames are fully written.
pub struct FrameBatch {
    pool: Arc<BufferPool>,
    frames: VecDeque<StagedFrame>,
    arena: BytesMut,
    /// Frames whose header is still [`HeaderRepr::Staged`] in `arena`.
    staged: usize,
    /// Bytes of the front frame already written (short-write resume).
    cursor: usize,
    pending_bytes: usize,
}

impl FrameBatch {
    /// Creates a batch with a private pool.
    pub fn new() -> Self {
        Self::with_pool(Arc::new(BufferPool::default()))
    }

    /// Creates a batch whose header arenas come from `pool`.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        FrameBatch {
            pool,
            frames: VecDeque::new(),
            arena: BytesMut::new(),
            staged: 0,
            cursor: 0,
            pending_bytes: 0,
        }
    }

    /// Stages one frame. The payload is shared, not copied; the header is
    /// encoded now, so unencodable messages fail here — at the call site —
    /// rather than poisoning a later flush.
    ///
    /// # Errors
    ///
    /// Same contract as [`WireMessage::encode_framed_into`]; the batch is
    /// untouched on error.
    pub fn stage(&mut self, msg: &WireMessage) -> Result<(), NetError> {
        if self.arena.is_empty() && self.arena.capacity() == 0 {
            self.arena = self.pool.get_arena();
        }
        let start = self.arena.len();
        msg.encode_framed_header_into(&mut self.arena)?;
        let end = self.arena.len();
        let framed_len = (end - start) + msg.payload.len();
        self.frames.push_back(StagedFrame {
            header: HeaderRepr::Staged { start, end },
            payload: msg.payload.clone(),
            framed_len,
        });
        self.staged += 1;
        self.pending_bytes += framed_len;
        Ok(())
    }

    /// Staged frames not yet fully written.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frames are staged.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total framed bytes awaiting the wire.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Forgets write progress on the front frame. Call after a transport
    /// loss: the replacement connection must see the frame from byte 0,
    /// never a torn continuation of a stream that died elsewhere.
    pub fn reset_cursor(&mut self) {
        self.cursor = 0;
    }

    /// Drops every staged frame and all write progress (fail-fast senders
    /// abandoning a backlog nobody will replay).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.arena.clear();
        self.staged = 0;
        self.cursor = 0;
        self.pending_bytes = 0;
    }

    /// Drops the oldest staged frame (bounded-backlog policies), returning
    /// its framed length. Refuses (`None`) when the front frame is
    /// mid-write — dropping it would tear the live stream.
    pub fn drop_front(&mut self) -> Option<usize> {
        if self.cursor != 0 {
            return None;
        }
        let front = self.frames.pop_front()?;
        if matches!(front.header, HeaderRepr::Staged { .. }) {
            self.staged -= 1;
        }
        self.pending_bytes -= front.framed_len;
        Some(front.framed_len)
    }

    /// Converts every staged header into a zero-copy slice of the frozen
    /// arena, recycling the arena through the pool (it returns once the
    /// frames are written and dropped).
    fn freeze_headers(&mut self) {
        if self.staged == 0 {
            return;
        }
        let frozen = std::mem::replace(&mut self.arena, self.pool.get_arena()).freeze();
        for frame in self.frames.iter_mut() {
            if let HeaderRepr::Staged { start, end } = frame.header {
                frame.header = HeaderRepr::Frozen(frozen.slice(start..end));
            }
        }
        self.staged = 0;
        self.pool.recycle(frozen);
    }

    /// Issues one vectored write of up to `max_bytes` across at most
    /// `max_iovecs` slices, resuming after any prior short write. Returns
    /// `(frames_completed, bytes_written)`; `(0, 0)` when nothing is
    /// staged.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; a zero-length write of a
    /// non-empty batch surfaces as [`std::io::ErrorKind::WriteZero`]. On
    /// error the batch keeps every unwritten byte (and the cursor), so a
    /// retry or a reconnect-replay resumes exactly where the wire stopped.
    pub fn write_some<W: Write>(
        &mut self,
        writer: &mut W,
        max_bytes: usize,
        max_iovecs: usize,
    ) -> std::io::Result<(usize, usize)> {
        if self.frames.is_empty() {
            return Ok((0, 0));
        }
        self.freeze_headers();
        let n = {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(max_iovecs.min(64));
            let mut budget = max_bytes.max(1);
            let mut skip = self.cursor;
            'frames: for frame in &self.frames {
                let header: &[u8] = match &frame.header {
                    HeaderRepr::Frozen(b) => b,
                    HeaderRepr::Staged { .. } => unreachable!("headers frozen above"),
                };
                for seg in [header, &frame.payload[..]] {
                    let seg = if skip >= seg.len() {
                        skip -= seg.len();
                        continue;
                    } else {
                        let s = &seg[skip..];
                        skip = 0;
                        s
                    };
                    if seg.is_empty() {
                        continue;
                    }
                    let take = seg.len().min(budget);
                    slices.push(IoSlice::new(&seg[..take]));
                    budget -= take;
                    if budget == 0 || slices.len() >= max_iovecs.max(1) {
                        break 'frames;
                    }
                }
            }
            debug_assert!(!slices.is_empty(), "staged frames but nothing to write");
            let iovecs = slices.len() as u64;
            let n = writer.write_vectored(&slices)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "vectored write accepted zero bytes",
                ));
            }
            telemetry::TX_VECTORED_WRITES.fetch_add(1, Ordering::Relaxed);
            telemetry::TX_IOVECS.fetch_add(iovecs, Ordering::Relaxed);
            n
        };
        self.cursor += n;
        let mut completed = 0usize;
        while let Some(front) = self.frames.front() {
            if self.cursor < front.framed_len {
                break;
            }
            self.cursor -= front.framed_len;
            self.pending_bytes -= front.framed_len;
            self.frames.pop_front();
            completed += 1;
        }
        telemetry::TX_FRAMES.fetch_add(completed as u64, Ordering::Relaxed);
        Ok((completed, n))
    }
}

impl Default for FrameBatch {
    fn default() -> Self {
        FrameBatch::new()
    }
}

impl std::fmt::Debug for FrameBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameBatch")
            .field("frames", &self.frames.len())
            .field("pending_bytes", &self.pending_bytes)
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WireMessage {
        WireMessage {
            kind: MessageKind::Request,
            channel: "pose_detector".into(),
            reply_to: "module_a_inbox".into(),
            corr_id: 77,
            seq: 1234,
            timestamp_ns: 999_999_999,
            epoch: 7,
            payload: Bytes::from_static(b"hello frame"),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let msg = sample();
        let encoded = msg.encode().unwrap();
        assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = WireMessage::decode(&encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn roundtrip_empty_fields() {
        let msg = WireMessage::signal("", 0);
        let decoded = WireMessage::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(
            WireMessage::data("m", 1, 2, Bytes::new()).kind,
            MessageKind::Data
        );
        let req = WireMessage::request("svc", "inbox", 9, Bytes::new());
        assert_eq!(req.kind, MessageKind::Request);
        let resp = WireMessage::response_to(&req, Bytes::from_static(b"r"));
        assert_eq!(resp.kind, MessageKind::Response);
        assert_eq!(resp.channel, "inbox");
        assert_eq!(resp.corr_id, 9);
        assert_eq!(WireMessage::signal("src", 3).kind, MessageKind::Signal);
    }

    #[test]
    fn epoch_survives_roundtrip_and_replies() {
        let msg = WireMessage::signal("src", 3).with_epoch(42);
        assert_eq!(msg.epoch, 42);
        let decoded = WireMessage::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded.epoch, 42);
        let req = WireMessage::request("svc", "inbox", 9, Bytes::new()).with_epoch(5);
        let resp = WireMessage::response_to(&req, Bytes::new());
        assert_eq!(resp.epoch, 5, "responses belong to the request's epoch");
    }

    // Corruption resistance (truncation, bit flips, unknown kinds, bad
    // UTF-8, hostile length prefixes) is property-tested exhaustively in
    // `tests/prop_net.rs` — no example-based corruption tests here.

    #[test]
    fn encode_rejects_oversized_channel() {
        let msg = WireMessage::data("x".repeat(300), 0, 0, Bytes::new());
        assert!(msg.encode().is_err());
    }

    #[test]
    fn message_kind_roundtrip() {
        for kind in [
            MessageKind::Data,
            MessageKind::Request,
            MessageKind::Response,
            MessageKind::Signal,
            MessageKind::Control,
        ] {
            assert_eq!(MessageKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(MessageKind::from_u8(99), None);
    }

    #[test]
    fn stream_framing_roundtrip() {
        let mut buf = Vec::new();
        let a = sample();
        let b = WireMessage::signal("src", 5);
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap(), b);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            NetError::Disconnected
        ));
    }

    #[test]
    fn encode_framed_matches_prefix_plus_body() {
        let msg = sample();
        let mut framed = BytesMut::new();
        msg.encode_framed_into(&mut framed).unwrap();
        let body = msg.encode().unwrap();
        assert_eq!(&framed[..4], (body.len() as u32).to_be_bytes());
        assert_eq!(&framed[4..], &body[..]);
    }

    #[test]
    fn coalesced_frames_decode_in_order() {
        let a = sample();
        let b = WireMessage::signal("src", 5);
        let c = WireMessage::data("m", 7, 8, Bytes::from_static(b"xyz"));
        let mut batch = BytesMut::new();
        for msg in [&a, &b, &c] {
            msg.encode_framed_into(&mut batch).unwrap();
        }
        let mut cursor = std::io::Cursor::new(batch.freeze());
        assert_eq!(read_frame(&mut cursor).unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap(), b);
        assert_eq!(read_frame(&mut cursor).unwrap(), c);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            NetError::Disconnected
        ));
    }

    #[test]
    fn encode_framed_failure_leaves_buffer_untouched() {
        let good = WireMessage::signal("src", 1);
        let bad = WireMessage::data("x".repeat(300), 0, 0, Bytes::new());
        let mut batch = BytesMut::new();
        good.encode_framed_into(&mut batch).unwrap();
        let len_before = batch.len();
        assert!(bad.encode_framed_into(&mut batch).is_err());
        assert_eq!(batch.len(), len_before, "torn frame left in batch buffer");
        let mut cursor = std::io::Cursor::new(batch.freeze());
        assert_eq!(read_frame(&mut cursor).unwrap(), good);
    }

    #[test]
    fn read_frame_rejects_giant_prefix() {
        let bytes = (u32::MAX).to_be_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            NetError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn mid_frame_eof_is_io_error() {
        let a = sample();
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(NetError::Io(_))));
    }

    #[test]
    fn decode_shared_matches_decode() {
        let msg = WireMessage::data("video.frames", 7, 99, Bytes::from_static(b"payload"));
        let mut framed = BytesMut::new();
        msg.encode_framed_into(&mut framed).unwrap();
        let frozen = framed.freeze();
        let body = frozen.slice(4..);
        let copied = WireMessage::decode(&body).unwrap();
        let shared = WireMessage::decode_shared(&body).unwrap();
        assert_eq!(copied, shared);
        assert_eq!(shared, msg);
    }

    #[test]
    fn decode_shared_payload_borrows_the_frame() {
        let msg = WireMessage::data("c", 1, 2, Bytes::from_static(b"borrowed-bytes"));
        let mut framed = BytesMut::new();
        msg.encode_framed_into(&mut framed).unwrap();
        let frozen = framed.freeze();
        let body = frozen.slice(4..);
        let decoded = WireMessage::decode_shared(&body).unwrap();
        let frame_range = frozen.as_ptr() as usize..frozen.as_ptr() as usize + frozen.len();
        let payload_ptr = decoded.payload.as_ptr() as usize;
        assert!(
            frame_range.contains(&payload_ptr),
            "payload must be a slice of the frame allocation"
        );
    }

    #[test]
    fn header_plus_payload_reproduces_framed_encoding() {
        let msg = WireMessage::request("svc", "reply.to", 42, Bytes::from_static(b"args"));
        let mut whole = BytesMut::new();
        msg.encode_framed_into(&mut whole).unwrap();
        let mut header = BytesMut::new();
        msg.encode_framed_header_into(&mut header).unwrap();
        let mut rebuilt = header.to_vec();
        rebuilt.extend_from_slice(&msg.payload);
        assert_eq!(rebuilt, whole.to_vec());
    }

    #[test]
    fn stream_decoder_roundtrips_across_arbitrary_splits() {
        let msgs = [
            sample(),
            WireMessage::signal("s", 3),
            WireMessage::data("ch", 8, 9, Bytes::from(vec![0xAB; 5000])),
        ];
        let mut stream = BytesMut::new();
        for m in &msgs {
            m.encode_framed_into(&mut stream).unwrap();
        }
        let stream = stream.freeze();
        for split in [1usize, 3, 7, 64, 1000, stream.len()] {
            let mut dec = StreamDecoder::new(Arc::new(BufferPool::new(256, 4)));
            for chunk in stream.chunks(split) {
                dec.feed(chunk);
            }
            let mut out = Vec::new();
            while let Some(m) = dec.next_frame() {
                out.push(m);
            }
            assert_eq!(out, msgs, "split size {split}");
            assert!(!dec.is_corrupt());
            assert!(!dec.has_partial());
        }
    }

    #[test]
    fn stream_decoder_reserves_exactly_for_oversized_frames() {
        let big = WireMessage::data("big", 1, 1, Bytes::from(vec![7u8; 10_000]));
        let mut stream = BytesMut::new();
        big.encode_framed_into(&mut stream).unwrap();
        let framed_len = stream.len();
        let mut dec = StreamDecoder::new(Arc::new(BufferPool::new(256, 4)));
        dec.feed(&stream);
        assert_eq!(dec.next_frame().unwrap(), big);
        // While mid-frame the window must have grown to exactly the framed
        // length — not doubled past it.
        let mut dec = StreamDecoder::new(Arc::new(BufferPool::new(256, 4)));
        dec.feed(&stream[..framed_len - 1]);
        assert_eq!(dec.window_capacity(), framed_len);
    }

    #[test]
    fn stream_decoder_poisons_on_giant_prefix_without_buffering() {
        let good = sample();
        let mut stream = BytesMut::new();
        good.encode_framed_into(&mut stream).unwrap();
        stream.put_u32(u32::MAX); // implausible next-frame prefix
        let mut dec = StreamDecoder::new(Arc::new(BufferPool::default()));
        dec.feed(&stream);
        assert_eq!(dec.next_frame().unwrap(), good, "good frames still deliver");
        assert!(dec.is_corrupt());
        assert!(
            dec.read_space().is_empty(),
            "poisoned stream accepts no bytes"
        );
    }

    #[test]
    fn stream_decoder_recycles_chunks_after_payloads_drop() {
        let pool = Arc::new(BufferPool::new(256, 4));
        let msg = WireMessage::data("ch", 1, 1, Bytes::from(vec![1u8; 64]));
        let mut framed = BytesMut::new();
        msg.encode_framed_into(&mut framed).unwrap();
        let mut dec = StreamDecoder::new(Arc::clone(&pool));
        dec.feed(&framed);
        let decoded = dec.next_frame().unwrap();
        assert!(pool.stats().awaiting_reclaim >= 1);
        drop(decoded);
        drop(dec);
        // With the payload gone the chunk handle is unique again.
        let _ = pool.get_scratch();
        assert!(pool.stats().reclaimed >= 1);
    }

    #[test]
    fn frame_batch_matches_legacy_framing() {
        let msgs = [
            sample(),
            WireMessage::signal("sig", 12),
            WireMessage::data("ch", 5, 6, Bytes::from(vec![0x5A; 900])),
        ];
        let mut legacy = BytesMut::new();
        let mut batch = FrameBatch::new();
        for m in &msgs {
            m.encode_framed_into(&mut legacy).unwrap();
            batch.stage(m).unwrap();
        }
        assert_eq!(batch.pending_bytes(), legacy.len());
        let mut wire = Vec::new();
        while !batch.is_empty() {
            batch.write_some(&mut wire, usize::MAX, 64).unwrap();
        }
        assert_eq!(wire, legacy.to_vec());
    }

    /// Writer that accepts at most `cap` bytes per call, exercising the
    /// short-write cursor.
    struct ShortWriter {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_batch_survives_short_writes() {
        let msgs = [
            WireMessage::data("a", 1, 1, Bytes::from(vec![1u8; 300])),
            WireMessage::data("b", 2, 2, Bytes::from(vec![2u8; 17])),
            WireMessage::signal("c", 3),
        ];
        let mut legacy = BytesMut::new();
        let mut batch = FrameBatch::new();
        for m in &msgs {
            m.encode_framed_into(&mut legacy).unwrap();
            batch.stage(m).unwrap();
        }
        for cap in [1usize, 2, 5, 13] {
            let mut b = FrameBatch::new();
            for m in &msgs {
                b.stage(m).unwrap();
            }
            let mut w = ShortWriter {
                out: Vec::new(),
                cap,
            };
            let mut completed = 0;
            while !b.is_empty() {
                let (done, n) = b.write_some(&mut w, 4096, 64).unwrap();
                assert!(n > 0);
                completed += done;
            }
            assert_eq!(completed, msgs.len());
            assert_eq!(w.out, legacy.to_vec(), "cap {cap}");
            assert_eq!(b.pending_bytes(), 0);
        }
    }

    #[test]
    fn frame_batch_respects_byte_and_iovec_caps() {
        let mut batch = FrameBatch::new();
        for i in 0..10u64 {
            batch
                .stage(&WireMessage::data(
                    "c",
                    i,
                    i,
                    Bytes::from(vec![i as u8; 100]),
                ))
                .unwrap();
        }
        let mut out = Vec::new();
        let (_, n) = batch.write_some(&mut out, 50, 64).unwrap();
        assert!(n <= 50, "byte cap honoured");
        let mut out2 = Vec::new();
        let (_, n2) = batch.write_some(&mut out2, usize::MAX, 1).unwrap();
        assert!(n2 > 0);
        // One iovec covers at most one contiguous segment (header or
        // payload), so the write cannot span a segment boundary.
        assert!(n2 <= 4 + MAX_CHANNEL_LEN + 100);
    }

    #[test]
    fn frame_batch_drop_front_refuses_mid_write() {
        let mut batch = FrameBatch::new();
        batch
            .stage(&WireMessage::data("c", 1, 1, Bytes::from(vec![9u8; 200])))
            .unwrap();
        batch.stage(&WireMessage::signal("s", 2)).unwrap();
        let mut w = ShortWriter {
            out: Vec::new(),
            cap: 10,
        };
        batch.write_some(&mut w, 4096, 64).unwrap();
        assert!(batch.drop_front().is_none(), "front frame is mid-write");
        batch.reset_cursor();
        assert!(batch.drop_front().is_some());
    }

    #[test]
    fn frame_batch_stage_error_leaves_batch_clean() {
        let mut batch = FrameBatch::new();
        batch.stage(&sample()).unwrap();
        let before = batch.pending_bytes();
        let bad = WireMessage::data("x".repeat(300), 0, 0, Bytes::new());
        assert!(batch.stage(&bad).is_err());
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.pending_bytes(), before);
        let mut wire = Vec::new();
        while !batch.is_empty() {
            batch.write_some(&mut wire, usize::MAX, 64).unwrap();
        }
        let mut legacy = BytesMut::new();
        sample().encode_framed_into(&mut legacy).unwrap();
        assert_eq!(wire, legacy.to_vec());
    }
}
