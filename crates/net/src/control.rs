//! Fleet control-plane messages.
//!
//! The node ↔ coordinator control plane rides the same [`WireMessage`]
//! framing as the data plane (kind [`MessageKind::Control`], channel
//! [`CONTROL_CHANNEL`]): one TCP transport, one codec, one set of frame
//! limits. A [`ControlMsg`] is the typed payload — handshake, heartbeats,
//! tenant placement commands and epoch-stamped tenant reports carrying
//! module checkpoints for failover redeploys.
//!
//! The codec is hand-written and hostile-input safe like the rest of the
//! wire layer: every length is bounded *before* allocation, unknown tags
//! and trailing garbage are typed errors, and decode never panics.

use crate::error::NetError;
use crate::wire::{MessageKind, WireMessage, MAX_CHANNEL_LEN};
use bytes::Bytes;

/// Channel name carried by every control-plane frame.
pub const CONTROL_CHANNEL: &str = "fleet/ctrl";

/// Upper bound on one serialized module checkpoint (64 KiB). Checkpoints
/// are compact recoverable state (counters, small model state), not media;
/// a larger blob is a bug or an attack, and is rejected before allocation.
pub const MAX_CHECKPOINT_LEN: usize = 64 * 1024;

const TAG_HELLO: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_DEPLOY: u8 = 3;
const TAG_RETIRE: u8 = 4;
const TAG_REPORT: u8 = 5;
const TAG_DRAIN: u8 = 6;
const TAG_BYE: u8 = 7;

/// One fleet control-plane message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// Node → coordinator: first message on connect (and on reconnect).
    /// `control_port` is the node's command listener; the coordinator
    /// dials back to it for deploys and retires.
    Hello {
        /// Stable node identity (survives restarts).
        node_id: String,
        /// TCP port of the node's command listener on the same host.
        control_port: u16,
    },
    /// Node → coordinator: liveness beacon feeding the lease detector.
    Heartbeat {
        /// Sending node.
        node_id: String,
        /// Monotonic per-process heartbeat counter.
        seq: u64,
    },
    /// Coordinator → node: host this tenant's pipeline. Checkpoints (when
    /// present) restore the tenant's modules to their pre-failover state.
    DeployTenant {
        /// Tenant id (also the pipeline name on the node).
        tenant: String,
        /// Tenant fence epoch; the node stamps every report with it and
        /// the coordinator ignores reports from older epochs.
        epoch: u64,
        /// Source frame rate, milli-fps (20.0 fps = 20_000).
        fps_millis: u32,
        /// Checkpoint for the tenant's source module, if one exists.
        /// Shared bytes: on the receive path this is a zero-copy slice of
        /// the frame the deploy arrived in.
        source_ckpt: Option<Bytes>,
        /// Checkpoint for the tenant's sink module, if one exists.
        sink_ckpt: Option<Bytes>,
    },
    /// Coordinator → node: stop hosting this tenant (rebalance). The node
    /// stops the pipeline, takes final checkpoints and answers with one
    /// last [`ControlMsg::TenantReport`] marked `retired`.
    RetireTenant {
        /// Tenant to retire.
        tenant: String,
        /// Epoch the coordinator believes the tenant is at; stale retires
        /// (epoch mismatch) are ignored by the node.
        epoch: u64,
    },
    /// Node → coordinator: periodic (and final) per-tenant progress,
    /// stamped with the tenant's epoch and carrying fresh checkpoints so
    /// the coordinator can redeploy elsewhere after a crash.
    TenantReport {
        /// Reporting node.
        node_id: String,
        /// Tenant the report is about.
        tenant: String,
        /// Tenant fence epoch the node is hosting under.
        epoch: u64,
        /// True on the final report after a retire/drain (the pipeline is
        /// stopped and the checkpoints are the freshest possible).
        retired: bool,
        /// Frames counted exactly-once by the tenant sink.
        counted: u64,
        /// Redelivered frames the sink recognised and refused to recount.
        duplicates: u64,
        /// Frames counted more than once (must stay 0; a non-zero value
        /// is an exactly-once violation).
        double_counted: u64,
        /// Highest frame seq the sink has accepted.
        last_seq: u64,
        /// Latest source-module checkpoint (shared bytes; zero-copy on the
        /// receive path).
        source_ckpt: Option<Bytes>,
        /// Latest sink-module checkpoint.
        sink_ckpt: Option<Bytes>,
    },
    /// Coordinator → node: drain and exit (graceful fleet shutdown).
    Drain,
    /// Node → coordinator: clean goodbye after a drain — every tenant has
    /// sent its final report and the node is about to exit.
    Bye {
        /// Departing node.
        node_id: String,
    },
}

impl ControlMsg {
    /// Serializes into bytes (the payload of a control frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ControlMsg::Hello {
                node_id,
                control_port,
            } => {
                out.push(TAG_HELLO);
                put_str(&mut out, node_id);
                out.extend_from_slice(&control_port.to_be_bytes());
            }
            ControlMsg::Heartbeat { node_id, seq } => {
                out.push(TAG_HEARTBEAT);
                put_str(&mut out, node_id);
                out.extend_from_slice(&seq.to_be_bytes());
            }
            ControlMsg::DeployTenant {
                tenant,
                epoch,
                fps_millis,
                source_ckpt,
                sink_ckpt,
            } => {
                out.push(TAG_DEPLOY);
                put_str(&mut out, tenant);
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(&fps_millis.to_be_bytes());
                put_blob(&mut out, source_ckpt.as_deref());
                put_blob(&mut out, sink_ckpt.as_deref());
            }
            ControlMsg::RetireTenant { tenant, epoch } => {
                out.push(TAG_RETIRE);
                put_str(&mut out, tenant);
                out.extend_from_slice(&epoch.to_be_bytes());
            }
            ControlMsg::TenantReport {
                node_id,
                tenant,
                epoch,
                retired,
                counted,
                duplicates,
                double_counted,
                last_seq,
                source_ckpt,
                sink_ckpt,
            } => {
                out.push(TAG_REPORT);
                put_str(&mut out, node_id);
                put_str(&mut out, tenant);
                out.extend_from_slice(&epoch.to_be_bytes());
                out.push(u8::from(*retired));
                out.extend_from_slice(&counted.to_be_bytes());
                out.extend_from_slice(&duplicates.to_be_bytes());
                out.extend_from_slice(&double_counted.to_be_bytes());
                out.extend_from_slice(&last_seq.to_be_bytes());
                put_blob(&mut out, source_ckpt.as_deref());
                put_blob(&mut out, sink_ckpt.as_deref());
            }
            ControlMsg::Drain => out.push(TAG_DRAIN),
            ControlMsg::Bye { node_id } => {
                out.push(TAG_BYE);
                put_str(&mut out, node_id);
            }
        }
        out
    }

    /// Decodes one control message from `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] on truncation, unknown tags,
    /// over-limit lengths, non-UTF-8 identifiers or trailing garbage —
    /// never panics, never allocates from an unchecked length.
    pub fn decode(buf: &[u8]) -> Result<Self, NetError> {
        Self::decode_cursor(Cursor {
            buf,
            pos: 0,
            owner: None,
        })
    }

    /// Decodes one control message whose bytes are a shared [`Bytes`]
    /// buffer: checkpoint blobs come out as zero-copy slices of `payload`
    /// instead of fresh allocations. Same validation as
    /// [`ControlMsg::decode`].
    ///
    /// # Errors
    ///
    /// Identical to [`ControlMsg::decode`].
    pub fn decode_shared(payload: &Bytes) -> Result<Self, NetError> {
        Self::decode_cursor(Cursor {
            buf: payload,
            pos: 0,
            owner: Some(payload),
        })
    }

    fn decode_cursor(mut cur: Cursor<'_>) -> Result<Self, NetError> {
        let tag = cur.u8()?;
        let msg = match tag {
            TAG_HELLO => ControlMsg::Hello {
                node_id: cur.str()?,
                control_port: u16::from_be_bytes(cur.array()?),
            },
            TAG_HEARTBEAT => ControlMsg::Heartbeat {
                node_id: cur.str()?,
                seq: cur.u64()?,
            },
            TAG_DEPLOY => ControlMsg::DeployTenant {
                tenant: cur.str()?,
                epoch: cur.u64()?,
                fps_millis: u32::from_be_bytes(cur.array()?),
                source_ckpt: cur.blob()?,
                sink_ckpt: cur.blob()?,
            },
            TAG_RETIRE => ControlMsg::RetireTenant {
                tenant: cur.str()?,
                epoch: cur.u64()?,
            },
            TAG_REPORT => ControlMsg::TenantReport {
                node_id: cur.str()?,
                tenant: cur.str()?,
                epoch: cur.u64()?,
                retired: match cur.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(NetError::BadFrame("control: bad bool")),
                },
                counted: cur.u64()?,
                duplicates: cur.u64()?,
                double_counted: cur.u64()?,
                last_seq: cur.u64()?,
                source_ckpt: cur.blob()?,
                sink_ckpt: cur.blob()?,
            },
            TAG_DRAIN => ControlMsg::Drain,
            TAG_BYE => ControlMsg::Bye {
                node_id: cur.str()?,
            },
            _ => return Err(NetError::BadFrame("control: unknown tag")),
        };
        if cur.pos != cur.buf.len() {
            return Err(NetError::BadFrame("control: trailing garbage"));
        }
        Ok(msg)
    }

    /// Wraps the message in a control-plane [`WireMessage`] frame.
    pub fn into_wire(self) -> WireMessage {
        WireMessage {
            kind: MessageKind::Control,
            channel: CONTROL_CHANNEL.to_string(),
            reply_to: String::new(),
            corr_id: 0,
            seq: 0,
            timestamp_ns: 0,
            epoch: 0,
            payload: bytes::Bytes::from(self.encode()),
        }
    }

    /// Extracts a control message from a received frame.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] when the frame is not a
    /// control-plane frame or its payload fails to decode.
    pub fn from_wire(msg: &WireMessage) -> Result<Self, NetError> {
        if msg.kind != MessageKind::Control || msg.channel != CONTROL_CHANNEL {
            return Err(NetError::BadFrame("control: not a control frame"));
        }
        // The payload is already shared bytes (a slice of the read chunk on
        // the zero-copy receive path): checkpoints decode as slices of it.
        Self::decode_shared(&msg.payload)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Identifiers share the wire channel-length cap; encode truncates
    // defensively (identifiers are short by construction).
    let bytes = s.as_bytes();
    let len = bytes.len().min(MAX_CHANNEL_LEN);
    out.push(len as u8);
    out.extend_from_slice(&bytes[..len]);
}

fn put_blob(out: &mut Vec<u8>, blob: Option<&[u8]>) {
    match blob {
        None => out.push(0),
        Some(b) => {
            let len = b.len().min(MAX_CHECKPOINT_LEN);
            out.push(1);
            out.extend_from_slice(&(len as u32).to_be_bytes());
            out.extend_from_slice(&b[..len]);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding from shared bytes, the owning buffer — blobs slice it
    /// instead of allocating. `buf` is always `owner.as_ref()` when set,
    /// so positions in `buf` are offsets into `owner`.
    owner: Option<&'a Bytes>,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(NetError::BadFrame("control: length overflow"))?;
        if end > self.buf.len() {
            return Err(NetError::BadFrame("control: truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], NetError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }

    fn str(&mut self) -> Result<String, NetError> {
        let len = self.u8()? as usize;
        if len > MAX_CHANNEL_LEN {
            return Err(NetError::BadFrame("control: identifier too long"));
        }
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| NetError::BadFrame("control: identifier not utf-8"))
    }

    fn blob(&mut self) -> Result<Option<Bytes>, NetError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let len = u32::from_be_bytes(self.array()?) as usize;
                if len > MAX_CHECKPOINT_LEN {
                    return Err(NetError::BadFrame("control: checkpoint too large"));
                }
                // Bounds-check against the remaining buffer BEFORE any
                // allocation: a hostile length cannot over-allocate.
                let start = self.pos;
                self.take(len)?;
                Ok(Some(match self.owner {
                    // Shared decode: the blob is a zero-copy slice of the
                    // frame's own allocation.
                    Some(owner) => owner.slice(start..start + len),
                    None => Bytes::copy_from_slice(&self.buf[start..start + len]),
                }))
            }
            _ => Err(NetError::BadFrame("control: bad blob flag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ControlMsg> {
        vec![
            ControlMsg::Hello {
                node_id: "node-1".into(),
                control_port: 45_001,
            },
            ControlMsg::Heartbeat {
                node_id: "node-1".into(),
                seq: 42,
            },
            ControlMsg::DeployTenant {
                tenant: "t017".into(),
                epoch: 3,
                fps_millis: 20_000,
                source_ckpt: Some(Bytes::from(vec![1, 0, 0, 0, 0, 0, 0, 0, 9])),
                sink_ckpt: None,
            },
            ControlMsg::RetireTenant {
                tenant: "t017".into(),
                epoch: 3,
            },
            ControlMsg::TenantReport {
                node_id: "node-2".into(),
                tenant: "t017".into(),
                epoch: 3,
                retired: true,
                counted: 812,
                duplicates: 4,
                double_counted: 0,
                last_seq: 815,
                source_ckpt: Some(Bytes::from(vec![7; 32])),
                sink_ckpt: Some(Bytes::from(vec![9; 48])),
            },
            ControlMsg::Drain,
            ControlMsg::Bye {
                node_id: "node-3".into(),
            },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in samples() {
            let decoded = ControlMsg::decode(&msg.encode()).expect("decodes");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn wire_roundtrip() {
        for msg in samples() {
            let frame = msg.clone().into_wire();
            // Through the actual wire codec, like a real TCP hop.
            let mut buf = bytes::BytesMut::new();
            frame.encode_framed_into(&mut buf).expect("encodes");
            let decoded_frame = WireMessage::decode(&buf[4..]).expect("frame decodes");
            assert_eq!(ControlMsg::from_wire(&decoded_frame).expect("msg"), msg);
        }
    }

    #[test]
    fn truncations_are_typed_errors() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    ControlMsg::decode(&bytes[..cut]).is_err(),
                    "truncation at {cut} must fail for {msg:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = ControlMsg::Drain.encode();
        bytes.push(0xAA);
        assert!(ControlMsg::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(ControlMsg::decode(&[0xFF]).is_err());
        assert!(ControlMsg::decode(&[]).is_err());
    }

    #[test]
    fn hostile_checkpoint_length_rejected_before_allocation() {
        // DeployTenant with a blob claiming u32::MAX bytes.
        let mut bytes = Vec::new();
        bytes.push(3); // TAG_DEPLOY
        bytes.push(4);
        bytes.extend_from_slice(b"t001");
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.extend_from_slice(&20_000u32.to_be_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            ControlMsg::decode(&bytes),
            Err(NetError::BadFrame(_))
        ));
    }

    #[test]
    fn non_control_frame_rejected() {
        let mut frame = ControlMsg::Drain.into_wire();
        frame.kind = MessageKind::Data;
        assert!(ControlMsg::from_wire(&frame).is_err());
    }

    #[test]
    fn decode_shared_matches_decode_and_borrows_blobs() {
        for msg in samples() {
            let payload = Bytes::from(msg.encode());
            let copied = ControlMsg::decode(&payload).expect("decode");
            let shared = ControlMsg::decode_shared(&payload).expect("decode_shared");
            assert_eq!(copied, shared);
            assert_eq!(shared, msg);
            if let ControlMsg::TenantReport {
                source_ckpt: Some(ckpt),
                ..
            } = &shared
            {
                let range = payload.as_ptr() as usize..payload.as_ptr() as usize + payload.len();
                assert!(
                    range.contains(&(ckpt.as_ptr() as usize)),
                    "checkpoint must be a slice of the payload allocation"
                );
            }
        }
    }
}
