use crate::error::NetError;
use std::fmt;
use std::str::FromStr;

/// Whether the endpoint binds (listens) or connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndpointMode {
    /// Listen for peers (`bind#…`).
    Bind,
    /// Connect to a bound peer (`connect#…`).
    Connect,
}

/// The underlying transport of an endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EndpointTransport {
    /// TCP: host (or `*` for bind-any) and port.
    Tcp {
        /// Host name or address; `*` means bind-any.
        host: String,
        /// TCP port.
        port: u16,
    },
    /// In-process named channel.
    Inproc {
        /// Channel name.
        name: String,
    },
}

/// A parsed endpoint string.
///
/// The paper's pipeline configuration uses strings like
/// `"bind#tcp://*:5861"` (Listing 1); this type parses exactly that syntax,
/// plus `inproc://name` for co-located modules:
///
/// ```
/// use videopipe_net::{Endpoint, EndpointMode};
///
/// let ep: Endpoint = "bind#tcp://*:5861".parse()?;
/// assert_eq!(ep.mode(), EndpointMode::Bind);
/// assert_eq!(ep.to_string(), "bind#tcp://*:5861");
/// # Ok::<(), videopipe_net::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    mode: EndpointMode,
    transport: EndpointTransport,
}

impl Endpoint {
    /// Creates a TCP bind endpoint on the given port (host `*`).
    pub fn bind_tcp(port: u16) -> Self {
        Endpoint {
            mode: EndpointMode::Bind,
            transport: EndpointTransport::Tcp {
                host: "*".into(),
                port,
            },
        }
    }

    /// Creates a TCP connect endpoint.
    pub fn connect_tcp(host: impl Into<String>, port: u16) -> Self {
        Endpoint {
            mode: EndpointMode::Connect,
            transport: EndpointTransport::Tcp {
                host: host.into(),
                port,
            },
        }
    }

    /// Creates an in-process endpoint (mode is meaningful only for binding
    /// uniqueness).
    pub fn inproc(name: impl Into<String>, mode: EndpointMode) -> Self {
        Endpoint {
            mode,
            transport: EndpointTransport::Inproc { name: name.into() },
        }
    }

    /// The bind/connect mode.
    pub fn mode(&self) -> EndpointMode {
        self.mode
    }

    /// The transport.
    pub fn transport(&self) -> &EndpointTransport {
        &self.transport
    }

    /// Whether this endpoint is in-process.
    pub fn is_inproc(&self) -> bool {
        matches!(self.transport, EndpointTransport::Inproc { .. })
    }

    /// For a TCP endpoint, the `host:port` string a socket API expects
    /// (bind-any `*` becomes `0.0.0.0`).
    pub fn socket_addr(&self) -> Option<String> {
        match &self.transport {
            EndpointTransport::Tcp { host, port } => {
                let host = if host == "*" { "0.0.0.0" } else { host };
                Some(format!("{host}:{port}"))
            }
            EndpointTransport::Inproc { .. } => None,
        }
    }
}

impl FromStr for Endpoint {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |reason: &'static str| NetError::BadEndpoint {
            endpoint: s.to_string(),
            reason,
        };
        // Optional "bind#"/"connect#" prefix; default is bind for inproc,
        // required for tcp.
        let (mode, rest) = if let Some(rest) = s.strip_prefix("bind#") {
            (Some(EndpointMode::Bind), rest)
        } else if let Some(rest) = s.strip_prefix("connect#") {
            (Some(EndpointMode::Connect), rest)
        } else {
            (None, s)
        };

        if let Some(name) = rest.strip_prefix("inproc://") {
            if name.is_empty() {
                return Err(bad("empty inproc channel name"));
            }
            return Ok(Endpoint {
                mode: mode.unwrap_or(EndpointMode::Bind),
                transport: EndpointTransport::Inproc {
                    name: name.to_string(),
                },
            });
        }

        if let Some(addr) = rest.strip_prefix("tcp://") {
            let mode = mode.ok_or_else(|| bad("tcp endpoints need bind# or connect#"))?;
            let (host, port_str) = addr
                .rsplit_once(':')
                .ok_or_else(|| bad("tcp endpoint needs host:port"))?;
            if host.is_empty() {
                return Err(bad("empty host"));
            }
            let port: u16 = port_str.parse().map_err(|_| bad("invalid port"))?;
            if mode == EndpointMode::Connect && host == "*" {
                return Err(bad("cannot connect to wildcard host"));
            }
            return Ok(Endpoint {
                mode,
                transport: EndpointTransport::Tcp {
                    host: host.to_string(),
                    port,
                },
            });
        }

        Err(bad("unknown scheme (expected tcp:// or inproc://)"))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.mode {
            EndpointMode::Bind => "bind",
            EndpointMode::Connect => "connect",
        };
        match &self.transport {
            EndpointTransport::Tcp { host, port } => write!(f, "{mode}#tcp://{host}:{port}"),
            EndpointTransport::Inproc { name } => write!(f, "{mode}#inproc://{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_syntax() {
        let ep: Endpoint = "bind#tcp://*:5861".parse().unwrap();
        assert_eq!(ep.mode(), EndpointMode::Bind);
        assert_eq!(
            ep.transport(),
            &EndpointTransport::Tcp {
                host: "*".into(),
                port: 5861
            }
        );
        assert_eq!(ep.socket_addr().unwrap(), "0.0.0.0:5861");
    }

    #[test]
    fn parses_connect() {
        let ep: Endpoint = "connect#tcp://desktop.local:5862".parse().unwrap();
        assert_eq!(ep.mode(), EndpointMode::Connect);
        assert_eq!(ep.socket_addr().unwrap(), "desktop.local:5862");
    }

    #[test]
    fn parses_inproc_with_default_mode() {
        let ep: Endpoint = "inproc://pose_channel".parse().unwrap();
        assert!(ep.is_inproc());
        assert_eq!(ep.mode(), EndpointMode::Bind);
        assert_eq!(ep.socket_addr(), None);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "bind#tcp://*:5861",
            "connect#tcp://host:80",
            "bind#inproc://abc",
            "connect#inproc://xyz",
        ] {
            let ep: Endpoint = s.parse().unwrap();
            assert_eq!(ep.to_string(), s);
            let again: Endpoint = ep.to_string().parse().unwrap();
            assert_eq!(again, ep);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "tcp://*:1",             // missing mode for tcp
            "bind#tcp://*:notaport", // bad port
            "bind#tcp://:80",        // empty host
            "bind#tcp://hostonly",   // no port
            "connect#tcp://*:80",    // connect to wildcard
            "bind#udp://x:1",        // unknown scheme
            "inproc://",             // empty name
            "bind#tcp://*:99999",    // port overflow
        ] {
            assert!(s.parse::<Endpoint>().is_err(), "{s:?} parsed");
        }
    }

    #[test]
    fn constructors() {
        assert_eq!(Endpoint::bind_tcp(80).to_string(), "bind#tcp://*:80");
        assert_eq!(
            Endpoint::connect_tcp("h", 81).to_string(),
            "connect#tcp://h:81"
        );
        assert!(Endpoint::inproc("n", EndpointMode::Connect).is_inproc());
    }

    #[test]
    fn ipv6_style_host_uses_last_colon() {
        // rsplit_once keeps everything before the last colon as host.
        let ep: Endpoint = "connect#tcp://::1:5000".parse().unwrap();
        assert_eq!(ep.socket_addr().unwrap(), "::1:5000");
    }
}
