use std::error::Error;
use std::fmt;

/// Errors produced by the messaging substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The channel/connection was closed by the other side.
    Disconnected,
    /// Non-blocking receive found no message.
    WouldBlock,
    /// Blocking receive timed out.
    Timeout,
    /// An endpoint string could not be parsed.
    BadEndpoint {
        /// The offending endpoint string.
        endpoint: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// An inproc channel name was already bound.
    AlreadyBound(String),
    /// An inproc channel name is not bound.
    NotBound(String),
    /// A frame on the wire was malformed.
    BadFrame(&'static str),
    /// A frame exceeded [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN).
    FrameTooLarge {
        /// Declared frame length.
        len: usize,
    },
    /// Underlying I/O failure (TCP transport).
    Io(std::io::Error),
    /// A request did not receive a response in time.
    RequestTimeout {
        /// The service channel the request was sent to.
        service: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::WouldBlock => write!(f, "no message ready"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::BadEndpoint { endpoint, reason } => {
                write!(f, "bad endpoint {endpoint:?}: {reason}")
            }
            NetError::AlreadyBound(name) => write!(f, "channel {name:?} already bound"),
            NetError::NotBound(name) => write!(f, "channel {name:?} not bound"),
            NetError::BadFrame(reason) => write!(f, "malformed frame: {reason}"),
            NetError::FrameTooLarge { len } => write!(f, "frame of {len} bytes exceeds limit"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::RequestTimeout { service } => {
                write!(f, "request to service {service:?} timed out")
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl NetError {
    /// Whether the error is transient (retry may succeed).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::WouldBlock | NetError::Timeout | NetError::RequestTimeout { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_for_all_variants() {
        let variants: Vec<NetError> = vec![
            NetError::Disconnected,
            NetError::WouldBlock,
            NetError::Timeout,
            NetError::BadEndpoint {
                endpoint: "x".into(),
                reason: "nope",
            },
            NetError::AlreadyBound("a".into()),
            NetError::NotBound("b".into()),
            NetError::BadFrame("short"),
            NetError::FrameTooLarge { len: 1 },
            NetError::Io(std::io::Error::other("x")),
            NetError::RequestTimeout {
                service: "pose".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn transient_classification() {
        assert!(NetError::WouldBlock.is_transient());
        assert!(NetError::Timeout.is_transient());
        assert!(!NetError::Disconnected.is_transient());
    }

    #[test]
    fn io_error_source_is_preserved() {
        let err = NetError::from(std::io::Error::other("inner"));
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
