//! ZeroMQ-style socket patterns over any [`MsgSender`]/[`MsgReceiver`].
//!
//! * [`PushSocket`]/pull — pipeline edges. A push socket with several peers
//!   round-robins between them, which is exactly how a scaled-out stateless
//!   service receives its share of requests.
//! * [`ReqSocket`]/[`RepServer`] — service calls. The requester owns a
//!   private inbox; requests carry the inbox name and a correlation id, and
//!   [`ReqSocket::call`] blocks until the matching response arrives.
//! * Pub/sub lives on [`InprocHub`](crate::InprocHub) (see
//!   [`InprocHub::publish`](crate::InprocHub::publish)); cross-device pub/sub
//!   is a push edge to a republishing module, as in the paper's display
//!   service.

use crate::error::NetError;
use crate::wire::{MessageKind, WireMessage};
use crate::{MsgReceiver, MsgSender};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Fan-out/round-robin sending end of a PUSH/PULL edge.
pub struct PushSocket {
    peers: Vec<Box<dyn MsgSender>>,
    next: AtomicUsize,
}

impl PushSocket {
    /// Creates a push socket with one peer.
    pub fn new(peer: Box<dyn MsgSender>) -> Self {
        PushSocket {
            peers: vec![peer],
            next: AtomicUsize::new(0),
        }
    }

    /// Creates a push socket balancing over several peers.
    ///
    /// # Panics
    ///
    /// Panics when `peers` is empty.
    pub fn balanced(peers: Vec<Box<dyn MsgSender>>) -> Self {
        assert!(!peers.is_empty(), "push socket needs at least one peer");
        PushSocket {
            peers,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Sends to the next peer (round-robin).
    ///
    /// # Errors
    ///
    /// Propagates the peer's send error.
    pub fn send(&self, msg: WireMessage) -> Result<(), NetError> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.peers.len();
        self.peers[idx].send(msg)
    }
}

impl std::fmt::Debug for PushSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PushSocket")
            .field("peers", &self.peers.len())
            .finish()
    }
}

impl MsgSender for PushSocket {
    fn send(&self, msg: WireMessage) -> Result<(), NetError> {
        PushSocket::send(self, msg)
    }
}

/// The requesting side of REQ/REP: sends requests to a service and waits for
/// correlated responses on a private inbox.
pub struct ReqSocket {
    service: String,
    inbox_name: String,
    to_service: Box<dyn MsgSender>,
    inbox: Box<dyn MsgReceiver>,
    next_corr: AtomicU64,
    timeout: Duration,
}

impl ReqSocket {
    /// Creates a requester.
    ///
    /// * `service` — the service channel name requests are addressed to.
    /// * `inbox_name` — the requester's private response channel name.
    /// * `to_service` — a sender reaching the service.
    /// * `inbox` — the receiver bound to `inbox_name`.
    pub fn new(
        service: impl Into<String>,
        inbox_name: impl Into<String>,
        to_service: Box<dyn MsgSender>,
        inbox: Box<dyn MsgReceiver>,
    ) -> Self {
        ReqSocket {
            service: service.into(),
            inbox_name: inbox_name.into(),
            to_service,
            inbox,
            next_corr: AtomicU64::new(1),
            timeout: Duration::from_secs(10),
        }
    }

    /// Sets the per-call timeout (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The service this socket calls.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// Performs one blocking request/response exchange.
    ///
    /// Stale responses (from timed-out earlier calls) are discarded.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::RequestTimeout`] when no response arrives in
    /// time, or transport errors.
    pub fn call(&self, payload: Bytes) -> Result<Bytes, NetError> {
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let req = WireMessage::request(
            self.service.clone(),
            self.inbox_name.clone(),
            corr_id,
            payload,
        );
        self.to_service.send(req)?;
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(NetError::RequestTimeout {
                    service: self.service.clone(),
                });
            }
            match self.inbox.recv_timeout(remaining) {
                Ok(msg) if msg.kind == MessageKind::Response && msg.corr_id == corr_id => {
                    return Ok(msg.payload);
                }
                Ok(_stale) => continue,
                Err(NetError::Timeout) => {
                    return Err(NetError::RequestTimeout {
                        service: self.service.clone(),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl std::fmt::Debug for ReqSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReqSocket")
            .field("service", &self.service)
            .field("inbox", &self.inbox_name)
            .finish()
    }
}

/// Resolves a requester's reply channel name to a sender.
pub type ReplyResolver = Box<dyn Fn(&str) -> Result<Box<dyn MsgSender>, NetError> + Send>;

/// The serving side of REQ/REP: a loop that answers requests with a handler
/// function. One `RepServer::serve_*` call handles one request; services run
/// it in their executor loop.
pub struct RepServer {
    inbox: Box<dyn MsgReceiver>,
    reply_via: ReplyResolver,
}

impl RepServer {
    /// Creates a server reading requests from `inbox`; `reply_via` resolves
    /// a requester's reply channel to a sender (e.g. `hub.connect`).
    pub fn new(inbox: Box<dyn MsgReceiver>, reply_via: ReplyResolver) -> Self {
        RepServer { inbox, reply_via }
    }

    /// Waits up to `timeout` for one request and answers it with `handler`.
    ///
    /// Returns `Ok(true)` if a request was served, `Ok(false)` on timeout.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; handler errors are returned to the
    /// caller after an empty response is sent (so requesters don't hang).
    pub fn serve_one<F>(&self, timeout: Duration, handler: F) -> Result<bool, NetError>
    where
        F: FnOnce(&WireMessage) -> Bytes,
    {
        let req = match self.inbox.recv_timeout(timeout) {
            Ok(msg) if msg.kind == MessageKind::Request => msg,
            Ok(_) => return Ok(false), // ignore non-requests
            Err(NetError::Timeout) => return Ok(false),
            Err(e) => return Err(e),
        };
        let payload = handler(&req);
        if !req.reply_to.is_empty() {
            let sender = (self.reply_via)(&req.reply_to)?;
            sender.send(WireMessage::response_to(&req, payload))?;
        }
        Ok(true)
    }
}

impl std::fmt::Debug for RepServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepServer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::InprocHub;

    #[test]
    fn push_round_robins() {
        let hub = InprocHub::new();
        let rx1 = hub.bind("w1").unwrap();
        let rx2 = hub.bind("w2").unwrap();
        let push = PushSocket::balanced(vec![
            Box::new(hub.connect("w1").unwrap()),
            Box::new(hub.connect("w2").unwrap()),
        ]);
        assert_eq!(push.peer_count(), 2);
        for i in 0..6 {
            push.send(WireMessage::signal("w", i)).unwrap();
        }
        assert_eq!(rx1.pending(), 3);
        assert_eq!(rx2.pending(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_push_panics() {
        let _ = PushSocket::balanced(vec![]);
    }

    #[test]
    fn req_rep_roundtrip() {
        let hub = InprocHub::new();
        let service_inbox = hub.bind("echo_svc").unwrap();
        let client_inbox = hub.bind("client_inbox").unwrap();

        let hub_for_replies = hub.clone();
        let server = RepServer::new(
            Box::new(service_inbox),
            Box::new(move |reply_to| {
                hub_for_replies
                    .connect(reply_to)
                    .map(|s| Box::new(s) as Box<dyn MsgSender>)
            }),
        );
        let server_thread = std::thread::spawn(move || {
            // Serve two requests.
            for _ in 0..2 {
                server
                    .serve_one(Duration::from_secs(2), |req| {
                        let mut echoed = req.payload.to_vec();
                        echoed.reverse();
                        Bytes::from(echoed)
                    })
                    .unwrap();
            }
        });

        let req = ReqSocket::new(
            "echo_svc",
            "client_inbox",
            Box::new(hub.connect("echo_svc").unwrap()),
            Box::new(client_inbox),
        )
        .with_timeout(Duration::from_secs(2));

        let resp = req.call(Bytes::from_static(b"abc")).unwrap();
        assert_eq!(&resp[..], b"cba");
        let resp2 = req.call(Bytes::from_static(b"12345")).unwrap();
        assert_eq!(&resp2[..], b"54321");
        server_thread.join().unwrap();
    }

    #[test]
    fn req_times_out_without_server() {
        let hub = InprocHub::new();
        let _service_inbox = hub.bind("slow_svc").unwrap(); // bound, never served
        let client_inbox = hub.bind("cli").unwrap();
        let req = ReqSocket::new(
            "slow_svc",
            "cli",
            Box::new(hub.connect("slow_svc").unwrap()),
            Box::new(client_inbox),
        )
        .with_timeout(Duration::from_millis(30));
        assert!(matches!(
            req.call(Bytes::new()),
            Err(NetError::RequestTimeout { .. })
        ));
    }

    #[test]
    fn stale_responses_are_discarded() {
        let hub = InprocHub::new();
        let service_inbox = hub.bind("svc").unwrap();
        let client_inbox = hub.bind("cli2").unwrap();
        // Pre-inject a stale response with a wrong corr_id.
        hub.connect("cli2")
            .unwrap()
            .send(WireMessage {
                kind: MessageKind::Response,
                channel: "cli2".into(),
                reply_to: String::new(),
                corr_id: 999,
                seq: 0,
                timestamp_ns: 0,
                epoch: 0,
                payload: Bytes::from_static(b"stale"),
            })
            .unwrap();

        let hub_for_replies = hub.clone();
        let server = RepServer::new(
            Box::new(service_inbox),
            Box::new(move |r| {
                hub_for_replies
                    .connect(r)
                    .map(|s| Box::new(s) as Box<dyn MsgSender>)
            }),
        );
        let t = std::thread::spawn(move || {
            server
                .serve_one(Duration::from_secs(2), |_| Bytes::from_static(b"fresh"))
                .unwrap();
        });
        let req = ReqSocket::new(
            "svc",
            "cli2",
            Box::new(hub.connect("svc").unwrap()),
            Box::new(client_inbox),
        )
        .with_timeout(Duration::from_secs(2));
        assert_eq!(&req.call(Bytes::new()).unwrap()[..], b"fresh");
        t.join().unwrap();
    }

    #[test]
    fn rep_ignores_non_request_messages() {
        let hub = InprocHub::new();
        let inbox = hub.bind("svc2").unwrap();
        hub.connect("svc2")
            .unwrap()
            .send(WireMessage::signal("svc2", 1))
            .unwrap();
        let server = RepServer::new(Box::new(inbox), Box::new(|_| Err(NetError::Disconnected)));
        let served = server
            .serve_one(Duration::from_millis(20), |_| Bytes::new())
            .unwrap();
        assert!(!served);
    }
}
