//! Process-wide wire-path counters.
//!
//! The zero-copy data plane makes claims — "≤ 1 payload copy per
//! direction", "frames batch into vectored writes", "read chunks come from
//! the pool" — and these counters are how the claims are checked at run
//! time instead of trusted. Everything is a relaxed atomic: increments sit
//! on hot paths and only ever feed monitoring, never control flow.
//!
//! [`snapshot`] returns a copy; callers measuring a workload take one
//! snapshot before and one after and subtract.

use std::sync::atomic::{AtomicU64, Ordering};

/// Payloads copied out of a receive buffer (legacy borrow-free decode).
pub(crate) static RX_PAYLOAD_COPIES: AtomicU64 = AtomicU64::new(0);
/// Frames decoded as zero-copy slices of a shared read chunk.
pub(crate) static RX_ZERO_COPY_FRAMES: AtomicU64 = AtomicU64::new(0);
/// Read-chunk rotations (one freeze per rotation, amortised over frames).
pub(crate) static RX_CHUNK_ROTATIONS: AtomicU64 = AtomicU64::new(0);
/// Bytes of trailing partial frames carried into the next chunk — the only
/// receive-side memcpy besides the kernel read itself.
pub(crate) static RX_TAIL_COPY_BYTES: AtomicU64 = AtomicU64::new(0);
/// Vectored writes issued by frame batches.
pub(crate) static TX_VECTORED_WRITES: AtomicU64 = AtomicU64::new(0);
/// I/O slices those writes carried (≈ 2 per frame: header + payload).
pub(crate) static TX_IOVECS: AtomicU64 = AtomicU64::new(0);
/// Frames fully written by vectored writes.
pub(crate) static TX_FRAMES: AtomicU64 = AtomicU64::new(0);
/// Pool buffers reclaimed via refcount drop (no allocation, no copy).
pub(crate) static POOL_RECLAIMED: AtomicU64 = AtomicU64::new(0);
/// Pool requests that fell through to a fresh allocation.
pub(crate) static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of every wire-path counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Payloads copied out of a receive buffer (legacy decode path).
    pub rx_payload_copies: u64,
    /// Frames decoded as zero-copy slices of a shared read chunk.
    pub rx_zero_copy_frames: u64,
    /// Read-chunk rotations (one O(1) freeze each).
    pub rx_chunk_rotations: u64,
    /// Partial-frame tail bytes copied across chunk rotations.
    pub rx_tail_copy_bytes: u64,
    /// Vectored writes issued.
    pub tx_vectored_writes: u64,
    /// I/O slices carried by those writes.
    pub tx_iovecs: u64,
    /// Frames fully written.
    pub tx_frames: u64,
    /// Pool buffers reclaimed after their refcount dropped.
    pub pool_reclaimed: u64,
    /// Pool requests served by a fresh allocation.
    pub pool_misses: u64,
}

impl NetCounters {
    /// Counter-wise difference versus an earlier snapshot.
    #[must_use]
    pub fn delta_since(&self, earlier: &NetCounters) -> NetCounters {
        NetCounters {
            rx_payload_copies: self.rx_payload_copies - earlier.rx_payload_copies,
            rx_zero_copy_frames: self.rx_zero_copy_frames - earlier.rx_zero_copy_frames,
            rx_chunk_rotations: self.rx_chunk_rotations - earlier.rx_chunk_rotations,
            rx_tail_copy_bytes: self.rx_tail_copy_bytes - earlier.rx_tail_copy_bytes,
            tx_vectored_writes: self.tx_vectored_writes - earlier.tx_vectored_writes,
            tx_iovecs: self.tx_iovecs - earlier.tx_iovecs,
            tx_frames: self.tx_frames - earlier.tx_frames,
            pool_reclaimed: self.pool_reclaimed - earlier.pool_reclaimed,
            pool_misses: self.pool_misses - earlier.pool_misses,
        }
    }
}

/// Reads every counter (relaxed; individually consistent, not a fence).
pub fn snapshot() -> NetCounters {
    NetCounters {
        rx_payload_copies: RX_PAYLOAD_COPIES.load(Ordering::Relaxed),
        rx_zero_copy_frames: RX_ZERO_COPY_FRAMES.load(Ordering::Relaxed),
        rx_chunk_rotations: RX_CHUNK_ROTATIONS.load(Ordering::Relaxed),
        rx_tail_copy_bytes: RX_TAIL_COPY_BYTES.load(Ordering::Relaxed),
        tx_vectored_writes: TX_VECTORED_WRITES.load(Ordering::Relaxed),
        tx_iovecs: TX_IOVECS.load(Ordering::Relaxed),
        tx_frames: TX_FRAMES.load(Ordering::Relaxed),
        pool_reclaimed: POOL_RECLAIMED.load(Ordering::Relaxed),
        pool_misses: POOL_MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counterwise() {
        let a = NetCounters {
            rx_payload_copies: 1,
            tx_frames: 10,
            ..NetCounters::default()
        };
        let b = NetCounters {
            rx_payload_copies: 4,
            tx_frames: 25,
            ..NetCounters::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.rx_payload_copies, 3);
        assert_eq!(d.tx_frames, 15);
    }
}
