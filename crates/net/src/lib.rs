//! Brokerless messaging substrate for VideoPipe.
//!
//! The paper uses ZeroMQ (§3.2): pipeline edges and service calls are direct
//! socket connections — explicitly *not* brokered like Kafka/RabbitMQ,
//! because "these brokers will incur extra data communication overheads".
//! This crate is the from-scratch equivalent:
//!
//! * [`WireMessage`] — the framed wire format (kind, channel, correlation
//!   id, sequence, timestamp, payload bytes) with a hand-written codec.
//! * [`Endpoint`] — endpoint strings exactly as they appear in the paper's
//!   pipeline configuration (`"bind#tcp://*:5861"`), plus `inproc://`.
//! * [`InprocHub`] — named in-process channels (crossbeam-backed) used for
//!   co-located modules and services.
//! * [`tcp`] — a real TCP transport with length-prefixed framing for
//!   cross-device edges.
//! * [`patterns`] — the ZeroMQ-style socket patterns the runtime needs:
//!   PUSH/PULL for pipeline edges, REQ/REP for service calls, PUB/SUB for
//!   displays and telemetry.
//! * [`broker`] — a deliberately *brokered* relay used only as the ablation
//!   baseline that quantifies the paper's extra-hop claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod control;
mod endpoint;
mod error;
mod inproc;
pub mod patterns;
pub mod pool;
pub mod tcp;
pub mod telemetry;
mod wire;

pub use endpoint::{Endpoint, EndpointMode, EndpointTransport};
pub use error::NetError;
pub use inproc::{InprocHub, InprocReceiver, InprocSender};
pub use pool::{BufferPool, PoolStats};
pub use tcp::PollEndpoint;
pub use wire::{
    read_frame, write_frame, FrameBatch, MessageKind, StreamDecoder, WireMessage, MAX_CHANNEL_LEN,
    MAX_FRAME_LEN,
};

use std::time::Duration;

/// Sending half of a message transport.
pub trait MsgSender: Send {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when the peer is gone or the message cannot be
    /// encoded/transmitted.
    fn send(&self, msg: WireMessage) -> Result<(), NetError>;
}

/// Receiving half of a message transport.
pub trait MsgReceiver: Send {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] when every sender is gone.
    fn recv(&self) -> Result<WireMessage, NetError>;

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::WouldBlock`] when no message is ready and
    /// [`NetError::Disconnected`] when every sender is gone.
    fn try_recv(&self) -> Result<WireMessage, NetError>;

    /// Receive with a timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] on expiry and
    /// [`NetError::Disconnected`] when every sender is gone.
    fn recv_timeout(&self, timeout: Duration) -> Result<WireMessage, NetError>;
}
