//! TCP transport with length-prefixed framing.
//!
//! Cross-device pipeline edges use this transport: a [`TcpListenerHandle`]
//! accepts any number of peers and funnels their frames into one receiver
//! (matching ZeroMQ PULL semantics), and [`TcpSender`] is the connecting
//! side. Frames are encoded with [`WireMessage::encode`] behind a `u32`
//! length prefix.

use crate::error::NetError;
use crate::wire::{read_frame, write_frame, WireMessage};
use crate::{MsgReceiver, MsgSender};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bound TCP endpoint: accepts peers in the background and exposes their
/// merged frame stream as a [`MsgReceiver`].
pub struct TcpListenerHandle {
    local_port: u16,
    rx: Receiver<WireMessage>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpListenerHandle {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_port = listener.local_addr()?.port();
        let (tx, rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("vp-tcp-accept-{local_port}"))
            .spawn(move || accept_loop(listener, tx, flag))
            .expect("spawn accept thread");
        Ok(TcpListenerHandle {
            local_port,
            rx,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The port actually bound (useful with port 0).
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Requests shutdown of the accept loop (reader threads end when their
    /// peers disconnect).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for TcpListenerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            // The accept loop polls every few ms; joining is quick.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TcpListenerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpListenerHandle")
            .field("local_port", &self.local_port)
            .finish_non_exhaustive()
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<WireMessage>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let tx = tx.clone();
                let flag = Arc::clone(&shutdown);
                let _ = std::thread::Builder::new()
                    .name("vp-tcp-reader".into())
                    .spawn(move || reader_loop(stream, tx, flag));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn reader_loop(stream: TcpStream, tx: Sender<WireMessage>, shutdown: Arc<AtomicBool>) {
    // Blocking reads with a timeout so shutdown is honoured.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut reader = BufReader::new(stream);
    while !shutdown.load(Ordering::SeqCst) {
        match read_frame(&mut reader) {
            Ok(msg) => {
                if tx.send(msg).is_err() {
                    break; // receiver dropped
                }
            }
            Err(NetError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break, // disconnect or corrupt stream
        }
    }
}

impl MsgReceiver for TcpListenerHandle {
    fn recv(&self) -> Result<WireMessage, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    fn try_recv(&self) -> Result<WireMessage, NetError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => NetError::WouldBlock,
            TryRecvError::Disconnected => NetError::Disconnected,
        })
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<WireMessage, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }
}

/// The connecting side of a TCP edge.
pub struct TcpSender {
    stream: Mutex<TcpStream>,
    peer: String,
}

impl TcpSender {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpSender {
            stream: Mutex::new(stream),
            peer: addr.to_string(),
        })
    }

    /// Connects, retrying for up to `timeout` (used when the bind side races
    /// the connect side during deployment).
    ///
    /// # Errors
    ///
    /// Returns the last connection error after the deadline.
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<Self, NetError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(sender) => return Ok(sender),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// The peer address.
    pub fn peer(&self) -> &str {
        &self.peer
    }
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender").field("peer", &self.peer).finish()
    }
}

impl MsgSender for TcpSender {
    fn send(&self, msg: WireMessage) -> Result<(), NetError> {
        let mut stream = self.stream.lock();
        write_frame(&mut *stream, &msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn end_to_end_over_loopback() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        for i in 0..10u64 {
            sender
                .send(WireMessage::data("mod_b", i, i * 10, Bytes::from(vec![i as u8; 100])))
                .unwrap();
        }
        for i in 0..10u64 {
            let msg = listener.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg.seq, i);
            assert_eq!(msg.payload.len(), 100);
        }
    }

    #[test]
    fn multiple_senders_merge() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let s1 = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        let s2 = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        s1.send(WireMessage::signal("x", 1)).unwrap();
        s2.send(WireMessage::signal("x", 2)).unwrap();
        let mut seqs = vec![
            listener.recv_timeout(Duration::from_secs(2)).unwrap().seq,
            listener.recv_timeout(Duration::from_secs(2)).unwrap().seq,
        ];
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn connect_to_dead_port_fails() {
        // Bind then drop to find a (very likely) free port.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        assert!(TcpSender::connect(&format!("127.0.0.1:{port}")).is_err());
    }

    #[test]
    fn large_payload_roundtrip() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        let payload = Bytes::from(vec![7u8; 512 * 1024]);
        sender
            .send(WireMessage::data("m", 0, 0, payload.clone()))
            .unwrap();
        let msg = listener.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg.payload, payload);
    }

    #[test]
    fn try_recv_empty_then_message() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        assert!(matches!(listener.try_recv(), Err(NetError::WouldBlock)));
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        sender.send(WireMessage::signal("s", 9)).unwrap();
        // Poll until the reader thread delivers.
        let msg = listener.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.seq, 9);
    }

    #[test]
    fn shutdown_is_clean() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let port = listener.local_port();
        drop(listener); // must not hang
        // Port becomes reusable shortly after.
        let _ = port;
    }
}
