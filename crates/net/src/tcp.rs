//! TCP transport with length-prefixed framing.
//!
//! Cross-device pipeline edges use this transport: a [`TcpListenerHandle`]
//! accepts any number of peers and funnels their frames into one receiver
//! (matching ZeroMQ PULL semantics), and [`TcpSender`] is the connecting
//! side. Frames carry a `u32` length prefix; both directions run the
//! zero-copy wire path — receivers reassemble frames in pooled chunks via
//! [`StreamDecoder`] so payloads are shared slices of the read buffer, and
//! senders stage frames in a [`FrameBatch`] flushed with vectored writes so
//! a whole coalesced burst (see [`CoalescePolicy`]) is one syscall with no
//! payload copy.

use crate::error::NetError;
use crate::pool::BufferPool;
use crate::wire::{FrameBatch, StreamDecoder, WireMessage};
use crate::{MsgReceiver, MsgSender};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::io::Read;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A bound TCP endpoint: accepts peers in the background and exposes their
/// merged frame stream as a [`MsgReceiver`].
pub struct TcpListenerHandle {
    local_port: u16,
    rx: Receiver<WireMessage>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpListenerHandle {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_port = listener.local_addr()?.port();
        let (tx, rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("vp-tcp-accept-{local_port}"))
            .spawn(move || accept_loop(listener, tx, flag))
            .expect("spawn accept thread");
        Ok(TcpListenerHandle {
            local_port,
            rx,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The port actually bound (useful with port 0).
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Requests shutdown of the accept loop (reader threads end when their
    /// peers disconnect).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for TcpListenerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            // The accept loop polls every few ms; joining is quick.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TcpListenerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpListenerHandle")
            .field("local_port", &self.local_port)
            .finish_non_exhaustive()
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<WireMessage>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let tx = tx.clone();
                let flag = Arc::clone(&shutdown);
                let _ = std::thread::Builder::new()
                    .name("vp-tcp-reader".into())
                    .spawn(move || reader_loop(stream, tx, flag));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn reader_loop(mut stream: TcpStream, tx: Sender<WireMessage>, shutdown: Arc<AtomicBool>) {
    // Blocking reads with a timeout so shutdown is honoured. Bytes land
    // directly in the decoder's pooled chunk; decoded payloads are
    // zero-copy slices of it.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut decoder = StreamDecoder::new(Arc::new(BufferPool::default()));
    while !shutdown.load(Ordering::SeqCst) {
        let space = decoder.read_space();
        if space.is_empty() {
            break; // corrupt stream
        }
        match stream.read(space) {
            Ok(0) => break, // clean EOF
            Ok(n) => {
                decoder.commit(n);
                while let Some(msg) = decoder.next_frame() {
                    if tx.send(msg).is_err() {
                        return; // receiver dropped
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break, // disconnect
        }
    }
}

impl MsgReceiver for TcpListenerHandle {
    fn recv(&self) -> Result<WireMessage, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    fn try_recv(&self) -> Result<WireMessage, NetError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => NetError::WouldBlock,
            TryRecvError::Disconnected => NetError::Disconnected,
        })
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<WireMessage, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }
}

/// Reconnect behaviour for a [`TcpSender`].
///
/// With a policy installed, `send` never surfaces a disconnect: messages are
/// buffered (up to `buffer_limit`, oldest dropped first) while the sender
/// re-dials the peer with exponential backoff. Without one, a broken pipe is
/// reported as a typed [`NetError::Disconnected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Delay before the first re-dial after a failed attempt.
    pub base_backoff: Duration,
    /// Ceiling for the doubling backoff.
    pub max_backoff: Duration,
    /// Messages buffered while disconnected; beyond this the oldest is
    /// dropped (and counted) — bounded memory, like a ZeroMQ high-water mark.
    pub buffer_limit: usize,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            buffer_limit: 1024,
        }
    }
}

/// Small-message coalescing for a [`TcpSender`].
///
/// With a policy installed, messages are staged in the sender and flushed
/// as one vectored batch write when the pending bytes reach `max_bytes`
/// or the oldest staged message has waited `max_delay` (a background
/// flusher honours the deadline when sends pause). Trades a bounded,
/// sub-millisecond latency hit for one syscall per batch instead of one
/// per message — the classic Nagle trade, but with an explicit budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Flush once the staged batch reaches this many bytes.
    pub max_bytes: usize,
    /// Flush no later than this after the first message was staged.
    pub max_delay: Duration,
    /// Ceiling on I/O slices per vectored write (≈ 2 per frame: header +
    /// payload). Bounds per-syscall setup cost and stays well under the
    /// kernel's `IOV_MAX`.
    pub max_iovecs: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy {
            max_bytes: 16 * 1024,
            max_delay: Duration::from_micros(500),
            max_iovecs: DEFAULT_MAX_IOVECS,
        }
    }
}

/// Default iovec ceiling per vectored write.
pub const DEFAULT_MAX_IOVECS: usize = 64;

/// Ceiling on a single batch write: bounds the bytes that can be torn or
/// resent around a mid-batch disconnect.
const FLUSH_CHUNK: usize = 64 * 1024;

/// Everything about the connection that changes over its lifetime.
struct SenderState {
    stream: Option<TcpStream>,
    /// Staged frames awaiting the wire: headers pre-encoded into pooled
    /// arenas, payloads shared — flushed with vectored writes.
    batch: FrameBatch,
    /// When the oldest staged message was queued (coalescing deadline).
    batch_since: Option<Instant>,
    next_attempt: Instant,
    backoff: Duration,
}

impl SenderState {
    fn new(stream: Option<TcpStream>) -> Self {
        SenderState {
            stream,
            batch: FrameBatch::new(),
            batch_since: None,
            next_attempt: Instant::now(),
            backoff: Duration::from_millis(5),
        }
    }

    fn clear_backlog(&mut self) {
        self.batch.clear();
        self.batch_since = None;
    }
}

/// State and counters shared with the background deadline flusher.
struct SenderShared {
    state: Mutex<SenderState>,
    dropped: AtomicU64,
    reconnects: AtomicU64,
    /// Vectored writes issued (each is one batch of frame segments).
    wire_writes: AtomicU64,
    /// Messages those writes carried.
    wire_messages: AtomicU64,
    /// Iovec ceiling per write (from [`CoalescePolicy::max_iovecs`]).
    max_iovecs: AtomicUsize,
}

impl SenderShared {
    /// Writes as much of the backlog as the connection accepts, in order,
    /// flushing vectored batches of up to [`FLUSH_CHUNK`] bytes. On a
    /// disconnect-flavoured error the stream is dropped and the unsent
    /// tail stays staged for the next attempt, with the front frame's
    /// write cursor rewound so the replacement connection sees it whole.
    fn flush(&self, state: &mut SenderState) -> Result<(), NetError> {
        let max_iovecs = self.max_iovecs.load(Ordering::Relaxed);
        let mut lost = false;
        while !state.batch.is_empty() {
            let Some(stream) = state.stream.as_mut() else {
                break;
            };
            match state.batch.write_some(stream, FLUSH_CHUNK, max_iovecs) {
                Ok((completed, _bytes)) => {
                    self.wire_writes.fetch_add(1, Ordering::Relaxed);
                    self.wire_messages
                        .fetch_add(completed as u64, Ordering::Relaxed);
                }
                Err(e) if is_disconnect(e.kind()) => {
                    lost = true;
                    break;
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        if state.batch.is_empty() {
            state.batch_since = None;
        }
        if lost {
            state.stream = None;
            state.batch.reset_cursor();
            state.next_attempt = Instant::now();
        }
        Ok(())
    }
}

/// True for the error kinds a dead peer produces on write.
fn is_disconnect(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// The connecting side of a TCP edge.
pub struct TcpSender {
    shared: Arc<SenderShared>,
    peer: String,
    reconnect: Option<ReconnectPolicy>,
    coalesce: Option<CoalescePolicy>,
    stop_flusher: Arc<AtomicBool>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl TcpSender {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpSender {
            shared: Arc::new(SenderShared {
                state: Mutex::new(SenderState::new(Some(stream))),
                dropped: AtomicU64::new(0),
                reconnects: AtomicU64::new(0),
                wire_writes: AtomicU64::new(0),
                wire_messages: AtomicU64::new(0),
                max_iovecs: AtomicUsize::new(DEFAULT_MAX_IOVECS),
            }),
            peer: addr.to_string(),
            reconnect: None,
            coalesce: None,
            stop_flusher: Arc::new(AtomicBool::new(false)),
            flusher: None,
        })
    }

    /// Connects, retrying for up to `timeout` (used when the bind side races
    /// the connect side during deployment).
    ///
    /// # Errors
    ///
    /// Returns the last connection error after the deadline.
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<Self, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(sender) => return Ok(sender),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Installs a reconnect policy: mid-stream disconnects buffer and
    /// re-dial instead of erroring.
    #[must_use]
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.shared.state.lock().backoff = policy.base_backoff;
        self.reconnect = Some(policy);
        self
    }

    /// Installs a coalescing policy and starts the background deadline
    /// flusher; see [`CoalescePolicy`].
    #[must_use]
    pub fn with_coalescing(mut self, policy: CoalescePolicy) -> Self {
        self.coalesce = Some(policy);
        self.shared
            .max_iovecs
            .store(policy.max_iovecs.max(1), Ordering::Relaxed);
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop_flusher);
        // Tick well inside the deadline so a staged batch overshoots
        // `max_delay` by at most ~half a tick.
        let tick = (policy.max_delay / 2).max(Duration::from_micros(100));
        let flusher = std::thread::Builder::new()
            .name("vp-tcp-flush".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    let mut state = shared.state.lock();
                    if state.stream.is_none() || state.batch.is_empty() {
                        continue;
                    }
                    let expired = state
                        .batch_since
                        .is_some_and(|since| since.elapsed() >= policy.max_delay);
                    if expired {
                        // Errors surface on the caller's next send.
                        let _ = shared.flush(&mut state);
                    }
                }
            })
            .expect("spawn tcp flusher thread");
        self.flusher = Some(flusher);
        self
    }

    /// The peer address.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Messages dropped because the reconnect buffer overflowed.
    pub fn dropped_frames(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Successful re-dials after a mid-stream disconnect.
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Relaxed)
    }

    /// Messages currently buffered awaiting a flush or reconnect.
    pub fn buffered(&self) -> usize {
        self.shared.state.lock().batch.len()
    }

    /// Vectored stream writes issued so far (each carries one batch of
    /// one or more frames).
    pub fn wire_writes(&self) -> u64 {
        self.shared.wire_writes.load(Ordering::Relaxed)
    }

    /// Messages carried by those writes.
    pub fn wire_messages(&self) -> u64 {
        self.shared.wire_messages.load(Ordering::Relaxed)
    }

    /// Flushes any staged batch immediately (coalescing senders).
    ///
    /// # Errors
    ///
    /// Propagates encode and I/O errors, as [`MsgSender::send`] does.
    pub fn flush_now(&self) -> Result<(), NetError> {
        let mut state = self.shared.state.lock();
        self.shared.flush(&mut state)
    }

    /// Severs the current connection (chaos testing): the next send either
    /// reports [`NetError::Disconnected`] or, with a reconnect policy,
    /// buffers and re-dials. Returns whether a live connection was cut.
    pub fn inject_disconnect(&self) -> bool {
        let mut state = self.shared.state.lock();
        state.next_attempt = Instant::now();
        // Any partially-written front frame must replay whole on the next
        // connection.
        state.batch.reset_cursor();
        if let Some(policy) = &self.reconnect {
            state.backoff = policy.base_backoff;
        }
        match state.stream.take() {
            Some(stream) => {
                let _ = stream.shutdown(Shutdown::Both);
                true
            }
            None => false,
        }
    }

    /// Attempts to (re-)establish the connection if the backoff allows it.
    fn try_redial(&self, state: &mut SenderState, policy: &ReconnectPolicy) {
        let now = Instant::now();
        if state.stream.is_some() || now < state.next_attempt {
            return;
        }
        match TcpStream::connect(&self.peer) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                state.stream = Some(stream);
                state.backoff = policy.base_backoff;
                self.shared.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                state.next_attempt = now + state.backoff;
                state.backoff = (state.backoff * 2).min(policy.max_backoff);
            }
        }
    }
}

impl Drop for TcpSender {
    fn drop(&mut self) {
        self.stop_flusher.store(true, Ordering::SeqCst);
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
        // Best-effort: push any staged batch out before the socket closes.
        let mut state = self.shared.state.lock();
        let _ = self.shared.flush(&mut state);
    }
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("peer", &self.peer)
            .field("reconnect", &self.reconnect)
            .field("coalesce", &self.coalesce)
            .finish()
    }
}

impl MsgSender for TcpSender {
    fn send(&self, msg: WireMessage) -> Result<(), NetError> {
        let mut state = self.shared.state.lock();
        // Without a reconnect policy a dead connection fails fast with a
        // typed error so callers can react.
        if self.reconnect.is_none() && state.stream.is_none() {
            return Err(NetError::Disconnected);
        }
        if state.batch.is_empty() {
            state.batch_since = Some(Instant::now());
        }
        // Staging encodes the header now, so an unencodable message fails
        // here — at its own call site — and the batch is untouched.
        state.batch.stage(&msg)?;
        if let Some(policy) = &self.reconnect {
            if state.batch.len() > policy.buffer_limit && state.batch.drop_front().is_some() {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            }
            self.try_redial(&mut state, policy);
        }
        // Coalescing: hold the batch back while it is both small and
        // young; the background flusher honours the deadline.
        if let Some(policy) = &self.coalesce {
            if state.stream.is_some()
                && state.batch.pending_bytes() < policy.max_bytes
                && state
                    .batch_since
                    .is_some_and(|since| since.elapsed() < policy.max_delay)
            {
                return Ok(());
            }
        }
        let result = self.shared.flush(&mut state);
        if self.reconnect.is_none() && state.stream.is_none() {
            // The write died mid-stream: report it and do not replay the
            // backlog into a future connection nobody asked for.
            state.clear_backlog();
            return Err(NetError::Disconnected);
        }
        result
    }
}

/// A non-blocking poll-mode TCP ingress: the same wire format as
/// [`TcpListenerHandle`], but with *zero* background threads. One caller —
/// typically a reactor I/O thread multiplexing many endpoints — drives
/// [`PollEndpoint::poll`], which accepts pending peers, drains whatever
/// bytes the kernel has buffered, and emits every completed frame into the
/// provided sink. Each connection reads straight into a pooled
/// [`StreamDecoder`] chunk — decoded payloads are zero-copy slices of the
/// read buffer — and partial frames persist across calls, so frames may
/// arrive byte-by-byte without ever blocking the poller.
pub struct PollEndpoint {
    listener: TcpListener,
    local_port: u16,
    conns: Vec<PollConn>,
    accepted: u64,
    pool: Arc<BufferPool>,
}

struct PollConn {
    stream: TcpStream,
    decoder: StreamDecoder,
}

impl PollEndpoint {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) in non-blocking mode with a
    /// private buffer pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        Self::bind_with_pool(addr, Arc::new(BufferPool::default()))
    }

    /// Binds `addr` drawing read chunks from `pool` — endpoints multiplexed
    /// on one I/O thread share a pool so chunks recycle across connections.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_with_pool(addr: &str, pool: Arc<BufferPool>) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_port = listener.local_addr()?.port();
        Ok(PollEndpoint {
            listener,
            local_port,
            conns: Vec::new(),
            accepted: 0,
            pool,
        })
    }

    /// The port actually bound (useful with port 0).
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Currently open peer connections.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Peers accepted over the endpoint's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// One poll pass: accepts pending peers, reads every connection until
    /// the kernel has nothing more, and feeds each completed frame to
    /// `sink`. Dead or corrupt connections are dropped. Never blocks;
    /// returns the number of frames delivered (0 means "nothing ready —
    /// come back later").
    pub fn poll(&mut self, sink: &mut dyn FnMut(WireMessage)) -> usize {
        self.poll_budget(usize::MAX, sink)
    }

    /// Like [`PollEndpoint::poll`], but stops reading once `budget` frames
    /// have been delivered in this pass. A shared I/O thread multiplexing
    /// many endpoints uses this so one firehose peer cannot pin the poll
    /// loop while its siblings starve; undelivered bytes stay in the
    /// kernel socket buffer (and the reassembly buffer) for the next pass.
    pub fn poll_budget(&mut self, budget: usize, sink: &mut dyn FnMut(WireMessage)) -> usize {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        let _ = stream.set_nodelay(true);
                        self.accepted += 1;
                        self.conns.push(PollConn {
                            stream,
                            decoder: StreamDecoder::new(Arc::clone(&self.pool)),
                        });
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let mut delivered = 0usize;
        self.conns.retain_mut(|conn| {
            if delivered >= budget {
                return true;
            }
            // Frames decoded but undelivered by an earlier budget-capped
            // pass must drain even when the kernel has nothing new to read.
            while delivered < budget {
                match conn.decoder.next_frame() {
                    Some(msg) => {
                        sink(msg);
                        delivered += 1;
                    }
                    None => break,
                }
            }
            if conn.decoder.is_corrupt() {
                // Good frames decoded before the poison point deliver
                // first; once the queue is dry the connection goes.
                return conn.decoder.pending_frames() > 0;
            }
            loop {
                if delivered >= budget {
                    // Budget exhausted mid-pass: keep the connection and
                    // whatever the kernel still holds for the next pass.
                    return true;
                }
                // Read straight into the decoder's pooled chunk: no
                // intermediate stack buffer, no copy into a reassembly Vec.
                let space = conn.decoder.read_space();
                if space.is_empty() {
                    break;
                }
                match conn.stream.read(space) {
                    Ok(0) => {
                        // Clean EOF: flush complete frames already decoded
                        // (up to the budget), then drop the connection —
                        // unless the budget cut the flush short, in which
                        // case it stays for the next pass.
                        while delivered < budget {
                            match conn.decoder.next_frame() {
                                Some(msg) => {
                                    sink(msg);
                                    delivered += 1;
                                }
                                None => break,
                            }
                        }
                        return conn.decoder.pending_frames() > 0;
                    }
                    Ok(n) => {
                        conn.decoder.commit(n);
                        while delivered < budget {
                            match conn.decoder.next_frame() {
                                Some(msg) => {
                                    sink(msg);
                                    delivered += 1;
                                }
                                None => break,
                            }
                        }
                        if conn.decoder.is_corrupt() {
                            return conn.decoder.pending_frames() > 0;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
            true
        });
        delivered
    }
}

impl std::fmt::Debug for PollEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PollEndpoint")
            .field("local_port", &self.local_port)
            .field("connections", &self.conns.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{Bytes, BytesMut};
    use std::io::Write;

    #[test]
    fn end_to_end_over_loopback() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        for i in 0..10u64 {
            sender
                .send(WireMessage::data(
                    "mod_b",
                    i,
                    i * 10,
                    Bytes::from(vec![i as u8; 100]),
                ))
                .unwrap();
        }
        for i in 0..10u64 {
            let msg = listener.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg.seq, i);
            assert_eq!(msg.payload.len(), 100);
        }
    }

    #[test]
    fn multiple_senders_merge() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let s1 = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        let s2 = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        s1.send(WireMessage::signal("x", 1)).unwrap();
        s2.send(WireMessage::signal("x", 2)).unwrap();
        let mut seqs = vec![
            listener.recv_timeout(Duration::from_secs(2)).unwrap().seq,
            listener.recv_timeout(Duration::from_secs(2)).unwrap().seq,
        ];
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn connect_to_dead_port_fails() {
        // Bind then drop to find a (very likely) free port.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        assert!(TcpSender::connect(&format!("127.0.0.1:{port}")).is_err());
    }

    #[test]
    fn large_payload_roundtrip() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        let payload = Bytes::from(vec![7u8; 512 * 1024]);
        sender
            .send(WireMessage::data("m", 0, 0, payload.clone()))
            .unwrap();
        let msg = listener.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg.payload, payload);
    }

    #[test]
    fn try_recv_empty_then_message() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        assert!(matches!(listener.try_recv(), Err(NetError::WouldBlock)));
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        sender.send(WireMessage::signal("s", 9)).unwrap();
        // Poll until the reader thread delivers.
        let msg = listener.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.seq, 9);
    }

    #[test]
    fn shutdown_is_clean() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let port = listener.local_port();
        drop(listener); // must not hang
                        // Port becomes reusable shortly after.
        let _ = port;
    }

    #[test]
    fn mid_stream_listener_death_is_a_typed_error() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        sender.send(WireMessage::signal("x", 0)).unwrap();
        assert_eq!(
            listener.recv_timeout(Duration::from_secs(2)).unwrap().seq,
            0
        );
        // Kill the listener mid-stream: the reader thread exits and the
        // peer socket closes underneath the sender.
        drop(listener);
        // The kernel may accept a few writes into its buffer before the
        // reset surfaces; keep sending until the failure shows up.
        let deadline = Instant::now() + Duration::from_secs(5);
        let err = loop {
            match sender.send(WireMessage::signal("x", 1)) {
                Ok(()) => {
                    assert!(Instant::now() < deadline, "disconnect never surfaced");
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, NetError::Disconnected),
            "expected Disconnected, got {err:?}"
        );
        // Once detected, subsequent sends fail fast.
        assert!(matches!(
            sender.send(WireMessage::signal("x", 2)),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn reconnect_policy_survives_mid_stream_disconnect() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2))
            .unwrap()
            .with_reconnect(ReconnectPolicy {
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                buffer_limit: 64,
            });
        sender.send(WireMessage::signal("x", 0)).unwrap();
        assert_eq!(
            listener.recv_timeout(Duration::from_secs(2)).unwrap().seq,
            0
        );

        assert!(sender.inject_disconnect());
        // Sends during the outage buffer instead of erroring, and the
        // sender re-dials the (still listening) peer with backoff.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut seq = 1u64;
        let received = loop {
            sender.send(WireMessage::signal("x", seq)).unwrap();
            seq += 1;
            match listener.recv_timeout(Duration::from_millis(20)) {
                Ok(msg) => break msg,
                Err(_) => assert!(Instant::now() < deadline, "never reconnected"),
            }
        };
        // In-order delivery resumes from the buffered backlog.
        assert_eq!(received.seq, 1);
        assert!(sender.reconnects() >= 1);
        assert_eq!(sender.dropped_frames(), 0);
    }

    #[test]
    fn coalescing_batches_small_messages_into_fewer_writes() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2))
            .unwrap()
            .with_coalescing(CoalescePolicy {
                max_bytes: 4 * 1024,
                max_delay: Duration::from_millis(5),
                ..CoalescePolicy::default()
            });
        for i in 0..100u64 {
            sender.send(WireMessage::signal("x", i)).unwrap();
        }
        // Everything arrives, in order.
        for i in 0..100u64 {
            let msg = listener.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg.seq, i);
        }
        assert_eq!(sender.wire_messages(), 100);
        assert!(
            sender.wire_writes() < 100,
            "100 small messages took {} writes — nothing coalesced",
            sender.wire_writes()
        );
    }

    #[test]
    fn coalescing_deadline_flushes_a_lone_message() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2))
            .unwrap()
            .with_coalescing(CoalescePolicy {
                max_bytes: 1024 * 1024,
                max_delay: Duration::from_millis(2),
                ..CoalescePolicy::default()
            });
        // One message, far below max_bytes: only the deadline can flush it.
        sender.send(WireMessage::signal("x", 7)).unwrap();
        let msg = listener.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.seq, 7);
    }

    #[test]
    fn coalescing_oversized_batch_flushes_inline() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2))
            .unwrap()
            .with_coalescing(CoalescePolicy {
                max_bytes: 256,
                // A deadline long enough that only the size trigger can
                // explain a prompt flush.
                max_delay: Duration::from_secs(30),
                ..CoalescePolicy::default()
            });
        let payload = Bytes::from(vec![3u8; 512]);
        sender.send(WireMessage::data("m", 1, 0, payload)).unwrap();
        let msg = listener.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.seq, 1);
        assert_eq!(msg.payload.len(), 512);
    }

    #[test]
    fn coalescing_composes_with_reconnect() {
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2))
            .unwrap()
            .with_reconnect(ReconnectPolicy {
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                buffer_limit: 256,
            })
            .with_coalescing(CoalescePolicy {
                max_bytes: 4 * 1024,
                max_delay: Duration::from_millis(2),
                ..CoalescePolicy::default()
            });
        sender.send(WireMessage::signal("x", 0)).unwrap();
        assert_eq!(
            listener.recv_timeout(Duration::from_secs(2)).unwrap().seq,
            0
        );
        assert!(sender.inject_disconnect());
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut seq = 1u64;
        let received = loop {
            sender.send(WireMessage::signal("x", seq)).unwrap();
            seq += 1;
            match listener.recv_timeout(Duration::from_millis(20)) {
                Ok(msg) => break msg,
                Err(_) => assert!(Instant::now() < deadline, "never reconnected"),
            }
        };
        assert_eq!(received.seq, 1, "backlog must replay in order");
        assert!(sender.reconnects() >= 1);
        assert_eq!(sender.dropped_frames(), 0);
    }

    #[test]
    fn poll_endpoint_merges_peers_without_threads() {
        let mut ep = PollEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", ep.local_port());
        let s1 = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        let s2 = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        for i in 0..50u64 {
            s1.send(WireMessage::signal("a", i)).unwrap();
            s2.send(WireMessage::signal("b", i)).unwrap();
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 100 {
            assert!(Instant::now() < deadline, "only {} frames", got.len());
            let n = ep.poll(&mut |msg| got.push(msg));
            if n == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(ep.connections(), 2);
        assert_eq!(ep.accepted(), 2);
        // Per-peer ordering survives the merge.
        let a: Vec<u64> = got
            .iter()
            .filter(|m| m.channel == "a")
            .map(|m| m.seq)
            .collect();
        let b: Vec<u64> = got
            .iter()
            .filter(|m| m.channel == "b")
            .map(|m| m.seq)
            .collect();
        assert_eq!(a, (0..50).collect::<Vec<_>>());
        assert_eq!(b, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn poll_budget_caps_one_pass_without_losing_frames() {
        let mut ep = PollEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", ep.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        for i in 0..50u64 {
            sender.send(WireMessage::signal("x", i)).unwrap();
        }
        // Wait until a full budgeted pass actually hits the cap, proving
        // the kernel had more buffered than one pass was allowed to take.
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let n = ep.poll_budget(10, &mut |m| got.push(m));
            assert!(n <= 10, "budgeted pass delivered {n} frames");
            if n == 10 {
                break;
            }
            assert!(Instant::now() < deadline, "budget cap never reached");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ep.connections(), 1, "capped pass must keep the peer");
        // The remainder drains across later passes with nothing lost and
        // per-peer ordering intact.
        while got.len() < 50 {
            assert!(Instant::now() < deadline, "only {} frames", got.len());
            if ep.poll_budget(10, &mut |m| got.push(m)) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let seqs: Vec<u64> = got.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn poll_endpoint_reassembles_split_frames() {
        let mut ep = PollEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", ep.local_port());
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.set_nodelay(true).unwrap();
        let msg = WireMessage::data("chan", 42, 7, Bytes::from(vec![9u8; 300]));
        let mut framed = BytesMut::new();
        msg.encode_framed_into(&mut framed).unwrap();
        // Dribble the frame one byte at a time across many poll passes.
        let mut got = Vec::new();
        for byte in framed.iter() {
            raw.write_all(&[*byte]).unwrap();
            raw.flush().unwrap();
            ep.poll(&mut |m| got.push(m));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.is_empty() {
            assert!(Instant::now() < deadline, "frame never reassembled");
            ep.poll(&mut |m| got.push(m));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 42);
        assert_eq!(got[0].payload.len(), 300);
    }

    #[test]
    fn poll_endpoint_drops_corrupt_connection() {
        let mut ep = PollEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", ep.local_port());
        let mut raw = TcpStream::connect(&addr).unwrap();
        // An implausible length prefix (beyond MAX_FRAME_LEN).
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            ep.poll(&mut |_| panic!("no frame should decode"));
            if ep.accepted() == 1 && ep.connections() == 0 {
                break; // accepted, then dropped as corrupt
            }
            assert!(Instant::now() < deadline, "corrupt peer never dropped");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn poll_endpoint_handles_peer_disconnect() {
        let mut ep = PollEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", ep.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2)).unwrap();
        sender.send(WireMessage::signal("x", 1)).unwrap();
        drop(sender);
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.is_empty() || ep.connections() > 0 {
            assert!(Instant::now() < deadline, "disconnect never processed");
            ep.poll(&mut |m| got.push(m));
            std::thread::sleep(Duration::from_millis(1));
        }
        // The in-flight frame still arrived before the close was seen.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 1);
    }

    #[test]
    fn reconnect_buffer_is_bounded_and_counts_drops() {
        // Connect to a real listener, then kill it so re-dials fail and the
        // buffer can only grow.
        let listener = TcpListenerHandle::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_port());
        let sender = TcpSender::connect_retry(&addr, Duration::from_secs(2))
            .unwrap()
            .with_reconnect(ReconnectPolicy {
                base_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_millis(50),
                buffer_limit: 8,
            });
        drop(listener);
        sender.inject_disconnect();
        for i in 0..20u64 {
            sender.send(WireMessage::signal("x", i)).unwrap();
        }
        assert!(
            sender.buffered() <= 8,
            "buffer grew to {}",
            sender.buffered()
        );
        assert!(sender.dropped_frames() >= 12 - 8);
    }
}
