use crate::error::NetError;
use crate::wire::WireMessage;
use crate::{MsgReceiver, MsgSender};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A named-channel registry for all in-process messaging on one device.
///
/// Co-located modules and services communicate through the hub; the runtime
/// creates one hub per device. Channels are multiple-producer,
/// multiple-consumer: one [`bind`](InprocHub::bind) per name, any number of
/// [`connect`](InprocHub::connect)s, and the bound [`InprocReceiver`] can be
/// cloned into additional competing consumers (each message is delivered to
/// exactly one of them) — this is how service executor pools share one
/// request queue without a lock.
#[derive(Clone, Default)]
pub struct InprocHub {
    inner: Arc<Mutex<HubInner>>,
}

#[derive(Default)]
struct HubInner {
    /// Channel name → sender side (the receiver was handed out at bind).
    channels: HashMap<String, Sender<WireMessage>>,
    /// Topic → subscriber channel names.
    subscriptions: HashMap<String, Vec<String>>,
}

impl InprocHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name`, returning its receiving end.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AlreadyBound`] if the name is taken.
    pub fn bind(&self, name: &str) -> Result<InprocReceiver, NetError> {
        let mut inner = self.inner.lock();
        if inner.channels.contains_key(name) {
            return Err(NetError::AlreadyBound(name.to_string()));
        }
        let (tx, rx) = unbounded();
        inner.channels.insert(name.to_string(), tx);
        Ok(InprocReceiver {
            name: name.to_string(),
            rx,
        })
    }

    /// Connects to a bound `name`, returning a sending end.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotBound`] if nothing bound the name yet.
    pub fn connect(&self, name: &str) -> Result<InprocSender, NetError> {
        let inner = self.inner.lock();
        let tx = inner
            .channels
            .get(name)
            .ok_or_else(|| NetError::NotBound(name.to_string()))?
            .clone();
        Ok(InprocSender {
            name: name.to_string(),
            tx,
        })
    }

    /// Removes a binding (subsequent sends fail with disconnect).
    pub fn unbind(&self, name: &str) {
        let mut inner = self.inner.lock();
        inner.channels.remove(name);
        for subs in inner.subscriptions.values_mut() {
            subs.retain(|s| s != name);
        }
    }

    /// Whether `name` is currently bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.inner.lock().channels.contains_key(name)
    }

    /// Subscribes the bound channel `subscriber` to `topic` (PUB/SUB).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotBound`] if `subscriber` is not a bound
    /// channel.
    pub fn subscribe(&self, topic: &str, subscriber: &str) -> Result<(), NetError> {
        let mut inner = self.inner.lock();
        if !inner.channels.contains_key(subscriber) {
            return Err(NetError::NotBound(subscriber.to_string()));
        }
        let subs = inner.subscriptions.entry(topic.to_string()).or_default();
        if !subs.iter().any(|s| s == subscriber) {
            subs.push(subscriber.to_string());
        }
        Ok(())
    }

    /// Unsubscribes `subscriber` from `topic`.
    pub fn unsubscribe(&self, topic: &str, subscriber: &str) {
        if let Some(subs) = self.inner.lock().subscriptions.get_mut(topic) {
            subs.retain(|s| s != subscriber);
        }
    }

    /// Publishes `msg` to every subscriber of `msg.channel` (interpreted as
    /// the topic). Returns how many subscribers received it.
    pub fn publish(&self, msg: &WireMessage) -> usize {
        let inner = self.inner.lock();
        let Some(subs) = inner.subscriptions.get(&msg.channel) else {
            return 0;
        };
        let mut delivered = 0;
        for sub in subs {
            if let Some(tx) = inner.channels.get(sub) {
                if tx.send(msg.clone()).is_ok() {
                    delivered += 1;
                }
            }
        }
        delivered
    }

    /// Number of bound channels.
    pub fn len(&self) -> usize {
        self.inner.lock().channels.len()
    }

    /// Whether no channels are bound.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for InprocHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("InprocHub")
            .field("channels", &inner.channels.len())
            .field("topics", &inner.subscriptions.len())
            .finish()
    }
}

/// Sending end of an in-process channel.
#[derive(Clone)]
pub struct InprocSender {
    name: String,
    tx: Sender<WireMessage>,
}

impl InprocSender {
    /// The channel name this sender targets.
    pub fn channel(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for InprocSender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InprocSender")
            .field("channel", &self.name)
            .finish()
    }
}

impl MsgSender for InprocSender {
    fn send(&self, msg: WireMessage) -> Result<(), NetError> {
        self.tx.send(msg).map_err(|_| NetError::Disconnected)
    }
}

/// Receiving end of an in-process channel.
///
/// Cloning produces another *competing* consumer on the same queue: every
/// message goes to exactly one clone (MPMC work sharing), not to all of
/// them. Use [`InprocHub::subscribe`] for fan-out semantics instead.
#[derive(Clone)]
pub struct InprocReceiver {
    name: String,
    rx: Receiver<WireMessage>,
}

impl InprocReceiver {
    /// The bound channel name.
    pub fn channel(&self) -> &str {
        &self.name
    }

    /// Number of messages waiting.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl fmt::Debug for InprocReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InprocReceiver")
            .field("channel", &self.name)
            .field("pending", &self.rx.len())
            .finish()
    }
}

impl MsgReceiver for InprocReceiver {
    fn recv(&self) -> Result<WireMessage, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    fn try_recv(&self) -> Result<WireMessage, NetError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => NetError::WouldBlock,
            TryRecvError::Disconnected => NetError::Disconnected,
        })
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<WireMessage, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(channel: &str, seq: u64) -> WireMessage {
        WireMessage::data(channel, seq, 0, Bytes::new())
    }

    #[test]
    fn bind_connect_send_recv() {
        let hub = InprocHub::new();
        let rx = hub.bind("a").unwrap();
        let tx = hub.connect("a").unwrap();
        tx.send(msg("a", 1)).unwrap();
        assert_eq!(rx.recv().unwrap().seq, 1);
        assert_eq!(tx.channel(), "a");
        assert_eq!(rx.channel(), "a");
    }

    #[test]
    fn double_bind_fails() {
        let hub = InprocHub::new();
        let _rx = hub.bind("a").unwrap();
        assert!(matches!(hub.bind("a"), Err(NetError::AlreadyBound(_))));
    }

    #[test]
    fn connect_unbound_fails() {
        let hub = InprocHub::new();
        assert!(matches!(hub.connect("x"), Err(NetError::NotBound(_))));
    }

    #[test]
    fn try_recv_and_timeout() {
        let hub = InprocHub::new();
        let rx = hub.bind("a").unwrap();
        assert!(matches!(rx.try_recv(), Err(NetError::WouldBlock)));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(NetError::Timeout)
        ));
        let tx = hub.connect("a").unwrap();
        tx.send(msg("a", 2)).unwrap();
        assert_eq!(rx.try_recv().unwrap().seq, 2);
    }

    #[test]
    fn multiple_senders_one_receiver() {
        let hub = InprocHub::new();
        let rx = hub.bind("sink").unwrap();
        let t1 = hub.connect("sink").unwrap();
        let t2 = hub.connect("sink").unwrap();
        t1.send(msg("sink", 1)).unwrap();
        t2.send(msg("sink", 2)).unwrap();
        let mut seqs = vec![rx.recv().unwrap().seq, rx.recv().unwrap().seq];
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn unbind_disconnects_senders() {
        let hub = InprocHub::new();
        let rx = hub.bind("a").unwrap();
        let tx = hub.connect("a").unwrap();
        hub.unbind("a");
        assert!(!hub.is_bound("a"));
        drop(rx);
        assert!(matches!(tx.send(msg("a", 1)), Err(NetError::Disconnected)));
    }

    #[test]
    fn pubsub_delivers_to_all_subscribers() {
        let hub = InprocHub::new();
        let rx1 = hub.bind("sub1").unwrap();
        let rx2 = hub.bind("sub2").unwrap();
        hub.subscribe("frames", "sub1").unwrap();
        hub.subscribe("frames", "sub2").unwrap();
        let delivered = hub.publish(&msg("frames", 9));
        assert_eq!(delivered, 2);
        assert_eq!(rx1.recv().unwrap().seq, 9);
        assert_eq!(rx2.recv().unwrap().seq, 9);
    }

    #[test]
    fn pubsub_topic_isolation_and_unsubscribe() {
        let hub = InprocHub::new();
        let rx = hub.bind("sub").unwrap();
        hub.subscribe("topic_a", "sub").unwrap();
        assert_eq!(hub.publish(&msg("topic_b", 1)), 0);
        hub.unsubscribe("topic_a", "sub");
        assert_eq!(hub.publish(&msg("topic_a", 2)), 0);
        assert!(matches!(rx.try_recv(), Err(NetError::WouldBlock)));
    }

    #[test]
    fn subscribe_requires_bound_channel() {
        let hub = InprocHub::new();
        assert!(matches!(
            hub.subscribe("t", "ghost"),
            Err(NetError::NotBound(_))
        ));
    }

    #[test]
    fn duplicate_subscribe_is_idempotent() {
        let hub = InprocHub::new();
        let rx = hub.bind("s").unwrap();
        hub.subscribe("t", "s").unwrap();
        hub.subscribe("t", "s").unwrap();
        assert_eq!(hub.publish(&msg("t", 1)), 1);
        assert_eq!(rx.pending(), 1);
    }

    #[test]
    fn hub_is_cloneable_and_shared() {
        let hub = InprocHub::new();
        let hub2 = hub.clone();
        let _rx = hub.bind("a").unwrap();
        assert!(hub2.is_bound("a"));
        assert_eq!(hub2.len(), 1);
    }

    #[test]
    fn cloned_receivers_compete_without_duplication() {
        // The executor-pool contract: N cloned receivers drain one queue,
        // every message is consumed exactly once.
        let hub = InprocHub::new();
        let rx = hub.bind("pool").unwrap();
        let tx = hub.connect("pool").unwrap();
        const MSGS: u64 = 1000;
        const WORKERS: usize = 4;
        let mut handles = Vec::new();
        for _ in 0..WORKERS {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut seqs = Vec::new();
                while let Ok(m) = rx.recv_timeout(Duration::from_millis(200)) {
                    seqs.push(m.seq);
                }
                seqs
            }));
        }
        for i in 0..MSGS {
            tx.send(msg("pool", i)).unwrap();
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..MSGS).collect();
        assert_eq!(all, expected, "lost or duplicated messages");
    }

    #[test]
    fn cross_thread_delivery() {
        let hub = InprocHub::new();
        let rx = hub.bind("worker").unwrap();
        let tx = hub.connect("worker").unwrap();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(msg("worker", i)).unwrap();
            }
        });
        let mut got = 0;
        while got < 100 {
            rx.recv().unwrap();
            got += 1;
        }
        handle.join().unwrap();
    }
}
