//! Property tests for the core: spec validation, config robustness, flow
//! control, the deployment planner, and degradation × batching semantics
//! through the full runtime.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use videopipe_core::config;
use videopipe_core::deploy::{plan, DeviceSpec, Placement};
use videopipe_core::message::Payload;
use videopipe_core::module::{Event, Module, ModuleCtx, ModuleRegistry};
use videopipe_core::resilience::{DegradationPolicy, ResilienceConfig};
use videopipe_core::runtime::{BatchConfig, LocalRuntime, RunReport, RuntimeConfig};
use videopipe_core::service::{
    Service, ServiceCost, ServiceRegistry, ServiceRequest, ServiceResponse,
};
use videopipe_core::spec::{ModuleSpec, PipelineSpec};
use videopipe_core::PipelineError;
use videopipe_media::FrameStore;

/// A random DAG built by only allowing edges from lower to higher indices
/// (guaranteed acyclic).
fn arb_dag() -> impl Strategy<Value = PipelineSpec> {
    (2usize..8).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n).prop_filter("forward edges only", |(a, b)| a < b),
            0..12,
        );
        edges.prop_map(move |edges| {
            let mut spec = PipelineSpec::new("dag");
            for i in 0..n {
                let mut m = ModuleSpec::new(format!("m{i}"), "Impl");
                for (a, b) in &edges {
                    if *a == i && !m.next_modules.contains(&format!("m{b}")) {
                        m = m.with_next(format!("m{b}"));
                    }
                }
                spec = spec.with_module(m);
            }
            spec
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Forward-edge DAGs always validate, and the topological order
    /// respects every edge.
    #[test]
    fn forward_dags_validate_with_consistent_topo_order(spec in arb_dag()) {
        spec.validate().unwrap();
        let order = spec.topo_order().unwrap();
        prop_assert_eq!(order.len(), spec.modules.len());
        let position = |name: &str| order.iter().position(|n| n == name).unwrap();
        for edge in spec.edges() {
            prop_assert!(position(&edge.from) < position(&edge.to),
                "edge {}->{} violates topo order", edge.from, edge.to);
        }
        // Depth is bounded by module count and at least 1.
        let depth = spec.depth();
        prop_assert!(depth >= 1 && depth <= spec.modules.len());
    }

    /// The config lexer/parser never panics on arbitrary input.
    #[test]
    fn config_parse_never_panics(input in "\\PC{0,256}") {
        let _ = config::parse(&input);
    }

    /// Nor on inputs assembled from config-ish tokens.
    #[test]
    fn config_parse_never_panics_on_tokens(parts in proptest::collection::vec(
        proptest::sample::select(vec![
            "modules:", "[", "]", "{", "}", "name:", "a", "include", "(", ")",
            "\"A.js\"", "next_module:", "service:", "'svc'", ",", "//x\n", "endpoint:",
        ]),
        0..40,
    )) {
        let input = parts.join(" ");
        let _ = config::parse(&input);
    }

    /// Any module→device assignment over devices with full service coverage
    /// produces a valid plan whose edges/bindings cover the whole spec.
    #[test]
    fn full_coverage_placements_always_plan(spec in arb_dag(), assignment in proptest::collection::vec(0usize..3, 8)) {
        let devices = vec![
            DeviceSpec::new("d0", 1.0).with_containers(1),
            DeviceSpec::new("d1", 2.0).with_containers(2),
            DeviceSpec::new("d2", 0.5).with_containers(1),
        ];
        let mut placement = Placement::new();
        for (i, m) in spec.modules.iter().enumerate() {
            placement = placement.assign(m.name.clone(), format!("d{}", assignment[i % assignment.len()] % 3));
        }
        let deployment = plan(&spec, &devices, &placement).unwrap();
        prop_assert_eq!(deployment.edges.len(), spec.edges().len());
        // Every module is on exactly one device and edge cross flags agree
        // with the placement.
        for e in &deployment.edges {
            let from_dev = placement.device_for(&e.from).unwrap();
            let to_dev = placement.device_for(&e.to).unwrap();
            prop_assert_eq!(e.cross_device, from_dev != to_dev);
        }
    }
}

/// A deterministic service with data-dependent success: even counts double,
/// odd counts fail, everything else is a payload error.
struct ParityDoubler;
impl Service for ParityDoubler {
    fn name(&self) -> &str {
        "parity"
    }
    fn handle(
        &self,
        request: &ServiceRequest,
        _store: &FrameStore,
    ) -> Result<ServiceResponse, PipelineError> {
        match request.payload {
            Payload::Count(n) if n % 2 == 0 => Ok(ServiceResponse::new(Payload::Count(n * 2))),
            Payload::Count(n) => Err(PipelineError::Service {
                service: "parity".into(),
                reason: format!("odd {n}"),
            }),
            ref other => Err(videopipe_core::service::wrong_payload(
                "parity", "count", other,
            )),
        }
    }
}

fn arb_request() -> impl Strategy<Value = ServiceRequest> {
    prop_oneof![
        (0u64..1000).prop_map(|n| ServiceRequest::new("op", Payload::Count(n))),
        Just(ServiceRequest::new("op", Payload::Empty)),
        ".{0,12}".prop_map(|s| ServiceRequest::new("op", Payload::Text(s))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The default `handle_batch` is observably identical to calling
    /// `handle` sequentially — same successes, same failures, same order —
    /// for any mix of passing and failing requests.
    #[test]
    fn default_handle_batch_equals_sequential_handle(
        requests in proptest::collection::vec(arb_request(), 0..24),
    ) {
        let svc = ParityDoubler;
        let store = FrameStore::new();
        let batched = svc.handle_batch(&requests, &store);
        prop_assert_eq!(batched.len(), requests.len());
        for (request, batched) in requests.iter().zip(batched) {
            match (svc.handle(request, &store), batched) {
                (Ok(single), Ok(batched)) => prop_assert_eq!(single.payload, batched.payload),
                (Err(single), Err(batched)) => {
                    prop_assert_eq!(single.to_string(), batched.to_string())
                }
                (single, batched) => {
                    return Err(TestCaseError::fail(format!(
                        "batch/sequential disagree: {single:?} vs {batched:?}"
                    )))
                }
            }
        }
    }
}

// ---- DegradationPolicy × batching through the full runtime ----
//
// Several caller modules share one batched service executor; the drain
// policy packs their concurrent requests into `handle_batch` calls whose
// slots fail independently. Two invariants ride on the slot → correlation
// routing: a LastKnownGood degraded response served to a caller must come
// from *that caller's* cache (never another slot's frame), and the caller
// side records one circuit-breaker event per request, never one per batch.

/// Slot tag stride: request `n` encodes `(tick, slot)` as `tick * 16 + slot`.
const SLOT_STRIDE: u64 = 16;

/// Fans one slot-tagged message per tick to every worker.
struct FanSource {
    workers: usize,
    seq: u64,
}
impl Module for FanSource {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::FrameTick { .. } = event {
            for w in 0..self.workers {
                ctx.call_module(
                    &format!("w{w}"),
                    Payload::Count(self.seq * SLOT_STRIDE + w as u64),
                )?;
            }
            self.seq += 1;
        }
        Ok(())
    }
}

/// Worker `slot`: calls the shared batched service and cross-checks that
/// every response it gets back — fresh or degraded — carries its own slot
/// tag. A stale (last-known-good) response is recognised by its payload
/// differing from the request's doubling.
struct SlotWorker {
    slot: u64,
    violations: Arc<Mutex<Vec<String>>>,
    stale_served: Arc<AtomicU64>,
}
impl Module for SlotWorker {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::Message(msg) = event {
            let sent = match msg.payload {
                Payload::Count(n) => n,
                _ => return Err(PipelineError::BadPayload("expected a count")),
            };
            match ctx.call_service("parity", ServiceRequest::new("op", msg.payload)) {
                Ok(resp) => {
                    let v = match resp.payload {
                        Payload::Count(v) => v,
                        ref other => {
                            self.violations
                                .lock()
                                .unwrap()
                                .push(format!("slot {} got non-count {other:?}", self.slot));
                            0
                        }
                    };
                    if v != 0 {
                        if v != sent * 2 {
                            self.stale_served.fetch_add(1, Ordering::SeqCst);
                        }
                        if (v / 2) % SLOT_STRIDE != self.slot {
                            self.violations.lock().unwrap().push(format!(
                                "slot {} served frame of slot {} (sent {sent}, got {v})",
                                self.slot,
                                (v / 2) % SLOT_STRIDE
                            ));
                        }
                    }
                }
                // Cold last-known-good cache: the frame drops, it is
                // never substituted with someone else's.
                Err(_) => {}
            }
            ctx.call_module("sink", Payload::Count(1))?;
        }
        Ok(())
    }
}

/// Returns the flow-control credit once every worker's response arrived.
struct CreditSink {
    workers: usize,
    seen: usize,
}
impl Module for CreditSink {
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        if let Event::Message(_) = event {
            self.seen += 1;
            if self.seen % self.workers.max(1) == 0 {
                ctx.signal_source()?;
            }
        }
        Ok(())
    }
}

/// Batched service with per-slot data-dependent failures: request `n`
/// fails iff `(tick + slot) % modulus == 0` (`modulus` 1 ⇒ everything
/// fails), so most batches mix successes and errors across slots. The
/// explicit `handle_batch` mirrors a real batched kernel returning
/// per-slot results. Costs are modeled (2 ms base, 250 µs batched
/// follower) so the executor saturates and the drain policy actually
/// forms batches.
struct PerSlotParity {
    modulus: u64,
    handled: Arc<AtomicU64>,
}
impl PerSlotParity {
    fn slot_result(&self, request: &ServiceRequest) -> Result<ServiceResponse, PipelineError> {
        match request.payload {
            Payload::Count(n) => {
                self.handled.fetch_add(1, Ordering::SeqCst);
                let tick = n / SLOT_STRIDE;
                let slot = n % SLOT_STRIDE;
                if (tick + slot) % self.modulus == 0 {
                    Err(PipelineError::Service {
                        service: "parity".into(),
                        reason: format!("injected failure for {n}"),
                    })
                } else {
                    Ok(ServiceResponse::new(Payload::Count(n * 2)))
                }
            }
            ref other => Err(videopipe_core::service::wrong_payload(
                "parity", "count", other,
            )),
        }
    }
}
impl Service for PerSlotParity {
    fn name(&self) -> &str {
        "parity"
    }
    fn handle(
        &self,
        request: &ServiceRequest,
        _store: &FrameStore,
    ) -> Result<ServiceResponse, PipelineError> {
        self.slot_result(request)
    }
    fn handle_batch(
        &self,
        requests: &[ServiceRequest],
        _store: &FrameStore,
    ) -> Vec<Result<ServiceResponse, PipelineError>> {
        requests.iter().map(|r| self.slot_result(r)).collect()
    }
    fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
        ServiceCost::flat(Duration::from_millis(2)).with_batched_base(Duration::from_micros(250))
    }
}

struct DegradedRun {
    report: RunReport,
    violations: Arc<Mutex<Vec<String>>>,
    stale_served: Arc<AtomicU64>,
    handled: Arc<AtomicU64>,
}

/// Drives `workers` callers against the shared batched service under
/// `DegradationPolicy::LastKnownGood` for a short real-time burst.
fn run_degraded(workers: usize, max_batch: usize, modulus: u64, threshold: u32) -> DegradedRun {
    let mut spec_src = ModuleSpec::new("src", "FanSource");
    for w in 0..workers {
        spec_src = spec_src.with_next(format!("w{w}"));
    }
    let mut spec = PipelineSpec::new("degraded").with_module(spec_src);
    for w in 0..workers {
        spec = spec.with_module(
            ModuleSpec::new(format!("w{w}"), "SlotWorker")
                .with_service("parity")
                .with_next("sink"),
        );
    }
    spec = spec.with_module(ModuleSpec::new("sink", "CreditSink"));
    let devices = vec![DeviceSpec::new("dev", 1.0)
        .with_containers(1)
        .with_service("parity")];
    let mut placement = Placement::new().assign("src", "dev").assign("sink", "dev");
    for w in 0..workers {
        placement = placement.assign(format!("w{w}"), "dev");
    }
    let deployed = plan(&spec, &devices, &placement).expect("degraded plan");

    let violations = Arc::new(Mutex::new(Vec::new()));
    let stale_served = Arc::new(AtomicU64::new(0));
    let handled = Arc::new(AtomicU64::new(0));
    let mut modules = ModuleRegistry::new();
    let src_workers = workers;
    modules.register("FanSource", move || {
        Box::new(FanSource {
            workers: src_workers,
            seq: 0,
        })
    });
    // Worker instances are created in module-name order (w0, w1, ...), so
    // a shared counter hands each its slot tag.
    let next_slot = Arc::new(AtomicU64::new(0));
    let worker_violations = Arc::clone(&violations);
    let worker_stale = Arc::clone(&stale_served);
    modules.register("SlotWorker", move || {
        Box::new(SlotWorker {
            slot: next_slot.fetch_add(1, Ordering::SeqCst) % SLOT_STRIDE,
            violations: Arc::clone(&worker_violations),
            stale_served: Arc::clone(&worker_stale),
        })
    });
    let sink_workers = workers;
    modules.register("CreditSink", move || {
        Box::new(CreditSink {
            workers: sink_workers,
            seen: 0,
        })
    });
    let mut services = ServiceRegistry::new();
    services.install(Arc::new(PerSlotParity {
        modulus,
        handled: Arc::clone(&handled),
    }));

    let config = RuntimeConfig {
        fps: 200.0,
        credits: 8,
        batch: BatchConfig::up_to(max_batch),
        resilience: ResilienceConfig {
            breaker_failure_threshold: threshold,
            degradation: DegradationPolicy::LastKnownGood,
            ..ResilienceConfig::default()
        },
        ..RuntimeConfig::default()
    };
    let runtime = LocalRuntime::deploy(&deployed, &modules, &services, config).expect("deploy");
    let report = runtime.run_for(Duration::from_millis(300));
    DegradedRun {
        report,
        violations,
        stale_served,
        handled,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under LastKnownGood with per-slot `handle_batch` failures, every
    /// response a caller observes carries that caller's own slot tag —
    /// degraded responses are always the caller's own last good frame —
    /// and the degraded path actually engages (some stale frames served).
    #[test]
    fn lkg_batched_responses_never_cross_slots(
        workers in 2usize..5,
        max_batch in 1usize..9,
        modulus in 2u64..5,
    ) {
        let run = run_degraded(workers, max_batch, modulus, 1_000_000);
        prop_assert!(run.report.errors.is_empty(), "{:?}", run.report.errors);
        let violations = run.violations.lock().unwrap();
        prop_assert!(violations.is_empty(), "cross-slot serving: {violations:?}");
        // With (tick + slot) % modulus failures every worker alternates
        // between success and failure, so the LKG cache must have served.
        prop_assert!(
            run.stale_served.load(Ordering::SeqCst) > 0,
            "degraded path never engaged (handled {})",
            run.handled.load(Ordering::SeqCst)
        );
    }
}

#[test]
fn breaker_records_one_event_per_request_not_per_batch() {
    // Every slot fails (modulus 1) and the threshold is unreachable, so
    // the breaker never opens and its consecutive-failure counter is an
    // exact count of recorded events. Per-request recording means it must
    // match the number of requests the service actually handled — a
    // per-batch recording would undercount by the mean batch size, a
    // per-slot-per-batch duplication would overcount.
    let run = run_degraded(4, 8, 1, u32::MAX);
    assert!(run.report.errors.is_empty(), "{:?}", run.report.errors);
    let snap = run.report.breakers.get("parity").expect("breaker snapshot");
    assert_eq!(snap.opened, 0, "threshold must be unreachable: {snap:?}");
    let dispatch = run
        .report
        .metrics
        .dispatch
        .get("dev/parity")
        .copied()
        .unwrap_or_default();
    assert!(
        dispatch.mean_batch() > 1.0,
        "batches never formed (mean {}), the property is vacuous",
        dispatch.mean_batch()
    );
    let handled = run.handled.load(Ordering::SeqCst);
    let recorded = u64::from(snap.consecutive_failures);
    assert!(handled > 0, "service never ran");
    // Callers record after the response arrives, so at shutdown at most
    // one in-flight request per worker can be handled but unrecorded.
    assert!(recorded <= handled, "overcounted: {recorded} > {handled}");
    assert!(
        handled - recorded <= 4,
        "undercounted: {recorded} of {handled} handled requests recorded \
         (per-batch recording?)"
    );
}

#[test]
fn self_loops_and_cycles_always_rejected() {
    // Deterministic companion to the DAG property: reversed edges cycle.
    let spec = PipelineSpec::new("cycle")
        .with_module(ModuleSpec::new("a", "I").with_next("b"))
        .with_module(ModuleSpec::new("b", "I").with_next("c"))
        .with_module(ModuleSpec::new("c", "I").with_next("a"));
    assert!(spec.validate().is_err());
    assert!(spec.topo_order().is_err());
}
