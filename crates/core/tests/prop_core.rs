//! Property tests for the core: spec validation, config robustness, flow
//! control and the deployment planner.

use proptest::prelude::*;
use videopipe_core::config;
use videopipe_core::deploy::{plan, DeviceSpec, Placement};
use videopipe_core::message::Payload;
use videopipe_core::service::{Service, ServiceRequest, ServiceResponse};
use videopipe_core::spec::{ModuleSpec, PipelineSpec};
use videopipe_core::PipelineError;
use videopipe_media::FrameStore;

/// A random DAG built by only allowing edges from lower to higher indices
/// (guaranteed acyclic).
fn arb_dag() -> impl Strategy<Value = PipelineSpec> {
    (2usize..8).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n).prop_filter("forward edges only", |(a, b)| a < b),
            0..12,
        );
        edges.prop_map(move |edges| {
            let mut spec = PipelineSpec::new("dag");
            for i in 0..n {
                let mut m = ModuleSpec::new(format!("m{i}"), "Impl");
                for (a, b) in &edges {
                    if *a == i && !m.next_modules.contains(&format!("m{b}")) {
                        m = m.with_next(format!("m{b}"));
                    }
                }
                spec = spec.with_module(m);
            }
            spec
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Forward-edge DAGs always validate, and the topological order
    /// respects every edge.
    #[test]
    fn forward_dags_validate_with_consistent_topo_order(spec in arb_dag()) {
        spec.validate().unwrap();
        let order = spec.topo_order().unwrap();
        prop_assert_eq!(order.len(), spec.modules.len());
        let position = |name: &str| order.iter().position(|n| n == name).unwrap();
        for edge in spec.edges() {
            prop_assert!(position(&edge.from) < position(&edge.to),
                "edge {}->{} violates topo order", edge.from, edge.to);
        }
        // Depth is bounded by module count and at least 1.
        let depth = spec.depth();
        prop_assert!(depth >= 1 && depth <= spec.modules.len());
    }

    /// The config lexer/parser never panics on arbitrary input.
    #[test]
    fn config_parse_never_panics(input in "\\PC{0,256}") {
        let _ = config::parse(&input);
    }

    /// Nor on inputs assembled from config-ish tokens.
    #[test]
    fn config_parse_never_panics_on_tokens(parts in proptest::collection::vec(
        proptest::sample::select(vec![
            "modules:", "[", "]", "{", "}", "name:", "a", "include", "(", ")",
            "\"A.js\"", "next_module:", "service:", "'svc'", ",", "//x\n", "endpoint:",
        ]),
        0..40,
    )) {
        let input = parts.join(" ");
        let _ = config::parse(&input);
    }

    /// Any module→device assignment over devices with full service coverage
    /// produces a valid plan whose edges/bindings cover the whole spec.
    #[test]
    fn full_coverage_placements_always_plan(spec in arb_dag(), assignment in proptest::collection::vec(0usize..3, 8)) {
        let devices = vec![
            DeviceSpec::new("d0", 1.0).with_containers(1),
            DeviceSpec::new("d1", 2.0).with_containers(2),
            DeviceSpec::new("d2", 0.5).with_containers(1),
        ];
        let mut placement = Placement::new();
        for (i, m) in spec.modules.iter().enumerate() {
            placement = placement.assign(m.name.clone(), format!("d{}", assignment[i % assignment.len()] % 3));
        }
        let deployment = plan(&spec, &devices, &placement).unwrap();
        prop_assert_eq!(deployment.edges.len(), spec.edges().len());
        // Every module is on exactly one device and edge cross flags agree
        // with the placement.
        for e in &deployment.edges {
            let from_dev = placement.device_for(&e.from).unwrap();
            let to_dev = placement.device_for(&e.to).unwrap();
            prop_assert_eq!(e.cross_device, from_dev != to_dev);
        }
    }
}

/// A deterministic service with data-dependent success: even counts double,
/// odd counts fail, everything else is a payload error.
struct ParityDoubler;
impl Service for ParityDoubler {
    fn name(&self) -> &str {
        "parity"
    }
    fn handle(
        &self,
        request: &ServiceRequest,
        _store: &FrameStore,
    ) -> Result<ServiceResponse, PipelineError> {
        match request.payload {
            Payload::Count(n) if n % 2 == 0 => Ok(ServiceResponse::new(Payload::Count(n * 2))),
            Payload::Count(n) => Err(PipelineError::Service {
                service: "parity".into(),
                reason: format!("odd {n}"),
            }),
            ref other => Err(videopipe_core::service::wrong_payload(
                "parity", "count", other,
            )),
        }
    }
}

fn arb_request() -> impl Strategy<Value = ServiceRequest> {
    prop_oneof![
        (0u64..1000).prop_map(|n| ServiceRequest::new("op", Payload::Count(n))),
        Just(ServiceRequest::new("op", Payload::Empty)),
        ".{0,12}".prop_map(|s| ServiceRequest::new("op", Payload::Text(s))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The default `handle_batch` is observably identical to calling
    /// `handle` sequentially — same successes, same failures, same order —
    /// for any mix of passing and failing requests.
    #[test]
    fn default_handle_batch_equals_sequential_handle(
        requests in proptest::collection::vec(arb_request(), 0..24),
    ) {
        let svc = ParityDoubler;
        let store = FrameStore::new();
        let batched = svc.handle_batch(&requests, &store);
        prop_assert_eq!(batched.len(), requests.len());
        for (request, batched) in requests.iter().zip(batched) {
            match (svc.handle(request, &store), batched) {
                (Ok(single), Ok(batched)) => prop_assert_eq!(single.payload, batched.payload),
                (Err(single), Err(batched)) => {
                    prop_assert_eq!(single.to_string(), batched.to_string())
                }
                (single, batched) => {
                    return Err(TestCaseError::fail(format!(
                        "batch/sequential disagree: {single:?} vs {batched:?}"
                    )))
                }
            }
        }
    }
}

#[test]
fn self_loops_and_cycles_always_rejected() {
    // Deterministic companion to the DAG property: reversed edges cycle.
    let spec = PipelineSpec::new("cycle")
        .with_module(ModuleSpec::new("a", "I").with_next("b"))
        .with_module(ModuleSpec::new("b", "I").with_next("c"))
        .with_module(ModuleSpec::new("c", "I").with_next("a"));
    assert!(spec.validate().is_err());
    assert!(spec.topo_order().is_err());
}
