//! SLO-driven adaptive degradation and load shedding.
//!
//! PRs 1–5 built the lossy *mechanisms* — codec [`Quality`], micro-batch
//! [`BatchConfig`](crate::runtime::BatchConfig), credit leases, degradation
//! policies — but every knob was static, so an overloaded pipeline just
//! blew its queue until the breaker tripped. This module closes the loop
//! (the Mez design, see PAPERS.md): a per-pipeline feedback controller
//! observes *windowed* tail latency from the low-cardinality
//! [`LatencyHistogram`] already collected on the delivery path, compares it
//! against a declared [`Slo`], and walks an ordered [`Knob`] lattice —
//! quality down first, batch up, source sampling down, shed last — with
//! hysteresis and a minimum dwell time so knobs never flap.
//!
//! The controller itself is pure and clock-agnostic: it consumes
//! `(now_ns, cumulative histogram, queue signal)` and emits [`SloAction`]s,
//! which makes it drivable from the real-time runtime thread and from the
//! virtual-time simulator with identical semantics — and keeps all policy
//! out of the per-frame path (the NNStreamer lesson).

use crate::metrics::LatencyHistogram;
use std::time::Duration;
use videopipe_media::codec::Quality;

/// A latency service-level objective for one pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// Median end-to-end latency bound. Optional — most deployments only
    /// bound the tail. When set, it must not exceed [`Slo::p99`]
    /// (validated at deploy time).
    pub p50: Option<Duration>,
    /// End-to-end p99 latency target the controller defends.
    pub p99: Duration,
}

impl Slo {
    /// An SLO bounding only the p99 tail.
    pub const fn p99(target: Duration) -> Self {
        Slo {
            p50: None,
            p99: target,
        }
    }
}

/// One rung of the degradation lattice. Applying a knob *degrades* the
/// pipeline along one axis; the ordering in [`SloConfig::lattice`] encodes
/// which axes to sacrifice first (cheapest fidelity loss first, shedding
/// work last).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Drop cross-device codec quality to this shift (higher = lossier,
    /// smaller frames on the wire). Must be `< 8`.
    CodecQuality {
        /// Quantisation shift (see [`Quality::new`]).
        shift: u8,
    },
    /// Raise the service micro-batch ceiling to this size (more
    /// amortisation, more throughput, slightly more per-request latency at
    /// low load — which is why it comes after quality).
    Batch {
        /// New `max_batch` floor applied on top of the configured policy.
        max_batch: usize,
    },
    /// Sample the source down: admit only every `divisor`-th camera tick.
    SampleRate {
        /// Keep one frame in `divisor` (≥ 1; 1 = no-op).
        divisor: u32,
    },
    /// Shed work at admission: of the frames surviving sampling, keep only
    /// one in `keep_one_in`. The last resort — work is dropped outright.
    Shed {
        /// Keep one frame in this many (≥ 1; 1 = no-op).
        keep_one_in: u32,
    },
}

/// Configuration of the per-pipeline SLO feedback controller.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// The latency objective to defend.
    pub slo: Slo,
    /// Control-loop tick period. Each tick observes the latency window
    /// since the previous tick.
    pub interval: Duration,
    /// Minimum time between knob moves (in either direction). Bounds the
    /// flap rate: the controller can change the configuration at most once
    /// per dwell.
    pub dwell: Duration,
    /// Step *down* (degrade) when windowed p99 exceeds `trip_ratio` ×
    /// target. 1.0 trips exactly at the SLO.
    pub trip_ratio: f64,
    /// Step *up* (recover) only when windowed p99 has fallen below
    /// `relax_headroom` × target. Must be `< trip_ratio` — the gap between
    /// the two thresholds is the hysteresis band that prevents flapping
    /// around the SLO boundary.
    pub relax_headroom: f64,
    /// Minimum delivered frames in a window before the controller acts on
    /// its quantiles; thinner windows carry over to the next tick (the
    /// snapshot is not advanced), so slow pipelines accumulate a judgeable
    /// window instead of never being judged.
    pub min_window: u64,
    /// Optional queue-depth trip wire: a windowed queue high-water mark at
    /// or above this steps down even if delivered-frame latency still looks
    /// healthy (queues grow before deliveries slow).
    pub queue_trip: Option<u64>,
    /// The ordered degradation lattice; level `n` means the first `n` knobs
    /// are applied.
    pub lattice: Vec<Knob>,
}

impl SloConfig {
    /// A controller defending `p99` with the default lattice: quality down
    /// (shift 4, then 6), batch up to 4, sample down (÷2, ÷4), shed 3-in-4.
    pub fn p99(target: Duration) -> Self {
        SloConfig {
            slo: Slo::p99(target),
            interval: Duration::from_millis(100),
            dwell: Duration::from_millis(400),
            trip_ratio: 1.0,
            relax_headroom: 0.7,
            min_window: 4,
            queue_trip: None,
            lattice: vec![
                Knob::CodecQuality { shift: 4 },
                Knob::CodecQuality { shift: 6 },
                Knob::Batch { max_batch: 4 },
                Knob::SampleRate { divisor: 2 },
                Knob::SampleRate { divisor: 4 },
                Knob::Shed { keep_one_in: 4 },
            ],
        }
    }

    /// Builder-style replacement of the knob lattice (per-app priorities).
    pub fn with_lattice(mut self, lattice: Vec<Knob>) -> Self {
        self.lattice = lattice;
        self
    }

    /// Builder-style control-tick interval.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Builder-style minimum dwell between knob moves.
    pub fn with_dwell(mut self, dwell: Duration) -> Self {
        self.dwell = dwell;
        self
    }

    /// Builder-style queue-depth trip wire.
    pub fn with_queue_trip(mut self, depth: u64) -> Self {
        self.queue_trip = Some(depth);
        self
    }

    /// Deploy-time validation (called from `RuntimeConfig::validate`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the SLO bounds are inverted
    /// (`p50 > p99`, or `relax_headroom ≥ trip_ratio`), a threshold is
    /// non-positive, or a lattice knob is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.slo.p99.is_zero() {
            return Err("slo.p99 must be > 0".into());
        }
        if let Some(p50) = self.slo.p50 {
            if p50 > self.slo.p99 {
                return Err(format!(
                    "inverted SLO bounds: p50 {p50:?} > p99 {:?}",
                    self.slo.p99
                ));
            }
        }
        if !(self.trip_ratio.is_finite() && self.trip_ratio > 0.0) {
            return Err("slo.trip_ratio must be finite and > 0".into());
        }
        if !(self.relax_headroom.is_finite() && self.relax_headroom > 0.0) {
            return Err("slo.relax_headroom must be finite and > 0".into());
        }
        if self.relax_headroom >= self.trip_ratio {
            return Err(format!(
                "inverted hysteresis band: relax_headroom {} must be < trip_ratio {}",
                self.relax_headroom, self.trip_ratio
            ));
        }
        if self.interval.is_zero() {
            return Err("slo.interval must be > 0".into());
        }
        for knob in &self.lattice {
            match *knob {
                Knob::CodecQuality { shift } if shift >= 8 => {
                    return Err(format!("lattice quality shift {shift} out of range (< 8)"));
                }
                Knob::Batch { max_batch: 0 } => {
                    return Err("lattice batch max_batch must be ≥ 1".into());
                }
                Knob::SampleRate { divisor: 0 } => {
                    return Err("lattice sample divisor must be ≥ 1".into());
                }
                Knob::Shed { keep_one_in: 0 } => {
                    return Err("lattice shed keep_one_in must be ≥ 1".into());
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// The effective knob settings at some lattice level — what the actuation
/// sites (encode path, executor drain, pacer admission) read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KnobSettings {
    /// Codec quality override for cross-device frames (`None` = configured
    /// quality).
    pub quality_shift: Option<u8>,
    /// Micro-batch ceiling floor (`None` = configured policy).
    pub max_batch: Option<usize>,
    /// Source sampling divisor (1 = every tick).
    pub sample_divisor: u32,
    /// Shedding factor applied after sampling (1 = keep everything).
    pub shed_one_in: u32,
}

impl KnobSettings {
    /// Settings with every knob at its baseline (no degradation).
    pub fn baseline() -> Self {
        KnobSettings {
            quality_shift: None,
            max_batch: None,
            sample_divisor: 1,
            shed_one_in: 1,
        }
    }

    /// The combined admission stride: one admitted camera tick in
    /// `sample_divisor × shed_one_in`.
    pub fn admit_stride(&self) -> u64 {
        u64::from(self.sample_divisor.max(1)) * u64::from(self.shed_one_in.max(1))
    }

    /// The effective codec quality given the configured baseline.
    pub fn quality_or(&self, configured: Quality) -> Quality {
        match self.quality_shift {
            Some(shift) if shift < 8 => Quality::new(shift),
            _ => configured,
        }
    }
}

/// What a control tick decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloAction {
    /// Degraded one rung: the knob at `lattice[level - 1]` was just applied.
    StepDown {
        /// New lattice level (number of knobs applied).
        level: usize,
    },
    /// Recovered one rung: the knob at `lattice[level]` was just released.
    StepUp {
        /// New lattice level.
        level: usize,
    },
    /// No change (healthy, inside the hysteresis band, dwelling, or the
    /// window was too thin to judge).
    Hold,
}

/// The per-pipeline SLO feedback controller.
///
/// Drive it by calling [`SloController::observe`] once per control tick
/// with the pipeline's *cumulative* end-to-end histogram; the controller
/// internally diffs successive snapshots ([`LatencyHistogram::since`]) so
/// each decision sees only the window since the last tick.
#[derive(Debug, Clone)]
pub struct SloController {
    config: SloConfig,
    level: usize,
    prev: LatencyHistogram,
    prev_queue_max: u64,
    last_change_ns: Option<u64>,
    last_direction_down: Option<bool>,
    moves: u64,
    flaps: u64,
    last_window_p99_ns: u64,
    last_window_count: u64,
}

impl SloController {
    /// A controller at baseline (no knobs applied).
    pub fn new(config: SloConfig) -> Self {
        SloController {
            config,
            level: 0,
            prev: LatencyHistogram::new(),
            prev_queue_max: 0,
            last_change_ns: None,
            last_direction_down: None,
            moves: 0,
            flaps: 0,
            last_window_p99_ns: 0,
            last_window_count: 0,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Current lattice level (0 = baseline, `lattice.len()` = fully
    /// degraded).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Total knob moves so far (both directions).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Direction reversals so far. The dwell time bounds this: at most one
    /// move — hence at most one reversal — per dwell period.
    pub fn flaps(&self) -> u64 {
        self.flaps
    }

    /// Windowed p99 observed at the last tick (ns; 0 before the first
    /// actionable window).
    pub fn last_window_p99_ns(&self) -> u64 {
        self.last_window_p99_ns
    }

    /// Delivered frames in the last observed window.
    pub fn last_window_count(&self) -> u64 {
        self.last_window_count
    }

    /// The effective knob settings at the current level: each applied rung
    /// overrides its axis, so deeper lattice entries deepen the degradation.
    pub fn settings(&self) -> KnobSettings {
        Self::settings_at(&self.config.lattice, self.level)
    }

    /// Settings with the first `level` lattice knobs applied.
    pub fn settings_at(lattice: &[Knob], level: usize) -> KnobSettings {
        let mut s = KnobSettings::baseline();
        for knob in lattice.iter().take(level) {
            match *knob {
                Knob::CodecQuality { shift } => s.quality_shift = Some(shift),
                Knob::Batch { max_batch } => s.max_batch = Some(max_batch.max(1)),
                Knob::SampleRate { divisor } => s.sample_divisor = divisor.max(1),
                Knob::Shed { keep_one_in } => s.shed_one_in = keep_one_in.max(1),
            }
        }
        s
    }

    /// One control tick: diff the cumulative histogram against the previous
    /// snapshot, judge the window against the SLO with hysteresis, and move
    /// at most one lattice rung (respecting the dwell time).
    ///
    /// `queue_max` is the cumulative dispatch queue high-water mark; the
    /// controller treats a *growth* of this mark within the window as
    /// pressure even before delivered-frame latency degrades.
    pub fn observe(
        &mut self,
        now_ns: u64,
        cumulative: &LatencyHistogram,
        queue_max: u64,
    ) -> SloAction {
        let window = cumulative.since(&self.prev);
        let queue_grew_to = if queue_max > self.prev_queue_max {
            queue_max
        } else {
            0
        };
        self.prev_queue_max = self.prev_queue_max.max(queue_max);

        if window.count() < self.config.min_window {
            // Too thin to judge latency — carry the window over (keep the
            // old snapshot) so the samples accumulate across ticks. A
            // pipeline delivering fewer than min_window/interval fps is
            // then judged on a longer window instead of never: min_window
            // is a sample floor, not a delivery-rate floor. A queue
            // blowing up while nothing gets delivered is still the
            // strongest overload signal there is, so the trip wire fires
            // regardless.
            if !self.queue_tripped(queue_grew_to) {
                return SloAction::Hold;
            }
        } else {
            self.prev = cumulative.clone();
            self.last_window_p99_ns = window.quantile_ns(0.99);
            self.last_window_count = window.count();
        }

        let target_ns = self.config.slo.p99.as_nanos() as f64;
        let p99 = self.last_window_p99_ns as f64;
        let trip =
            window.count() >= self.config.min_window && p99 > target_ns * self.config.trip_ratio;
        let trip = trip || self.queue_tripped(queue_grew_to);
        let relax = window.count() >= self.config.min_window
            && p99 < target_ns * self.config.relax_headroom
            && !self.queue_tripped(queue_grew_to);

        // Dwell: at most one knob move per dwell period, either direction.
        if let Some(changed_at) = self.last_change_ns {
            if now_ns.saturating_sub(changed_at) < self.config.dwell.as_nanos() as u64 {
                return SloAction::Hold;
            }
        }

        if trip && self.level < self.config.lattice.len() {
            self.level += 1;
            self.mark_move(now_ns, true);
            SloAction::StepDown { level: self.level }
        } else if relax && self.level > 0 {
            self.level -= 1;
            self.mark_move(now_ns, false);
            SloAction::StepUp { level: self.level }
        } else {
            SloAction::Hold
        }
    }

    fn queue_tripped(&self, queue_grew_to: u64) -> bool {
        matches!(self.config.queue_trip, Some(limit) if queue_grew_to >= limit)
    }

    fn mark_move(&mut self, now_ns: u64, down: bool) {
        self.moves = self.moves.saturating_add(1);
        if let Some(prev_down) = self.last_direction_down {
            if prev_down != down {
                self.flaps = self.flaps.saturating_add(1);
            }
        }
        self.last_direction_down = Some(down);
        self.last_change_ns = Some(now_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(ms: u64, n: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for _ in 0..n {
            h.record(ms * 1_000_000);
        }
        h
    }

    fn config() -> SloConfig {
        SloConfig::p99(Duration::from_millis(50))
            .with_interval(Duration::from_millis(100))
            .with_dwell(Duration::from_millis(200))
    }

    #[test]
    fn healthy_pipeline_stays_at_baseline() {
        let mut c = SloController::new(config());
        let mut cum = LatencyHistogram::new();
        for tick in 1..=10u64 {
            cum.merge(&hist_with(10, 20));
            assert_eq!(c.observe(tick * 100_000_000, &cum, 0), SloAction::Hold);
        }
        assert_eq!(c.level(), 0);
        assert_eq!(c.moves(), 0);
    }

    #[test]
    fn thin_windows_accumulate_instead_of_being_discarded() {
        // Delivering 1 frame per tick with min_window 4: a controller that
        // discards thin windows would never judge this pipeline at all.
        // Carried-over windows accumulate to 4 samples and trip.
        let mut c = SloController::new(config());
        let mut cum = LatencyHistogram::new();
        let mut now = 0u64;
        let mut stepped = false;
        for _ in 0..8 {
            now += 300_000_000; // > dwell each tick
            cum.merge(&hist_with(400, 1)); // way over the 50 ms target
            if let SloAction::StepDown { .. } = c.observe(now, &cum, 0) {
                stepped = true;
                break;
            }
        }
        assert!(stepped, "slow pipeline was never judged");
        assert!(c.last_window_count() >= c.config().min_window);
    }

    #[test]
    fn overload_walks_down_the_lattice_in_order() {
        let mut c = SloController::new(config());
        let mut cum = LatencyHistogram::new();
        let mut now = 0u64;
        let mut levels = Vec::new();
        for _ in 0..20 {
            now += 300_000_000; // > dwell each tick
            cum.merge(&hist_with(400, 20)); // way over the 50 ms target
            if let SloAction::StepDown { level } = c.observe(now, &cum, 0) {
                levels.push(level);
            }
        }
        // One rung at a time, in lattice order, down to the floor.
        assert_eq!(levels, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(c.level(), 6);
        let s = c.settings();
        assert_eq!(s.quality_shift, Some(6)); // deeper rung overrode shift 4
        assert_eq!(s.max_batch, Some(4));
        assert_eq!(s.sample_divisor, 4);
        assert_eq!(s.shed_one_in, 4);
        assert_eq!(s.admit_stride(), 16);
    }

    #[test]
    fn dwell_bounds_the_move_rate() {
        let mut c = SloController::new(config()); // dwell 200 ms
        let mut cum = LatencyHistogram::new();
        let mut moves = 0;
        // 40 ticks 100 ms apart, permanently overloaded: the dwell allows a
        // move at most every other tick.
        for tick in 1..=40u64 {
            cum.merge(&hist_with(400, 20));
            if c.observe(tick * 100_000_000, &cum, 0) != SloAction::Hold {
                moves += 1;
            }
        }
        assert_eq!(moves as u64, c.moves());
        assert!(moves <= 20, "dwell violated: {moves} moves in 4 s");
        assert!(moves >= 6, "never reached the lattice floor");
    }

    #[test]
    fn hysteresis_band_prevents_flapping_at_the_boundary() {
        // The log-bucket histogram resolves latency to factor-of-2 bands,
        // so the hysteresis band must span at least one bucket to be
        // meaningful: target 70 ms, trip > 70 ms, relax < 0.4×70 = 28 ms.
        // A 40 ms window reads as its bucket ceiling (~65.5 ms), which sits
        // inside the band.
        let mut cfg = config();
        cfg.slo.p99 = Duration::from_millis(70);
        cfg.relax_headroom = 0.4;
        let mut c = SloController::new(cfg);
        let mut cum = LatencyHistogram::new();
        let mut now = 0u64;
        // Push over the target once.
        now += 300_000_000;
        cum.merge(&hist_with(400, 20));
        assert_eq!(c.observe(now, &cum, 0), SloAction::StepDown { level: 1 });
        // Now sit under the target but inside the band: the controller must
        // hold, not step back up.
        for _ in 0..10 {
            now += 300_000_000;
            cum.merge(&hist_with(40, 20));
            assert_eq!(c.observe(now, &cum, 0), SloAction::Hold);
        }
        assert_eq!(c.level(), 1);
        // Real headroom (10 ms window reads ≈16 ms ≪ 28 ms) releases the
        // knob.
        now += 300_000_000;
        cum.merge(&hist_with(10, 20));
        assert_eq!(c.observe(now, &cum, 0), SloAction::StepUp { level: 0 });
        assert_eq!(c.flaps(), 1);
    }

    #[test]
    fn thin_windows_hold() {
        let mut c = SloController::new(config()); // min_window 4
        let mut cum = LatencyHistogram::new();
        cum.merge(&hist_with(400, 2)); // only 2 samples
        assert_eq!(c.observe(300_000_000, &cum, 0), SloAction::Hold);
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn queue_trip_fires_even_when_nothing_is_delivered() {
        let mut c = SloController::new(config().with_queue_trip(8));
        let cum = LatencyHistogram::new(); // no deliveries at all
        assert_eq!(
            c.observe(300_000_000, &cum, 16),
            SloAction::StepDown { level: 1 }
        );
        // The high-water mark is sticky; without *growth* it trips only once.
        assert_eq!(c.observe(600_000_000, &cum, 16), SloAction::Hold);
        assert_eq!(
            c.observe(900_000_000, &cum, 32),
            SloAction::StepDown { level: 2 }
        );
    }

    #[test]
    fn recovery_steps_back_to_baseline() {
        let mut c = SloController::new(config());
        let mut cum = LatencyHistogram::new();
        let mut now = 0u64;
        for _ in 0..4 {
            now += 300_000_000;
            cum.merge(&hist_with(400, 20));
            c.observe(now, &cum, 0);
        }
        assert_eq!(c.level(), 4);
        while c.level() > 0 {
            now += 300_000_000;
            cum.merge(&hist_with(5, 20));
            let level_before = c.level();
            assert_eq!(
                c.observe(now, &cum, 0),
                SloAction::StepUp {
                    level: level_before - 1
                }
            );
        }
        assert_eq!(c.settings(), KnobSettings::baseline());
    }

    #[test]
    fn validation_catches_inverted_bounds() {
        let mut cfg = config();
        assert!(cfg.validate().is_ok());
        cfg.slo.p50 = Some(Duration::from_millis(80)); // > p99 50 ms
        assert!(cfg.validate().unwrap_err().contains("inverted SLO bounds"));
        let mut cfg = config();
        cfg.relax_headroom = 1.5; // above trip_ratio
        assert!(cfg.validate().unwrap_err().contains("hysteresis"));
        let mut cfg = config();
        cfg.lattice = vec![Knob::CodecQuality { shift: 9 }];
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.lattice = vec![Knob::Shed { keep_one_in: 0 }];
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.slo.p99 = Duration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn quality_override_resolves() {
        let s = KnobSettings {
            quality_shift: Some(5),
            ..KnobSettings::baseline()
        };
        assert_eq!(s.quality_or(Quality::default()).shift(), 5);
        assert_eq!(
            KnobSettings::baseline().quality_or(Quality::default()),
            Quality::default()
        );
    }
}
