//! Pipeline specifications: the DAG of modules an application declares.
//!
//! Mirrors the paper's Listing 1: each module has a `name`, an `include`
//! (which module code to instantiate), the `service`s it calls, an
//! `endpoint`, and its `next_module` edges.

use crate::error::PipelineError;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use videopipe_net::Endpoint;

/// One module entry in a pipeline spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSpec {
    /// Unique module name within the pipeline.
    pub name: String,
    /// Module implementation key (the analogue of the config's
    /// `include("./PoseDetectorModule.js")`).
    pub include: String,
    /// Services this module calls.
    pub services: Vec<String>,
    /// How this module is reached (optional; the deployer assigns inproc
    /// endpoints when omitted).
    pub endpoint: Option<Endpoint>,
    /// Downstream modules (outgoing DAG edges).
    pub next_modules: Vec<String>,
}

impl ModuleSpec {
    /// Creates a spec with no services, endpoint or edges.
    pub fn new(name: impl Into<String>, include: impl Into<String>) -> Self {
        ModuleSpec {
            name: name.into(),
            include: include.into(),
            services: Vec::new(),
            endpoint: None,
            next_modules: Vec::new(),
        }
    }

    /// Adds a called service.
    pub fn with_service(mut self, service: impl Into<String>) -> Self {
        self.services.push(service.into());
        self
    }

    /// Sets the endpoint.
    pub fn with_endpoint(mut self, endpoint: Endpoint) -> Self {
        self.endpoint = Some(endpoint);
        self
    }

    /// Adds an outgoing edge.
    pub fn with_next(mut self, next: impl Into<String>) -> Self {
        self.next_modules.push(next.into());
        self
    }
}

/// A directed edge of the pipeline DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Upstream module.
    pub from: String,
    /// Downstream module.
    pub to: String,
}

/// A complete pipeline specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineSpec {
    /// Pipeline name (unique within a deployment).
    pub name: String,
    /// The modules, in declaration order.
    pub modules: Vec<ModuleSpec>,
}

impl PipelineSpec {
    /// Creates an empty pipeline.
    pub fn new(name: impl Into<String>) -> Self {
        PipelineSpec {
            name: name.into(),
            modules: Vec::new(),
        }
    }

    /// Adds a module.
    pub fn with_module(mut self, module: ModuleSpec) -> Self {
        self.modules.push(module);
        self
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&ModuleSpec> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// All edges in declaration order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for m in &self.modules {
            for next in &m.next_modules {
                out.push(Edge {
                    from: m.name.clone(),
                    to: next.clone(),
                });
            }
        }
        out
    }

    /// Modules with no incoming edges (the video sources).
    pub fn sources(&self) -> Vec<&ModuleSpec> {
        let targets: BTreeSet<&str> = self
            .modules
            .iter()
            .flat_map(|m| m.next_modules.iter().map(String::as_str))
            .collect();
        self.modules
            .iter()
            .filter(|m| !targets.contains(m.name.as_str()))
            .collect()
    }

    /// Modules with no outgoing edges (the displays/actuators).
    pub fn sinks(&self) -> Vec<&ModuleSpec> {
        self.modules
            .iter()
            .filter(|m| m.next_modules.is_empty())
            .collect()
    }

    /// Validates the spec: non-empty, unique names, edges reference
    /// existing modules, no self-loops, acyclic, and at least one source
    /// and sink.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Validation`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.name.is_empty() {
            return Err(PipelineError::Validation("pipeline name is empty".into()));
        }
        if self.modules.is_empty() {
            return Err(PipelineError::Validation(format!(
                "pipeline {:?} has no modules",
                self.name
            )));
        }
        let mut seen = BTreeSet::new();
        for m in &self.modules {
            if m.name.is_empty() {
                return Err(PipelineError::Validation("module with empty name".into()));
            }
            if !seen.insert(m.name.as_str()) {
                return Err(PipelineError::Validation(format!(
                    "duplicate module name {:?}",
                    m.name
                )));
            }
            if m.include.is_empty() {
                return Err(PipelineError::Validation(format!(
                    "module {:?} has no include",
                    m.name
                )));
            }
        }
        for m in &self.modules {
            for next in &m.next_modules {
                if next == &m.name {
                    return Err(PipelineError::Validation(format!(
                        "module {:?} links to itself",
                        m.name
                    )));
                }
                if !seen.contains(next.as_str()) {
                    return Err(PipelineError::Validation(format!(
                        "module {:?} links to unknown module {next:?}",
                        m.name
                    )));
                }
            }
        }
        // Acyclicity via Kahn's algorithm; also yields the topo order.
        self.topo_order()?;
        if self.sources().is_empty() {
            return Err(PipelineError::Validation(format!(
                "pipeline {:?} has no source module",
                self.name
            )));
        }
        if self.sinks().is_empty() {
            return Err(PipelineError::Validation(format!(
                "pipeline {:?} has no sink module",
                self.name
            )));
        }
        Ok(())
    }

    /// Topological order of the module names.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Validation`] when the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<String>, PipelineError> {
        let mut indegree: BTreeMap<&str, usize> =
            self.modules.iter().map(|m| (m.name.as_str(), 0)).collect();
        for m in &self.modules {
            for next in &m.next_modules {
                if let Some(d) = indegree.get_mut(next.as_str()) {
                    *d += 1;
                }
            }
        }
        let mut queue: VecDeque<&str> = self
            .modules
            .iter()
            .filter(|m| indegree[m.name.as_str()] == 0)
            .map(|m| m.name.as_str())
            .collect();
        let mut order = Vec::with_capacity(self.modules.len());
        while let Some(name) = queue.pop_front() {
            order.push(name.to_string());
            if let Some(m) = self.module(name) {
                for next in &m.next_modules {
                    if let Some(d) = indegree.get_mut(next.as_str()) {
                        *d -= 1;
                        if *d == 0 {
                            queue.push_back(next.as_str());
                        }
                    }
                }
            }
        }
        if order.len() != self.modules.len() {
            return Err(PipelineError::Validation(format!(
                "pipeline {:?} contains a cycle",
                self.name
            )));
        }
        Ok(order)
    }

    /// The longest path (in module count) from any source to any sink —
    /// the pipeline depth.
    pub fn depth(&self) -> usize {
        let Ok(order) = self.topo_order() else {
            return 0;
        };
        let mut dist: BTreeMap<&str, usize> = BTreeMap::new();
        let mut best = 0;
        for name in &order {
            let d = *dist.get(name.as_str()).unwrap_or(&1).max(&1);
            best = best.max(d);
            if let Some(m) = self.module(name) {
                for next in &m.next_modules {
                    let entry = dist.entry(next.as_str()).or_insert(0);
                    *entry = (*entry).max(d + 1);
                }
            }
        }
        // dist keys borrow from order; recompute best including dist values.
        for (_, d) in dist {
            best = best.max(d);
        }
        best
    }

    /// All service names referenced by any module, sorted and deduplicated.
    pub fn required_services(&self) -> Vec<String> {
        let mut services: Vec<String> = self
            .modules
            .iter()
            .flat_map(|m| m.services.iter().cloned())
            .collect();
        services.sort();
        services.dedup();
        services
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_pipeline() -> PipelineSpec {
        PipelineSpec::new("fitness")
            .with_module(ModuleSpec::new("src", "video").with_next("pose"))
            .with_module(
                ModuleSpec::new("pose", "pose_mod")
                    .with_service("pose_detector")
                    .with_next("display"),
            )
            .with_module(ModuleSpec::new("display", "display_mod"))
    }

    #[test]
    fn valid_linear_pipeline() {
        let spec = linear_pipeline();
        spec.validate().unwrap();
        assert_eq!(spec.topo_order().unwrap(), vec!["src", "pose", "display"]);
        assert_eq!(spec.sources().len(), 1);
        assert_eq!(spec.sinks().len(), 1);
        assert_eq!(spec.depth(), 3);
        assert_eq!(spec.edges().len(), 2);
        assert_eq!(spec.required_services(), vec!["pose_detector"]);
    }

    #[test]
    fn fan_out_pipeline() {
        // activity → {rep_counter, display}; rep_counter → display
        // (the paper's fitness DAG shape).
        let spec = PipelineSpec::new("p")
            .with_module(ModuleSpec::new("a", "i").with_next("b"))
            .with_module(ModuleSpec::new("b", "i").with_next("c").with_next("d"))
            .with_module(ModuleSpec::new("c", "i").with_next("d"))
            .with_module(ModuleSpec::new("d", "i"));
        spec.validate().unwrap();
        assert_eq!(spec.depth(), 4);
        assert_eq!(spec.sinks().len(), 1);
        assert_eq!(spec.edges().len(), 4);
    }

    #[test]
    fn rejects_duplicate_names() {
        let spec = PipelineSpec::new("p")
            .with_module(ModuleSpec::new("a", "i"))
            .with_module(ModuleSpec::new("a", "i"));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn rejects_unknown_edge_target() {
        let spec = PipelineSpec::new("p").with_module(ModuleSpec::new("a", "i").with_next("ghost"));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn rejects_self_loop() {
        let spec = PipelineSpec::new("p").with_module(ModuleSpec::new("a", "i").with_next("a"));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn rejects_cycle() {
        let spec = PipelineSpec::new("p")
            .with_module(ModuleSpec::new("a", "i").with_next("b"))
            .with_module(ModuleSpec::new("b", "i").with_next("a"));
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn rejects_empty_pipeline_and_names() {
        assert!(PipelineSpec::new("p").validate().is_err());
        assert!(PipelineSpec::new("")
            .with_module(ModuleSpec::new("a", "i"))
            .validate()
            .is_err());
        assert!(PipelineSpec::new("p")
            .with_module(ModuleSpec::new("", "i"))
            .validate()
            .is_err());
        assert!(PipelineSpec::new("p")
            .with_module(ModuleSpec::new("a", ""))
            .validate()
            .is_err());
    }

    #[test]
    fn cycle_means_no_source_detected_first_as_cycle() {
        // A pure cycle has no sources; topo check fires first.
        let spec = PipelineSpec::new("p")
            .with_module(ModuleSpec::new("a", "i").with_next("b"))
            .with_module(ModuleSpec::new("b", "i").with_next("c"))
            .with_module(ModuleSpec::new("c", "i").with_next("a"));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn module_lookup() {
        let spec = linear_pipeline();
        assert!(spec.module("pose").is_some());
        assert!(spec.module("ghost").is_none());
    }

    #[test]
    fn builder_methods() {
        let m = ModuleSpec::new("n", "i")
            .with_service("s1")
            .with_service("s2")
            .with_endpoint("bind#tcp://*:5861".parse().unwrap())
            .with_next("x");
        assert_eq!(m.services, vec!["s1", "s2"]);
        assert!(m.endpoint.is_some());
        assert_eq!(m.next_modules, vec!["x"]);
    }
}
