//! Pipeline monitoring — the paper's §7 future work ("we aim to include
//! automatic deployment, scheduling and monitoring components to
//! VideoPipe").
//!
//! The runtime periodically publishes [`TelemetrySnapshot`]s on the
//! in-process PUB/SUB topic `telemetry/<pipeline>`; any number of
//! [`TelemetryMonitor`]s subscribe without disturbing the data path (the
//! publisher drops snapshots when nobody listens). The autoscaler ablation
//! and the monitoring example consume these.

use crate::error::PipelineError;
use crate::metrics::PipelineMetrics;
use std::collections::BTreeMap;
use std::fmt;
use videopipe_net::{InprocHub, MessageKind, MsgReceiver, WireMessage};

/// A point-in-time view of one pipeline's health.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Pipeline name.
    pub pipeline: String,
    /// Pipeline-clock time of the snapshot (nanoseconds).
    pub at_ns: u64,
    /// Frames delivered so far.
    pub frames_delivered: u64,
    /// Frames dropped at the source so far.
    pub frames_dropped: u64,
    /// End-to-end FPS over the run so far.
    pub fps: f64,
    /// Mean end-to-end latency (ms).
    pub mean_latency_ms: f64,
    /// Median end-to-end latency (ms), from the low-cardinality log-bucket
    /// histogram (no per-frame allocation).
    pub p50_ms: f64,
    /// End-to-end p99 latency (ms) — the quantity the SLO controller
    /// defends.
    pub p99_ms: f64,
    /// Deepest service dispatch backlog observed so far, across hosts (the
    /// controller's early-warning signal).
    pub max_queue_depth: u64,
    /// Current SLO degradation lattice level (0 = baseline / no
    /// controller).
    pub slo_level: u64,
    /// Mean per-stage latency (ms), keyed by module name.
    pub stage_means_ms: BTreeMap<String, f64>,
    /// Mean micro-batch size per service host (`device/service`), present
    /// only for hosts that dispatched at least one batch. 1.0 means the
    /// drain policy never coalesced requests (low load or batching off).
    pub batch_means: BTreeMap<String, f64>,
}

impl TelemetrySnapshot {
    /// Builds a snapshot from live metrics.
    pub fn from_metrics(pipeline: &str, at_ns: u64, metrics: &PipelineMetrics) -> Self {
        TelemetrySnapshot {
            pipeline: pipeline.to_string(),
            at_ns,
            frames_delivered: metrics.frames_delivered,
            frames_dropped: metrics.frames_dropped,
            fps: metrics.fps(),
            mean_latency_ms: metrics.end_to_end.mean_ms(),
            p50_ms: metrics.end_to_end.quantile_ns(0.5) as f64 / 1e6,
            p99_ms: metrics.end_to_end.quantile_ns(0.99) as f64 / 1e6,
            max_queue_depth: metrics
                .dispatch
                .values()
                .map(|s| s.max_queue_depth)
                .max()
                .unwrap_or(0),
            slo_level: 0,
            stage_means_ms: metrics
                .stages
                .iter()
                .map(|(k, v)| (k.clone(), v.mean_ms()))
                .collect(),
            batch_means: metrics
                .dispatch
                .iter()
                .filter(|(_, s)| s.batches > 0)
                .map(|(k, s)| (k.clone(), s.mean_batch()))
                .collect(),
        }
    }

    /// The pub/sub topic snapshots for `pipeline` are published on.
    pub fn topic(pipeline: &str) -> String {
        format!("telemetry/{pipeline}")
    }

    /// Encodes as a compact `key=value` line protocol.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "pipeline={};at_ns={};delivered={};dropped={};fps={:.4};latency_ms={:.4}",
            self.pipeline,
            self.at_ns,
            self.frames_delivered,
            self.frames_dropped,
            self.fps,
            self.mean_latency_ms
        );
        // Tail-latency / SLO keys are new in the controller layer; old
        // decoders skip them via the unknown-key rule.
        out.push_str(&format!(
            ";p50_ms={:.4};p99_ms={:.4};queue={};slo_level={}",
            self.p50_ms, self.p99_ms, self.max_queue_depth, self.slo_level
        ));
        for (stage, ms) in &self.stage_means_ms {
            out.push_str(&format!(";stage.{stage}={ms:.4}"));
        }
        // `batch.` keys are new in the batching layer; old decoders skip
        // them via the unknown-key rule.
        for (host, mean) in &self.batch_means {
            out.push_str(&format!(";batch.{host}={mean:.4}"));
        }
        out
    }

    /// Decodes the line protocol.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadPayload`] on malformed lines.
    pub fn decode(line: &str) -> Result<Self, PipelineError> {
        let mut snapshot = TelemetrySnapshot {
            pipeline: String::new(),
            at_ns: 0,
            frames_delivered: 0,
            frames_dropped: 0,
            fps: 0.0,
            mean_latency_ms: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            max_queue_depth: 0,
            slo_level: 0,
            stage_means_ms: BTreeMap::new(),
            batch_means: BTreeMap::new(),
        };
        for field in line.split(';') {
            let (key, value) = field
                .split_once('=')
                .ok_or(PipelineError::BadPayload("telemetry field without '='"))?;
            let bad = || PipelineError::BadPayload("telemetry value malformed");
            match key {
                "pipeline" => snapshot.pipeline = value.to_string(),
                "at_ns" => snapshot.at_ns = value.parse().map_err(|_| bad())?,
                "delivered" => snapshot.frames_delivered = value.parse().map_err(|_| bad())?,
                "dropped" => snapshot.frames_dropped = value.parse().map_err(|_| bad())?,
                "fps" => snapshot.fps = value.parse().map_err(|_| bad())?,
                "latency_ms" => snapshot.mean_latency_ms = value.parse().map_err(|_| bad())?,
                "p50_ms" => snapshot.p50_ms = value.parse().map_err(|_| bad())?,
                "p99_ms" => snapshot.p99_ms = value.parse().map_err(|_| bad())?,
                "queue" => snapshot.max_queue_depth = value.parse().map_err(|_| bad())?,
                "slo_level" => snapshot.slo_level = value.parse().map_err(|_| bad())?,
                other_key => {
                    if let Some(stage) = other_key.strip_prefix("stage.") {
                        snapshot
                            .stage_means_ms
                            .insert(stage.to_string(), value.parse().map_err(|_| bad())?);
                    } else if let Some(host) = other_key.strip_prefix("batch.") {
                        snapshot
                            .batch_means
                            .insert(host.to_string(), value.parse().map_err(|_| bad())?);
                    }
                    // Unknown keys are ignored for forward compatibility.
                }
            }
        }
        if snapshot.pipeline.is_empty() {
            return Err(PipelineError::BadPayload("telemetry missing pipeline"));
        }
        Ok(snapshot)
    }

    /// Publishes this snapshot on `hub`; returns how many monitors got it.
    pub fn publish(&self, hub: &InprocHub) -> usize {
        hub.publish(&WireMessage {
            kind: MessageKind::Control,
            channel: Self::topic(&self.pipeline),
            reply_to: String::new(),
            corr_id: 0,
            seq: self.frames_delivered,
            timestamp_ns: self.at_ns,
            epoch: 0,
            payload: bytes::Bytes::from(self.encode().into_bytes()),
        })
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] t={:.1}s {} delivered, {} dropped, {:.2} fps, {:.1} ms",
            self.pipeline,
            self.at_ns as f64 / 1e9,
            self.frames_delivered,
            self.frames_dropped,
            self.fps,
            self.mean_latency_ms
        )
    }
}

/// A subscriber collecting telemetry snapshots for one pipeline.
pub struct TelemetryMonitor {
    rx: videopipe_net::InprocReceiver,
    history: Vec<TelemetrySnapshot>,
}

impl TelemetryMonitor {
    /// Subscribes to `pipeline`'s telemetry on `hub`.
    ///
    /// # Errors
    ///
    /// Propagates hub binding errors.
    pub fn subscribe(hub: &InprocHub, pipeline: &str) -> Result<Self, PipelineError> {
        // A unique inbox per monitor.
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let inbox = format!("telemon/{pipeline}/{n}");
        let rx = hub.bind(&inbox)?;
        hub.subscribe(&TelemetrySnapshot::topic(pipeline), &inbox)?;
        Ok(TelemetryMonitor {
            rx,
            history: Vec::new(),
        })
    }

    /// Drains any pending snapshots into the history; returns how many
    /// arrived.
    pub fn poll(&mut self) -> usize {
        let mut n = 0;
        while let Ok(msg) = self.rx.try_recv() {
            if let Ok(text) = std::str::from_utf8(&msg.payload) {
                if let Ok(snapshot) = TelemetrySnapshot::decode(text) {
                    self.history.push(snapshot);
                    n += 1;
                }
            }
        }
        n
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&TelemetrySnapshot> {
        self.history.last()
    }

    /// All snapshots received, oldest first.
    pub fn history(&self) -> &[TelemetrySnapshot] {
        &self.history
    }
}

impl fmt::Debug for TelemetryMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryMonitor")
            .field("snapshots", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut metrics = PipelineMetrics::new();
        metrics.record_stage("pose", 50_000_000);
        metrics.record_stage("display", 3_000_000);
        metrics.record_delivery(0, 90_000_000);
        metrics.record_delivery(100_000_000, 92_000_000);
        metrics.frames_dropped = 7;
        TelemetrySnapshot::from_metrics("fitness", 123_000_000, &metrics)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snapshot = sample();
        let decoded = TelemetrySnapshot::decode(&snapshot.encode()).unwrap();
        assert_eq!(decoded.pipeline, "fitness");
        assert_eq!(decoded.frames_delivered, 2);
        assert_eq!(decoded.frames_dropped, 7);
        assert!((decoded.fps - snapshot.fps).abs() < 1e-3);
        assert_eq!(decoded.stage_means_ms.len(), 2);
        assert!((decoded.stage_means_ms["pose"] - 50.0).abs() < 0.1);
    }

    #[test]
    fn batch_means_roundtrip() {
        let mut metrics = PipelineMetrics::new();
        metrics.record_delivery(0, 1_000_000);
        metrics.record_dispatch_batch("edge/pose_detector", 5_000_000, 6, 4);
        metrics.record_dispatch_batch("edge/pose_detector", 5_000_000, 0, 2);
        let snapshot = TelemetrySnapshot::from_metrics("fitness", 1, &metrics);
        assert!((snapshot.batch_means["edge/pose_detector"] - 3.0).abs() < 1e-9);
        let decoded = TelemetrySnapshot::decode(&snapshot.encode()).unwrap();
        assert!((decoded.batch_means["edge/pose_detector"] - 3.0).abs() < 1e-3);
        // Hosts that never dispatched a batch are absent, not 0.
        assert!(!snapshot.encode().contains("batch.edge/idle"));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(TelemetrySnapshot::decode("").is_err());
        assert!(TelemetrySnapshot::decode("no_equals").is_err());
        assert!(TelemetrySnapshot::decode("at_ns=abc;pipeline=x").is_err());
        assert!(TelemetrySnapshot::decode("at_ns=1").is_err()); // no pipeline
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let decoded = TelemetrySnapshot::decode("pipeline=p;future_field=1;at_ns=5").unwrap();
        assert_eq!(decoded.at_ns, 5);
    }

    #[test]
    fn tail_latency_and_slo_keys_roundtrip() {
        let mut metrics = PipelineMetrics::new();
        for ms in [10u64, 12, 90] {
            metrics.record_delivery(ms, ms * 1_000_000);
        }
        metrics.record_dispatch("edge/pose", 1_000_000, 11);
        let mut snapshot = TelemetrySnapshot::from_metrics("fitness", 1, &metrics);
        snapshot.slo_level = 3;
        assert!(snapshot.p99_ms >= snapshot.p50_ms);
        assert_eq!(snapshot.max_queue_depth, 11);
        let decoded = TelemetrySnapshot::decode(&snapshot.encode()).unwrap();
        assert!((decoded.p50_ms - snapshot.p50_ms).abs() < 1e-3);
        assert!((decoded.p99_ms - snapshot.p99_ms).abs() < 1e-3);
        assert_eq!(decoded.max_queue_depth, 11);
        assert_eq!(decoded.slo_level, 3);
        // Pre-controller decoders (no such keys) still parse fine.
        let legacy = TelemetrySnapshot::decode("pipeline=p;at_ns=5;slo_level=2").unwrap();
        assert_eq!(legacy.slo_level, 2);
    }

    #[test]
    fn pubsub_delivery() {
        let hub = InprocHub::new();
        let mut monitor = TelemetryMonitor::subscribe(&hub, "fitness").unwrap();
        let snapshot = sample();
        assert_eq!(snapshot.publish(&hub), 1);
        assert_eq!(monitor.poll(), 1);
        assert_eq!(monitor.latest().unwrap().pipeline, "fitness");
        // No cross-talk with other pipelines.
        let mut other = TelemetryMonitor::subscribe(&hub, "gesture").unwrap();
        snapshot.publish(&hub);
        assert_eq!(other.poll(), 0);
        assert_eq!(monitor.poll(), 1);
        assert_eq!(monitor.history().len(), 2);
    }

    #[test]
    fn publish_without_subscribers_is_dropped() {
        let hub = InprocHub::new();
        assert_eq!(sample().publish(&hub), 0);
    }

    #[test]
    fn display_is_informative() {
        let text = sample().to_string();
        assert!(text.contains("fitness") && text.contains("fps"));
    }
}
