//! The event-driven reactor runtime: thousands of pipelines on a handful
//! of threads.
//!
//! The threaded [`LocalRuntime`](crate::runtime::LocalRuntime) reproduces
//! the paper literally — one OS thread per module, pacer, watcher and
//! executor — which caps a box at a few hundred pipelines long before CPU
//! does. The reactor keeps the *same* `Module`/`Service` traits and
//! [`RuntimeConfig`] surface but executes everything as scheduled tasks on
//! a worker pool sized to cores:
//!
//! * **Tasks, not threads.** Every module, service host and pacer is a
//!   task with a 4-state readiness machine (idle → queued → running →
//!   dirty). Message sends wake the destination task through a deploy-time
//!   channel→task map, frozen into an immutable per-pipeline snapshot at
//!   the end of `add_pipeline` so the steady-state send path takes no lock
//!   and allocates nothing.
//! * **Per-worker queues with stealing.** Each worker owns a LIFO slot
//!   (just-woken task: warm producer→consumer handoff), two bounded local
//!   FIFO queues (split by blocking capability) and a targeted parker —
//!   a push wakes one parked worker, never a broadcast. Every pipeline has
//!   a *home worker* assigned at deploy, so its module steps, service
//!   dispatch and watcher ticks tend to share a core; idle workers steal
//!   from siblings (randomized victim sweep) as the escape valve under
//!   imbalance, and local-queue overflow spills to a pair of global MPMC
//!   queues visible to all.
//! * **Timer wheel, not sleeps.** Pacer ticks, SLO/heartbeat/telemetry
//!   intervals, checkpoint periods and *modeled service costs* are entries
//!   on a coalescing timer wheel, sharded per worker so 10k pipelines'
//!   recurring ticks don't serialize on one mutex, served by one thread. A
//!   slow modeled service defers its replies through the wheel instead of
//!   occupying a worker, so it cannot starve co-hosted services.
//! * **Wait by helping.** [`ModuleCtx::call_service`] is synchronous by
//!   contract. A module task waiting for a reply runs *other* ready tasks
//!   inline instead of parking its worker. Helpers above a bounded depth
//!   only run non-blocking tasks (service dispatch, pacers, watchers) —
//!   and replies are always produced by non-blocking tasks, so the wait
//!   always makes progress even with a single worker.
//! * **One I/O thread.** TCP ingress uses the non-blocking
//!   [`PollEndpoint`](videopipe_net::PollEndpoint) poll loop: one thread
//!   drains every endpoint of every pipeline and feeds completed frames to
//!   the readiness queues. No per-connection reader threads.
//!
//! Thread count is `workers (≈ cores) + 1 timer + 1 I/O (TCP only)`,
//! independent of pipeline count. Two deliberate semantic deltas from the
//! threaded runtime, both documented in DESIGN.md §5.11: service dispatch
//! free-drains whatever is queued but never *holds* a partial batch open
//! (requests accumulate naturally while a batch waits for a worker), and
//! per-device `cores` no longer multiplies executor threads — service
//! parallelism comes from the shared pool.

use crate::deploy::DeploymentPlan;
use crate::error::PipelineError;
use crate::flow::{CreditController, SourcePacer};
use crate::health::FailureDetector;
use crate::message::{Header, Message, Payload};
use crate::metrics::PipelineMetrics;
use crate::module::{Event, Module, ModuleCtx, ModuleFactory, ModuleRegistry};
use crate::resilience::{seed_for, DegradationPolicy, SeededJitter};
use crate::runtime::{
    collect_report, fc_chan, hb_chan, mod_chan, panic_message, reply_chan, EdgeTransport,
    KnobActuators, ModuleWiring, Router, RunReport, RuntimeConfig, Shared, ShutdownGate, POLL,
};
use crate::service::{Service, ServiceRegistry, ServiceRequest, ServiceResponse};
use crate::slo::{SloAction, SloController};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use videopipe_media::{codec, FrameStore};
use videopipe_net::{
    InprocHub, InprocReceiver, MessageKind, MsgReceiver, MsgSender, PollEndpoint, WireMessage,
};

/// Executor knobs for a [`ReactorRuntime`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Worker threads running ready tasks. `0` (the default) sizes the
    /// pool to the machine's available parallelism.
    pub workers: usize,
    /// How deep wait-by-helping may nest through *blocking-capable* module
    /// tasks. Helpers above this depth only run non-blocking tasks, which
    /// bounds stack growth while keeping service replies reachable.
    pub help_depth: usize,
    /// Timer-wheel tick width. Deferred work (pacer ticks, modeled costs,
    /// watcher intervals) is quantized to this granularity.
    pub timer_granularity: Duration,
    /// Messages one module task drains per scheduling quantum before
    /// yielding its worker.
    pub module_quantum: usize,
    /// Whether idle workers steal from sibling local queues. On by
    /// default; turning it off pins every pipeline strictly to its home
    /// worker (useful for isolating scheduling experiments). Non-worker
    /// threads helping their own service calls always sweep regardless.
    pub steal: bool,
    /// Overrides the home worker for *every* pipeline deployed to this
    /// runtime (modulo worker count). `None` (the default) assigns
    /// pipeline `i` to worker `i % workers` at deploy time.
    pub affinity: Option<usize>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 0,
            help_depth: 1,
            timer_granularity: Duration::from_micros(200),
            module_quantum: 32,
            steal: true,
            affinity: None,
        }
    }
}

impl ReactorConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

// Task readiness states.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
/// Woken while running: must requeue when the current run finishes.
const DIRTY: u8 = 3;

/// How long a waiting module parks between helping attempts when no reply
/// and no helpable work is available.
const HELP_PARK: Duration = Duration::from_micros(200);

/// How long an idle worker parks before re-polling its queues. A push
/// that races a worker's park entry may lose its wake; the timeout bounds
/// the cost of that race to latency, never progress.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// Batches one service task dispatches per quantum before yielding.
const SERVICE_BATCH_QUANTUM: usize = 4;

/// Bounded per-worker local run-queue depth. Beyond this, pushes spill to
/// the global overflow queues, so one hot pipeline cannot grow its home
/// worker's queue without bound — and spilled tasks become visible to
/// every worker, which doubles as a pressure valve.
const LOCAL_QUEUE_CAP: usize = 256;

/// Frames one TCP endpoint may deliver per I/O poll pass before the
/// shared I/O thread moves on to its siblings.
const IO_POLL_BUDGET: usize = 256;

/// Per-device frame-store capacity under the reactor. Small on purpose:
/// in-flight frames per pipeline are bounded by credits, and 10k pipelines
/// each carrying the threaded default would dominate the memory budget.
/// The store evicts oldest-first beyond this.
const REACTOR_STORE_CAPACITY: usize = 16;

/// Pads and aligns a value to a cache line so per-worker hot state (queue
/// locks, stats counters, timer shards) and the task table's state bytes
/// never false-share a line with their neighbours.
#[repr(align(64))]
struct CachePadded<T>(T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// One unit of schedulable work.
trait TaskRunner: Send {
    /// Runs one quantum. Returns `true` when work is known to remain (the
    /// task requeues immediately).
    fn run(&mut self, core: &Core, depth: usize) -> bool;
    /// Called once at shutdown, after workers have stopped.
    fn finalize(&mut self, _core: &Core) {}
}

struct Task {
    /// Home worker (pipeline affinity): wakes from off-worker threads
    /// (timer, I/O, deploy) land on this worker's local queue so one
    /// pipeline's tasks tend to share a core; stealing is the escape
    /// valve under imbalance.
    home: usize,
    /// Module tasks may block (wait-by-helping) inside `call_service`;
    /// everything else never blocks and is always safe to help with.
    blocking: bool,
    /// The 4-state readiness machine, padded so the wake CAS on one task
    /// never contends with a neighbouring task's state line.
    state: CachePadded<AtomicU8>,
    runner: Mutex<Box<dyn TaskRunner>>,
}

/// One worker's park/unpark latch. Unlike the old pool-wide doorbell,
/// wakes are *targeted*: a push unparks at most one specific worker — no
/// broadcast, no thundering herd. `notified` makes an unpark that lands
/// just before the park call stick; the remaining race window (a push
/// between a worker's last queue check and its park) is tolerated because
/// workers re-poll on [`IDLE_PARK`], so a missed wake costs bounded
/// latency, never progress.
struct Parker {
    /// Advisory "inside park": wake targeting scans this.
    idle: AtomicBool,
    /// A pending unpark not yet consumed by a park.
    notified: AtomicBool,
    mutex: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
}

impl Parker {
    fn new() -> Self {
        Parker {
            idle: AtomicBool::new(false),
            notified: AtomicBool::new(false),
            mutex: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
        }
    }

    fn park(&self, timeout: Duration) {
        if self.notified.swap(false, Ordering::SeqCst) {
            return;
        }
        self.idle.store(true, Ordering::SeqCst);
        {
            let guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the lock: an unpark between the first check
            // and here has set `notified` and must not be slept through.
            if !self.notified.swap(false, Ordering::SeqCst) {
                let _ = self
                    .cv
                    .wait_timeout(guard, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                self.notified.store(false, Ordering::SeqCst);
            }
        }
        self.idle.store(false, Ordering::SeqCst);
    }

    fn unpark(&self) {
        self.notified.store(true, Ordering::SeqCst);
        if self.idle.load(Ordering::SeqCst) {
            let _guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_one();
        }
    }
}

/// Per-worker scheduler counters (low-cardinality: one set per worker
/// thread, never per task). Snapshotted into [`WorkerSchedStats`] for
/// reports and the bench artifact.
struct WorkerStats {
    tasks_run: AtomicU64,
    steals_attempted: AtomicU64,
    steals_succeeded: AtomicU64,
    queue_high_water: AtomicU64,
    timer_fires: AtomicU64,
    unparks: AtomicU64,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            tasks_run: AtomicU64::new(0),
            steals_attempted: AtomicU64::new(0),
            steals_succeeded: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            timer_fires: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
        }
    }
}

/// One worker's scheduling state: a LIFO slot for the just-woken task, a
/// pair of bounded FIFO local queues split by blocking capability, a
/// targeted parker and the scheduler counters. Each `WorkerQueue` lives
/// in its own cache line(s); siblings touch it only to push affine work
/// or to steal.
struct WorkerQueue {
    /// The task most recently woken *by this worker* — usually the
    /// consumer of a message it just produced. Running it next keeps the
    /// producer→consumer handoff on warm caches.
    lifo: Mutex<Option<Arc<Task>>>,
    /// Non-blocking local tasks (service dispatch, pacers, watchers).
    nb_local: Mutex<VecDeque<Arc<Task>>>,
    /// Blocking-capable module tasks (runnable only within `help_depth`).
    md_local: Mutex<VecDeque<Arc<Task>>>,
    parker: Parker,
    /// Owner-only xorshift state for randomized steal victim selection.
    steal_seed: AtomicU64,
    stats: WorkerStats,
}

impl WorkerQueue {
    fn new(seed: u64) -> Self {
        WorkerQueue {
            lifo: Mutex::new(None),
            nb_local: Mutex::new(VecDeque::new()),
            md_local: Mutex::new(VecDeque::new()),
            parker: Parker::new(),
            steal_seed: AtomicU64::new(seed | 1),
            stats: WorkerStats::new(),
        }
    }
}

thread_local! {
    /// Index of the current thread in its reactor's worker pool;
    /// `usize::MAX` on non-worker threads (timer, I/O, deploy).
    static WORKER_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Deferred work on the timer wheel.
enum TimerEntry {
    /// Wake a task at the deadline.
    Wake(usize),
    /// Deliver already-computed messages at the deadline (timer-deferred
    /// modeled service cost: the replies exist, the latency is modeled by
    /// the wheel instead of a sleeping worker).
    Deliver {
        pipe: Arc<PipeRt>,
        from_device: String,
        msgs: Vec<WireMessage>,
    },
}

/// A coalescing timer wheel, sharded per worker: a pipeline's deadlines
/// (pacer ticks, watcher sweeps, deferred modeled costs) land in its home
/// worker's shard, so 10k pipelines arming recurring ticks lock 1/Nth of
/// the wheel instead of serializing on one mutex. One thread still serves
/// every shard: it sleeps towards the earliest armed tick — maintained as
/// an atomic lower bound with `fetch_min` — and fires everything due
/// across all shards in one sweep. Entries due on the same tick share one
/// wakeup, and recurring-tick dedup lives in [`Rearm`] exactly as before.
/// One timer-wheel shard: due tick → entries, padded to its own line.
type WheelShard = CachePadded<std::sync::Mutex<std::collections::BTreeMap<u64, Vec<TimerEntry>>>>;

struct TimerWheel {
    granularity_ns: u64,
    origin: Instant,
    shards: Vec<WheelShard>,
    /// Lower bound on the earliest armed tick across all shards
    /// (`u64::MAX` when the bound is unknown or nothing is armed).
    earliest: AtomicU64,
    sleep_mutex: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
}

impl TimerWheel {
    fn new(granularity: Duration, shards: usize) -> Self {
        TimerWheel {
            granularity_ns: (granularity.as_nanos() as u64).max(1),
            origin: Instant::now(),
            shards: (0..shards.max(1))
                .map(|_| CachePadded(std::sync::Mutex::new(std::collections::BTreeMap::new())))
                .collect(),
            earliest: AtomicU64::new(u64::MAX),
            sleep_mutex: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
        }
    }

    fn schedule(&self, shard: usize, at: Instant, entry: TimerEntry) {
        let ns = at.saturating_duration_since(self.origin).as_nanos() as u64;
        let tick = ns.div_ceil(self.granularity_ns);
        {
            let shard = &self.shards[shard % self.shards.len()];
            let mut slots = shard.lock().unwrap_or_else(|e| e.into_inner());
            slots.entry(tick).or_default().push(entry);
        }
        if self.earliest.fetch_min(tick, Ordering::SeqCst) > tick {
            // The wheel thread may be sleeping towards a later deadline.
            // Taking the sleep mutex orders this notify against its
            // earliest-recheck-then-wait, so the wake cannot be lost.
            let _guard = self.sleep_mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    fn kick(&self) {
        let _guard = self.sleep_mutex.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    /// Blocks until at least one entry is due (or shutdown), then returns
    /// everything due right now, grouped as `(shard, entries)`.
    fn next_due(&self, stop: &AtomicBool) -> Vec<(usize, Vec<TimerEntry>)> {
        loop {
            if stop.load(Ordering::SeqCst) {
                return Vec::new();
            }
            let now_ns = self.origin.elapsed().as_nanos() as u64;
            let now_tick = now_ns / self.granularity_ns;
            let mut due = Vec::new();
            let mut next_tick = u64::MAX;
            if self.earliest.load(Ordering::SeqCst) <= now_tick {
                // Claim the sweep. A schedule() racing in with an earlier
                // deadline fetch_mins the bound back down and re-notifies.
                self.earliest.store(u64::MAX, Ordering::SeqCst);
                for (i, shard) in self.shards.iter().enumerate() {
                    let mut slots = shard.lock().unwrap_or_else(|e| e.into_inner());
                    let mut fired = Vec::new();
                    while let Some((&tick, _)) = slots.first_key_value() {
                        if tick > now_tick {
                            break;
                        }
                        if let Some((_, mut entries)) = slots.pop_first() {
                            fired.append(&mut entries);
                        }
                    }
                    if let Some((&tick, _)) = slots.first_key_value() {
                        next_tick = next_tick.min(tick);
                    }
                    if !fired.is_empty() {
                        due.push((i, fired));
                    }
                }
                self.earliest.fetch_min(next_tick, Ordering::SeqCst);
            } else {
                next_tick = self.earliest.load(Ordering::SeqCst);
            }
            if !due.is_empty() {
                return due;
            }
            let wait = if next_tick == u64::MAX {
                // Nothing scheduled: park until the next schedule() kicks.
                Duration::from_millis(50)
            } else {
                let target_ns = next_tick * self.granularity_ns;
                Duration::from_nanos(target_ns.saturating_sub(now_ns).max(1))
            };
            let guard = self.sleep_mutex.lock().unwrap_or_else(|e| e.into_inner());
            // Recheck under the sleep mutex: a schedule() that lowered the
            // bound after `next_tick` was computed notified while nobody
            // waited; sleeping `wait` here would overshoot its deadline.
            if self.earliest.load(Ordering::SeqCst) < next_tick {
                continue;
            }
            let _ = self
                .cv
                .wait_timeout(guard, wait)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A TCP ingress endpoint owned by the reactor's single I/O thread.
struct IoEndpoint {
    pipe: Arc<PipeRt>,
    endpoint: PollEndpoint,
}

/// Per-pipeline runtime registration: the pipeline's shared state, its
/// home worker (the deploy-time affinity hint) and the channel→task
/// notify map.
///
/// The notify map is *frozen* at the end of `add_pipeline` into an
/// immutable snapshot that every send reads with no lock and no
/// allocation — the per-send `RwLock` + `channel.to_string()` of the
/// previous design was the hottest shared state in the reactor. During
/// deploy (module `init` runs inline and may make service calls) lookups
/// fall back to the mutex-guarded staging map that `map_channel` fills.
struct PipeRt {
    /// Home worker for every task of this pipeline, so its module steps,
    /// service dispatch and watcher ticks tend to stay on one core (warm
    /// caches, no cross-core wake ping-pong).
    home: usize,
    shared: Arc<Shared>,
    notify: std::sync::OnceLock<HashMap<String, Arc<Task>>>,
    staging: Mutex<HashMap<String, Arc<Task>>>,
}

impl PipeRt {
    fn task_for(&self, channel: &str) -> Option<Arc<Task>> {
        if let Some(map) = self.notify.get() {
            return map.get(channel).cloned();
        }
        self.staging.lock().get(channel).cloned()
    }

    fn freeze(&self) {
        let staged = std::mem::take(&mut *self.staging.lock());
        let _ = self.notify.set(staged);
    }
}

/// Shared reactor core: task table, ready queues, timer wheel, wake map.
/// Index of the calling thread in `workers`, or `None` for non-worker
/// threads (timer, I/O, the deploying thread).
fn current_worker(workers: usize) -> Option<usize> {
    let id = WORKER_ID.with(|c| c.get());
    (id < workers).then_some(id)
}

struct Core {
    cfg: ReactorConfig,
    /// Task table for cold-path lookup by id (timer wakes, finalize).
    /// Hot paths carry `Arc<Task>` through the queues and never touch it.
    tasks: RwLock<Vec<Arc<Task>>>,
    /// Per-worker scheduling state: LIFO slot, bounded local queues,
    /// targeted parker, steal seed, counters.
    workers: Vec<CachePadded<WorkerQueue>>,
    /// Global overflow/injection queues on the lock-free MPMC channel
    /// layer: non-blocking tasks (always helpable) and blocking-capable
    /// module tasks. Local-queue spill lands here, as do pushes when the
    /// reactor has a single worker's worth of backlog everywhere.
    nb_ready: (Sender<Arc<Task>>, Receiver<Arc<Task>>),
    mod_ready: (Sender<Arc<Task>>, Receiver<Arc<Task>>),
    timers: TimerWheel,
    /// Per-pipeline runtime registrations, indexed by pipeline id.
    pipelines: RwLock<Vec<Arc<PipeRt>>>,
    stop: AtomicBool,
}

impl Core {
    fn current_worker(&self) -> Option<usize> {
        current_worker(self.workers.len())
    }

    fn wake_task(&self, id: usize) {
        let task = {
            let tasks = self.tasks.read();
            match tasks.get(id) {
                Some(t) => Arc::clone(t),
                None => return,
            }
        };
        self.wake(&task);
    }

    fn wake(&self, task: &Arc<Task>) {
        loop {
            match task.state.load(Ordering::SeqCst) {
                IDLE => {
                    if task
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        self.push_ready(task);
                        return;
                    }
                }
                RUNNING => {
                    if task
                        .state
                        .compare_exchange(RUNNING, DIRTY, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // QUEUED or DIRTY: a wakeup is already pending.
                _ => return,
            }
        }
    }

    /// Queues a freshly-woken task. A worker waking a task claims its own
    /// LIFO slot — the woken task is usually the consumer of a message the
    /// worker just produced, and running it next keeps the handoff on warm
    /// caches. Off-worker wakes (timer, I/O, deploy) go to the task's home
    /// worker so a pipeline's steps stay on one core.
    fn push_ready(&self, task: &Arc<Task>) {
        if let Some(wid) = self.current_worker() {
            let displaced = self.workers[wid].lifo.lock().replace(Arc::clone(task));
            if let Some(prev) = displaced {
                self.push_local(wid, prev);
            }
            return;
        }
        let home = task.home % self.workers.len();
        self.push_local(home, Arc::clone(task));
    }

    /// Requeues a task that stayed runnable (quantum expiry or a DIRTY
    /// wake observed at run end). Skips the LIFO slot on purpose: a task
    /// that keeps itself runnable must round-robin with its queue
    /// siblings, or it would monopolize its worker through the slot.
    fn requeue(&self, task: &Arc<Task>) {
        let wid = self
            .current_worker()
            .unwrap_or(task.home % self.workers.len());
        self.push_local(wid, Arc::clone(task));
    }

    /// Pushes onto a worker's bounded local queue, spilling to the global
    /// queues when full, and wakes at most one parked worker.
    fn push_local(&self, wid: usize, task: Arc<Task>) {
        let wq = &self.workers[wid];
        let blocking = task.blocking;
        let queue = if blocking { &wq.md_local } else { &wq.nb_local };
        let overflow = {
            let mut q = queue.lock();
            if q.len() < LOCAL_QUEUE_CAP {
                q.push_back(task);
                let depth = q.len() as u64;
                drop(q);
                wq.stats
                    .queue_high_water
                    .fetch_max(depth, Ordering::Relaxed);
                None
            } else {
                Some(task)
            }
        };
        match overflow {
            None => self.notify_push(wid),
            Some(task) => {
                // Spill: the overflow becomes visible to every worker,
                // which doubles as a pressure valve for a hot home.
                let global = if blocking {
                    &self.mod_ready.0
                } else {
                    &self.nb_ready.0
                };
                let _ = global.send(task);
                self.notify_any_idle();
            }
        }
    }

    /// Wakes the queue's owner if it is parked; otherwise, when stealing
    /// is on, wakes one parked sibling to come steal. Never a broadcast.
    fn notify_push(&self, wid: usize) {
        let wq = &self.workers[wid];
        if wq.parker.idle.load(Ordering::SeqCst) {
            wq.stats.unparks.fetch_add(1, Ordering::Relaxed);
            wq.parker.unpark();
            return;
        }
        if self.cfg.steal {
            self.notify_any_idle();
        }
    }

    fn notify_any_idle(&self) {
        for wq in &self.workers {
            if wq.parker.idle.load(Ordering::SeqCst) {
                wq.stats.unparks.fetch_add(1, Ordering::Relaxed);
                wq.parker.unpark();
                return;
            }
        }
    }

    fn wake_channel(&self, pipe: &PipeRt, channel: &str) {
        if let Some(task) = pipe.task_for(channel) {
            self.wake(&task);
        }
    }

    /// Sends through the pipeline's router and wakes the channel's task.
    fn send_and_wake(
        &self,
        pipe: &PipeRt,
        from_device: &str,
        msg: WireMessage,
    ) -> Result<(), PipelineError> {
        let chan = msg.channel.clone();
        pipe.shared.router.send_from(from_device, msg)?;
        self.wake_channel(pipe, &chan);
        Ok(())
    }

    /// Pops and runs one ready task, if any is runnable at `depth`:
    /// own LIFO slot, then own local queues, then the global queues, then
    /// a randomized steal sweep over siblings. Non-blocking tasks are
    /// always runnable; module tasks only while the helping depth stays
    /// within the configured bound.
    fn try_run_one(&self, depth: usize) -> bool {
        let help_mods = depth <= self.cfg.help_depth;
        let me = self.current_worker();
        if let Some(wid) = me {
            if let Some(task) = self.pop_local(wid, help_mods) {
                self.run_queued(&task, depth);
                return true;
            }
        }
        if let Ok(task) = self.nb_ready.1.try_recv() {
            self.run_queued(&task, depth);
            return true;
        }
        if help_mods {
            if let Ok(task) = self.mod_ready.1.try_recv() {
                self.run_queued(&task, depth);
                return true;
            }
        }
        // Local and global queues are dry: steal. Non-worker threads
        // (deploy-time init helping its own service calls) always sweep —
        // the work they are waiting on may sit in a worker's local queue.
        let may_steal = me.is_none() || (self.cfg.steal && self.workers.len() > 1);
        if may_steal {
            if let Some(task) = self.try_steal(me, help_mods) {
                self.run_queued(&task, depth);
                return true;
            }
        }
        false
    }

    fn pop_local(&self, wid: usize, help_mods: bool) -> Option<Arc<Task>> {
        let wq = &self.workers[wid];
        {
            let mut lifo = wq.lifo.lock();
            // Peek-gate: a blocking task in the slot may only be popped
            // within the helping depth bound; otherwise it stays for the
            // owner's depth-0 loop (or a shallower stealer).
            if lifo.as_ref().is_some_and(|t| !t.blocking || help_mods) {
                return lifo.take();
            }
        }
        if let Some(task) = wq.nb_local.lock().pop_front() {
            return Some(task);
        }
        if help_mods {
            if let Some(task) = wq.md_local.lock().pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// One randomized sweep over sibling queues. Victim order inside one
    /// victim: its FIFO backlog first (oldest, coldest — cheap to move),
    /// its LIFO slot last (warmest; stolen only when nothing else runs).
    /// `try_lock` everywhere: contending with a busy owner is exactly the
    /// case where stealing is pointless.
    fn try_steal(&self, me: Option<usize>, help_mods: bool) -> Option<Arc<Task>> {
        let n = self.workers.len();
        let start = match me {
            Some(wid) => {
                let wq = &self.workers[wid];
                wq.stats.steals_attempted.fetch_add(1, Ordering::Relaxed);
                // Owner-only xorshift: no shared RNG state, no allocation.
                let mut s = wq.steal_seed.load(Ordering::Relaxed);
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                wq.steal_seed.store(s, Ordering::Relaxed);
                (s as usize) % n
            }
            None => 0,
        };
        let mut found = None;
        'sweep: for i in 0..n {
            let v = (start + i) % n;
            if Some(v) == me {
                continue;
            }
            let wq = &self.workers[v];
            if let Some(mut q) = wq.nb_local.try_lock() {
                if let Some(task) = q.pop_front() {
                    found = Some(task);
                    break 'sweep;
                }
            }
            if help_mods {
                if let Some(mut q) = wq.md_local.try_lock() {
                    if let Some(task) = q.pop_front() {
                        found = Some(task);
                        break 'sweep;
                    }
                }
            }
            if let Some(mut slot) = wq.lifo.try_lock() {
                if slot.as_ref().is_some_and(|t| !t.blocking || help_mods) {
                    found = slot.take();
                    break 'sweep;
                }
            }
        }
        if found.is_some() {
            if let Some(wid) = me {
                self.workers[wid]
                    .stats
                    .steals_succeeded
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    fn run_queued(&self, task: &Arc<Task>, depth: usize) {
        if let Some(wid) = self.current_worker() {
            self.workers[wid]
                .stats
                .tasks_run
                .fetch_add(1, Ordering::Relaxed);
        }
        task.state.store(RUNNING, Ordering::SeqCst);
        let more = {
            let mut runner = task.runner.lock();
            runner.run(self, depth)
        };
        if more {
            task.state.store(QUEUED, Ordering::SeqCst);
            self.requeue(task);
            return;
        }
        if task
            .state
            .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            // A wake arrived mid-run (DIRTY): requeue.
            task.state.store(QUEUED, Ordering::SeqCst);
            self.requeue(task);
        }
    }

    fn worker_loop(&self, wid: usize) {
        WORKER_ID.with(|c| c.set(wid));
        while !self.stop.load(Ordering::SeqCst) {
            if self.try_run_one(0) {
                continue;
            }
            self.workers[wid].parker.park(IDLE_PARK);
        }
    }

    fn timer_loop(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            for (shard, entries) in self.timers.next_due(&self.stop) {
                self.workers[shard % self.workers.len()]
                    .stats
                    .timer_fires
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                for entry in entries {
                    match entry {
                        TimerEntry::Wake(id) => self.wake_task(id),
                        TimerEntry::Deliver {
                            pipe,
                            from_device,
                            msgs,
                        } => {
                            for msg in msgs {
                                let _ = self.send_and_wake(&pipe, &from_device, msg);
                            }
                        }
                    }
                }
            }
        }
    }

    fn io_loop(&self, registry: &Receiver<IoEndpoint>) {
        let mut endpoints: Vec<IoEndpoint> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            while let Ok(ep) = registry.try_recv() {
                endpoints.push(ep);
            }
            let mut delivered = 0usize;
            for ep in &mut endpoints {
                let pipe = Arc::clone(&ep.pipe);
                // Budgeted poll: one hot endpoint cannot pin the shared
                // I/O thread; frames wake the pipeline's home worker.
                delivered += ep.endpoint.poll_budget(IO_POLL_BUDGET, &mut |msg| {
                    let chan = msg.channel.clone();
                    if let Ok(sender) = pipe.shared.hub.connect(&chan) {
                        if sender.send(msg).is_ok() {
                            self.wake_channel(&pipe, &chan);
                        }
                    }
                });
            }
            if delivered == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Helps run other tasks until `deadline` (modeled link/backoff delays:
    /// the wait is real wall time, but the worker stays productive).
    fn help_until(&self, depth: usize, deadline: Instant) {
        loop {
            let now = Instant::now();
            if now >= deadline || self.stop.load(Ordering::SeqCst) {
                return;
            }
            if !self.try_run_one(depth + 1) {
                std::thread::sleep((deadline - now).min(HELP_PARK));
            }
        }
    }

    /// Snapshot of the per-worker scheduler counters.
    fn scheduler_stats(&self) -> Vec<crate::metrics::WorkerSchedStats> {
        self.workers
            .iter()
            .enumerate()
            .map(|(worker, wq)| crate::metrics::WorkerSchedStats {
                worker,
                tasks_run: wq.stats.tasks_run.load(Ordering::Relaxed),
                steals_attempted: wq.stats.steals_attempted.load(Ordering::Relaxed),
                steals_succeeded: wq.stats.steals_succeeded.load(Ordering::Relaxed),
                queue_high_water: wq.stats.queue_high_water.load(Ordering::Relaxed),
                timer_fires: wq.stats.timer_fires.load(Ordering::Relaxed),
                unparks: wq.stats.unparks.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Reactor-local service channel: pipeline-scoped so thousands of
/// pipelines binding the same (device, service) pair on their private
/// hubs stay disjoint in the reactor's global wake map.
fn rsvc_chan(pipeline: &str, device: &str, service: &str) -> String {
    format!("svc/{pipeline}/{device}/{service}")
}

/// Recurring-timer dedup: tracks the deadline already armed for a task so
/// message-driven wakes don't flood the wheel with duplicate entries. The
/// shard is the task's home worker: a pipeline's recurring ticks lock only
/// its own wheel shard.
struct Rearm {
    id: usize,
    shard: usize,
    armed_for: Option<Instant>,
}

impl Rearm {
    fn new(id: usize, shard: usize) -> Self {
        Rearm {
            id,
            shard,
            armed_for: None,
        }
    }

    fn ensure(&mut self, core: &Core, at: Instant) {
        if self.armed_for != Some(at) {
            core.timers
                .schedule(self.shard, at, TimerEntry::Wake(self.id));
            self.armed_for = Some(at);
        }
    }
}

/// Per-module context state that survives across scheduling quanta.
struct CtxState {
    header: Header,
    /// Fence epoch of the event being processed, stamped onto outputs.
    epoch: u64,
    corr: u64,
    reply_rx: InprocReceiver,
    /// Last successful response per service, in wire form (see `LocalCtx`).
    lkg: HashMap<String, bytes::Bytes>,
    /// Deterministic per-module retry jitter stream.
    jitter: SeededJitter,
}

/// The [`ModuleCtx`] handed to module handlers on the reactor. Mirrors the
/// threaded `LocalCtx` except that every wait — service replies, modeled
/// link transfers, retry backoffs — helps run other ready tasks instead of
/// parking the worker.
struct ReactorCtx<'a> {
    core: &'a Core,
    depth: usize,
    pipe: &'a Arc<PipeRt>,
    pipeline: &'a str,
    shared: &'a Arc<Shared>,
    wiring: &'a ModuleWiring,
    st: &'a mut CtxState,
}

impl ReactorCtx<'_> {
    fn store(&self) -> &Arc<FrameStore> {
        self.shared
            .stores
            .get(&self.wiring.device)
            .expect("device store exists")
    }

    /// Emulates a modeled cost by helping until the scaled deadline — the
    /// wall-clock wait is identical to the threaded runtime's sleep, but
    /// the worker keeps running other pipelines' tasks meanwhile.
    fn emulate(&mut self, modeled: Duration) {
        let scale = self.shared.config.time_scale;
        if scale > 0.0 {
            self.core
                .help_until(self.depth, Instant::now() + modeled.mul_f64(scale));
        }
    }

    /// Checks one inbound reply against the outstanding correlation id.
    /// `None` = stale response to a timed-out attempt; skip it.
    fn check_reply(
        &mut self,
        msg: WireMessage,
        corr_id: u64,
        remote: bool,
        service: &str,
    ) -> Option<Result<(ServiceResponse, bytes::Bytes), PipelineError>> {
        if msg.kind != MessageKind::Response || msg.corr_id != corr_id {
            return None;
        }
        if remote {
            self.emulate(Duration::from_micros(
                2_500 + msg.payload.len() as u64 * 8 / 100,
            ));
        }
        let resp = match ServiceResponse::decode(&msg.payload) {
            Ok(resp) => resp,
            Err(e) => return Some(Err(e)),
        };
        // Executors answer failures with a typed error payload.
        if let Payload::Error(reason) = &resp.payload {
            return Some(Err(PipelineError::Service {
                service: service.to_string(),
                reason: reason.clone(),
            }));
        }
        Some(Ok((resp, msg.payload)))
    }

    /// One request/response exchange, bounded by the per-call deadline.
    /// The wait helps run other ready tasks; service tasks are always
    /// helpable, so the reply stays reachable even on one worker.
    fn attempt_service_call(
        &mut self,
        service: &str,
        channel: &str,
        remote: bool,
        bytes: bytes::Bytes,
    ) -> Result<(ServiceResponse, bytes::Bytes), PipelineError> {
        if remote {
            // Emulated request transfer (~wifi: 2.5ms + 100Mbit/s).
            self.emulate(Duration::from_micros(2_500 + bytes.len() as u64 * 8 / 100));
        }
        self.st.corr += 1;
        let corr_id = self.st.corr;
        self.core.send_and_wake(
            self.pipe,
            &self.wiring.device,
            WireMessage::request(
                channel.to_string(),
                reply_chan(self.pipeline, &self.wiring.name),
                corr_id,
                bytes,
            ),
        )?;
        let started = Instant::now();
        let deadline = started + self.shared.config.resilience.service_call_timeout;
        loop {
            // Drain anything already delivered.
            while let Ok(msg) = self.st.reply_rx.try_recv() {
                if let Some(result) = self.check_reply(msg, corr_id, remote, service) {
                    return result;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PipelineError::Timeout {
                    service: service.to_string(),
                    elapsed: started.elapsed(),
                });
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                return Err(PipelineError::Shutdown);
            }
            if !self.core.try_run_one(self.depth + 1) {
                // Nothing helpable right now: park briefly on the reply
                // channel itself, so a reply landing mid-park wakes us.
                let wait = (deadline - now).min(HELP_PARK);
                if let Ok(msg) = self.st.reply_rx.recv_timeout(wait) {
                    if let Some(result) = self.check_reply(msg, corr_id, remote, service) {
                        return result;
                    }
                }
            }
        }
    }

    fn breaker_allows(&mut self, service: &str) -> bool {
        let now_ns = self.shared.now_ns();
        let mut breakers = self.shared.breakers.lock();
        breakers
            .entry(service.to_string())
            .or_insert_with(|| self.shared.config.resilience.make_breaker())
            .allow(now_ns)
    }

    fn breaker_record(&mut self, service: &str, success: bool) {
        let now_ns = self.shared.now_ns();
        let mut breakers = self.shared.breakers.lock();
        let breaker = breakers
            .entry(service.to_string())
            .or_insert_with(|| self.shared.config.resilience.make_breaker());
        if success {
            breaker.record_success();
        } else {
            breaker.record_failure(now_ns);
        }
    }

    /// Applies the degradation policy once a call has been abandoned.
    fn degrade(
        &mut self,
        service: &str,
        err: PipelineError,
    ) -> Result<ServiceResponse, PipelineError> {
        if self.shared.config.resilience.degradation == DegradationPolicy::LastKnownGood {
            if let Some(cached) = self.st.lkg.get(service) {
                if let Ok(resp) = ServiceResponse::decode(cached) {
                    return Ok(resp);
                }
            }
        }
        Err(err)
    }

    /// Error-path credit return: the frame died in this module, so a
    /// Control message hands its credit back to the pacer.
    fn send_fault(&mut self) {
        let _ = self.core.send_and_wake(
            self.pipe,
            &self.wiring.device,
            WireMessage {
                kind: MessageKind::Control,
                channel: fc_chan(self.pipeline),
                reply_to: String::new(),
                corr_id: 0,
                seq: self.st.header.frame_seq,
                timestamp_ns: self.st.header.capture_ts_ns,
                epoch: self.st.epoch,
                payload: bytes::Bytes::new(),
            },
        );
    }
}

impl ModuleCtx for ReactorCtx<'_> {
    fn call_service(
        &mut self,
        service: &str,
        mut request: ServiceRequest,
    ) -> Result<ServiceResponse, PipelineError> {
        let (channel, remote) = self.wiring.services.get(service).cloned().ok_or_else(|| {
            PipelineError::ServiceUnavailable {
                module: self.wiring.name.clone(),
                service: service.to_string(),
            }
        })?;
        let resilience = self.shared.config.resilience.clone();
        // Circuit breaker gate: fast-fail while the breaker is open.
        if resilience.breaker_enabled() && !self.breaker_allows(service) {
            return self.degrade(
                service,
                PipelineError::CircuitOpen {
                    service: service.to_string(),
                },
            );
        }
        // Frame references cannot leave their device: encode for remote
        // calls via the store's transcoding cache (at most once per
        // (frame, quality); see LocalCtx for the rationale).
        if remote {
            if let Payload::FrameRef(id) = request.payload {
                let encoded = self.store().encoded(id, self.shared.effective_quality())?;
                request.payload = Payload::EncodedFrame(encoded);
            }
        }
        let mut bytes = request.encode();
        let max_attempts = resilience.retry.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            // Attempts share the serialized request by refcount; the final
            // attempt moves it instead of cloning.
            let attempt_bytes = if attempt >= max_attempts {
                std::mem::take(&mut bytes)
            } else {
                bytes.clone()
            };
            match self.attempt_service_call(service, &channel, remote, attempt_bytes) {
                Ok((resp, raw)) => {
                    if resilience.breaker_enabled() {
                        self.breaker_record(service, true);
                    }
                    if resilience.degradation == DegradationPolicy::LastKnownGood {
                        self.st.lkg.insert(service.to_string(), raw);
                    }
                    return Ok(resp);
                }
                Err(PipelineError::Shutdown) => return Err(PipelineError::Shutdown),
                Err(e) => {
                    if resilience.breaker_enabled() {
                        self.breaker_record(service, false);
                    }
                    if attempt >= max_attempts {
                        return self.degrade(service, e);
                    }
                    let backoff = resilience.retry.backoff(attempt, &mut self.st.jitter);
                    if !backoff.is_zero() {
                        // Backoff by helping, not by occupying the worker.
                        self.core.help_until(self.depth, Instant::now() + backoff);
                    }
                    if self.shared.stop.load(Ordering::SeqCst) {
                        return Err(PipelineError::Shutdown);
                    }
                }
            }
        }
    }

    fn call_module(&mut self, target: &str, mut payload: Payload) -> Result<(), PipelineError> {
        let (channel, cross_device) = self.wiring.nexts.get(target).cloned().ok_or_else(|| {
            PipelineError::Validation(format!(
                "module {:?} has no edge to {target:?}",
                self.wiring.name
            ))
        })?;
        if cross_device {
            if let Payload::FrameRef(id) = payload {
                let encoded = self.store().encoded(id, self.shared.effective_quality())?;
                payload = Payload::EncodedFrame(encoded);
            }
            let bytes = payload.size_hint() as u64;
            self.emulate(Duration::from_micros(2_500 + bytes * 8 / 100));
        }
        self.core.send_and_wake(
            self.pipe,
            &self.wiring.device,
            WireMessage::data(
                channel.clone(),
                self.st.header.frame_seq,
                self.st.header.capture_ts_ns,
                payload.encode(),
            )
            .with_epoch(self.st.epoch),
        )?;
        Ok(())
    }

    fn signal_source(&mut self) -> Result<(), PipelineError> {
        self.core.send_and_wake(
            self.pipe,
            &self.wiring.device,
            WireMessage {
                kind: MessageKind::Signal,
                channel: fc_chan(self.pipeline),
                reply_to: String::new(),
                corr_id: 0,
                seq: self.st.header.frame_seq,
                timestamp_ns: self.st.header.capture_ts_ns,
                epoch: self.st.epoch,
                payload: bytes::Bytes::new(),
            },
        )?;
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.shared.now_ns()
    }

    fn module_name(&self) -> &str {
        &self.wiring.name
    }

    fn device_name(&self) -> &str {
        &self.wiring.device
    }

    fn frame_store(&self) -> &FrameStore {
        self.shared
            .stores
            .get(&self.wiring.device)
            .expect("device store exists")
    }

    fn header(&self) -> Header {
        self.st.header
    }

    fn set_header(&mut self, header: Header) {
        self.st.header = header;
    }

    fn log(&mut self, text: &str) {
        self.shared
            .logs
            .lock()
            .push(format!("{}: {text}", self.wiring.name));
    }
}

/// Runs one module instance as a blocking-capable task: drains up to
/// `module_quantum` inbox messages per run, replicating the threaded
/// `module_loop` (decode, supervision, checkpointing, error-path credit
/// return) with a [`ReactorCtx`].
struct ModuleRunner {
    shared: Arc<Shared>,
    wiring: Arc<ModuleWiring>,
    pipe: Arc<PipeRt>,
    pipeline: String,
    inbox: InprocReceiver,
    instance: Box<dyn Module>,
    factory: ModuleFactory,
    st: CtxState,
    last_checkpoint: Instant,
    rearm: Rearm,
}

impl TaskRunner for ModuleRunner {
    fn run(&mut self, core: &Core, depth: usize) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        // Periodic checkpoint, self-armed on the timer wheel so it fires
        // even while the inbox is quiet.
        if let Some(period) = self.shared.config.checkpoint_period {
            if self.last_checkpoint.elapsed() >= period {
                self.last_checkpoint = Instant::now();
                if let Some(snap) = self.instance.snapshot() {
                    self.shared
                        .checkpoints
                        .lock()
                        .insert(self.wiring.name.clone(), snap);
                }
            }
            let at = self.last_checkpoint + period;
            self.rearm.ensure(core, at);
        }
        let quantum = core.cfg.module_quantum.max(1);
        let ModuleRunner {
            shared,
            wiring,
            pipe,
            pipeline,
            inbox,
            instance,
            factory,
            st,
            ..
        } = self;
        let mut ctx = ReactorCtx {
            core,
            depth,
            pipe,
            pipeline,
            shared,
            wiring,
            st,
        };
        let mut processed = 0;
        while processed < quantum {
            if shared.stop.load(Ordering::SeqCst) {
                return false;
            }
            let msg = match inbox.try_recv() {
                Ok(m) => m,
                Err(_) => break,
            };
            processed += 1;
            ctx.st.epoch = msg.epoch;
            let event = match msg.kind {
                MessageKind::Signal if wiring.is_source => {
                    ctx.st.header = Header {
                        frame_seq: msg.seq,
                        capture_ts_ns: msg.timestamp_ns,
                    };
                    Event::FrameTick {
                        t_ns: msg.timestamp_ns,
                    }
                }
                MessageKind::Data => {
                    let payload = match Payload::decode(&msg.payload) {
                        Ok(Payload::EncodedFrame(bytes)) => match codec::decode(&bytes) {
                            Ok(frame) => Payload::FrameRef(ctx.store().insert(frame)),
                            Err(e) => {
                                shared
                                    .errors
                                    .lock()
                                    .push(format!("{}: frame decode failed: {e}", wiring.name));
                                continue;
                            }
                        },
                        Ok(p) => p,
                        Err(e) => {
                            shared
                                .errors
                                .lock()
                                .push(format!("{}: payload decode failed: {e}", wiring.name));
                            continue;
                        }
                    };
                    ctx.st.header = Header {
                        frame_seq: msg.seq,
                        capture_ts_ns: msg.timestamp_ns,
                    };
                    Event::Message(Message::new(ctx.st.header, payload))
                }
                _ => continue,
            };

            let start = Instant::now();
            let result = match catch_unwind(AssertUnwindSafe(|| instance.on_event(event, &mut ctx)))
            {
                Ok(result) => result,
                Err(panic) => {
                    // Supervision: replace the possibly-poisoned instance
                    // and keep the task alive. The in-flight frame dies and
                    // returns its credit through the error path below.
                    *instance = factory();
                    let _ = catch_unwind(AssertUnwindSafe(|| instance.init(&mut ctx)));
                    if let Some(snap) = shared.checkpoints.lock().get(&wiring.name).cloned() {
                        instance.restore(&snap);
                    }
                    shared.restarts.fetch_add(1, Ordering::Relaxed);
                    Err(PipelineError::Module {
                        module: wiring.name.clone(),
                        reason: format!("panicked: {}", panic_message(panic.as_ref())),
                    })
                }
            };
            let elapsed_ns = start.elapsed().as_nanos() as u64;
            shared.metrics.lock().record_stage(&wiring.name, elapsed_ns);
            if let Err(e) = result {
                // Errors caused by teardown are shutdown artifacts.
                if shared.stop.load(Ordering::SeqCst) {
                    continue;
                }
                shared.errors.lock().push(format!("{}: {e}", wiring.name));
                ctx.send_fault();
            }
        }
        inbox.pending() > 0
    }

    fn finalize(&mut self, _core: &Core) {
        // Final checkpoint at teardown: a graceful drain hands off the
        // freshest recoverable state rather than the last periodic tick.
        if self.shared.config.checkpoint_period.is_some() {
            if let Some(snap) = self.instance.snapshot() {
                self.shared
                    .checkpoints
                    .lock()
                    .insert(self.wiring.name.clone(), snap);
            }
        }
    }
}

/// Runs one (device, service) host as a non-blocking task. Dispatches up
/// to [`SERVICE_BATCH_QUANTUM`] micro-batches per run. Modeled compute
/// costs are timer-deferred: the batch is computed eagerly and its replies
/// ride the wheel, so a slow modeled service never occupies a worker.
struct ServiceRunner {
    shared: Arc<Shared>,
    pipe: Arc<PipeRt>,
    inbox: InprocReceiver,
    image: Arc<dyn Service>,
    device: String,
    speed: f64,
    host: String,
}

impl ServiceRunner {
    fn dispatch(&mut self, core: &Core, msgs: Vec<WireMessage>, queue_depth: u64) {
        let started = Instant::now();
        let batch_len = msgs.len() as u64;
        let store = self.shared.stores.get(&self.device).expect("store");

        // Decode every request up front; failed slots still get a typed
        // error reply below.
        let mut slots: Vec<Result<ServiceRequest, PipelineError>> = msgs
            .iter()
            .map(|m| ServiceRequest::decode(&m.payload))
            .collect();
        let encoded: Vec<(usize, bytes::Bytes)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Ok(req) => match &req.payload {
                    Payload::EncodedFrame(bytes) => Some((i, bytes.clone())),
                    _ => None,
                },
                Err(_) => None,
            })
            .collect();
        if !encoded.is_empty() {
            let frames = codec::decode_batch(encoded.iter().map(|(_, b)| b.as_ref()));
            for ((i, _), result) in encoded.iter().zip(frames) {
                match result {
                    Ok(frame) => {
                        if let Ok(req) = &mut slots[*i] {
                            req.payload = Payload::FrameRef(store.insert(frame));
                        }
                    }
                    Err(e) => {
                        self.shared.errors.lock().push(format!(
                            "service {}: frame decode failed: {e}",
                            self.image.name()
                        ));
                        slots[*i] = Err(PipelineError::Service {
                            service: self.image.name().to_string(),
                            reason: format!("frame decode failed: {e}"),
                        });
                    }
                }
            }
        }

        // Modeled compute cost for the batch: leading request pays the full
        // base, followers the amortised batched base (same accounting as
        // the threaded executor) — but deferred, never slept.
        let mut modeled = Duration::ZERO;
        let mut first = true;
        for (slot, m) in slots.iter().zip(&msgs) {
            if let Ok(req) = slot {
                modeled += self.image.cost(req).for_batch_item(first, m.payload.len());
                first = false;
            }
        }

        // Supervised batch handler (see service_executor_loop).
        let ready: Vec<ServiceRequest> = slots
            .iter()
            .filter_map(|slot| slot.as_ref().ok().cloned())
            .collect();
        let handled: Vec<Result<ServiceResponse, PipelineError>> = if ready.is_empty() {
            Vec::new()
        } else {
            match catch_unwind(AssertUnwindSafe(|| self.image.handle_batch(&ready, store))) {
                Ok(results) => results,
                Err(panic) => {
                    let reason = format!("panicked: {}", panic_message(panic.as_ref()));
                    (0..ready.len())
                        .map(|_| {
                            Err(PipelineError::Service {
                                service: self.image.name().to_string(),
                                reason: reason.clone(),
                            })
                        })
                        .collect()
                }
            }
        };
        let mut handled = handled.into_iter();
        let mut replies: Vec<WireMessage> = Vec::with_capacity(msgs.len());
        for (m, slot) in msgs.iter().zip(slots) {
            let response = match slot {
                Ok(_) => handled.next().unwrap_or_else(|| {
                    Err(PipelineError::Service {
                        service: self.image.name().to_string(),
                        reason: "handle_batch returned too few results".to_string(),
                    })
                }),
                Err(e) => Err(e),
            };
            match response {
                Ok(resp) => replies.push(WireMessage::response_to(m, resp.encode())),
                Err(e) => {
                    self.shared
                        .logs
                        .lock()
                        .push(format!("service {}: {e}", self.image.name()));
                    replies.push(WireMessage::response_to(
                        m,
                        ServiceResponse::new(Payload::Error(e.to_string())).encode(),
                    ));
                }
            }
        }

        // Timer-deferred modeled latency: replies ride the wheel for the
        // scaled cost instead of a worker sleeping it out.
        let scale = self.shared.config.time_scale;
        let deferral = if scale > 0.0 && !modeled.is_zero() {
            Some(modeled.mul_f64(scale / self.speed.max(1e-6)))
        } else {
            None
        };
        match deferral {
            Some(delay) => core.timers.schedule(
                self.pipe.home,
                Instant::now() + delay,
                TimerEntry::Deliver {
                    pipe: Arc::clone(&self.pipe),
                    from_device: self.device.clone(),
                    msgs: replies,
                },
            ),
            None => {
                for msg in replies {
                    let _ = core.send_and_wake(&self.pipe, &self.device, msg);
                }
            }
        }
        // Modeled time counts as busy so utilization metrics keep parity
        // with the threaded executor.
        let busy = started.elapsed() + deferral.unwrap_or_default();
        self.shared.metrics.lock().record_dispatch_batch(
            &self.host,
            busy.as_nanos() as u64,
            queue_depth,
            batch_len,
        );
    }
}

impl TaskRunner for ServiceRunner {
    fn run(&mut self, core: &Core, _depth: usize) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        for _ in 0..SERVICE_BATCH_QUANTUM {
            let msg = loop {
                match self.inbox.try_recv() {
                    Ok(m) if m.kind == MessageKind::Request => break m,
                    Ok(_) => continue,
                    Err(_) => return false,
                }
            };
            let max_batch = self.shared.effective_max_batch(self.image.name());
            // Backlog sampled BEFORE the free drain empties the queue.
            let queue_depth = self.inbox.pending() as u64;
            let mut msgs = vec![msg];
            // Free drain only: no adaptive hold — under reactor scheduling,
            // requests accumulate naturally while this task waits for a
            // worker, which plays the same batching role.
            while msgs.len() < max_batch {
                match self.inbox.try_recv() {
                    Ok(m) if m.kind == MessageKind::Request => msgs.push(m),
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            self.dispatch(core, msgs, queue_depth);
        }
        self.inbox.pending() > 0
    }
}

/// The per-pipeline pacer as a non-blocking task: drains completion
/// signals, expires credit leases, fences dead epochs and emits camera
/// ticks, then re-arms itself on the timer wheel for the next tick.
struct PacerRunner {
    shared: Arc<Shared>,
    pipe: Arc<PipeRt>,
    pipeline: String,
    sources: Vec<String>,
    source_device: String,
    fc_inbox: InprocReceiver,
    pacer: SourcePacer,
    controller: CreditController,
    interval: Duration,
    lease: Option<Duration>,
    track_outstanding: bool,
    outstanding: HashMap<u64, Instant>,
    current_epoch: u64,
    dedup_window: usize,
    dedup_order: VecDeque<u64>,
    dedup_set: HashSet<u64>,
    next_tick: Instant,
    rearm: Rearm,
    finalized: bool,
}

impl TaskRunner for PacerRunner {
    fn run(&mut self, core: &Core, _depth: usize) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        // Epoch bump (confirmed device loss): proactively fault every
        // outstanding admission so credits return immediately.
        let fence = self.shared.fence_epoch.load(Ordering::SeqCst);
        if fence != self.current_epoch {
            self.current_epoch = fence;
            let fenced = self.outstanding.len() as u64;
            for _ in self.outstanding.drain() {
                self.controller.fault();
            }
            if fenced > 0 {
                self.shared.logs.lock().push(format!(
                    "pacer: fenced {fenced} in-flight frame(s) at epoch {}",
                    self.current_epoch
                ));
            }
        }
        // Drain completion signals (identical accounting to pacer_loop).
        while let Ok(msg) = self.fc_inbox.try_recv() {
            if self.dedup_window > 0
                && msg.kind == MessageKind::Signal
                && self.dedup_set.contains(&msg.seq)
            {
                continue;
            }
            let known = !self.track_outstanding || self.outstanding.remove(&msg.seq).is_some();
            let fenced = msg.epoch != self.current_epoch;
            match msg.kind {
                MessageKind::Signal if known && !fenced => {
                    self.controller.complete();
                    if self.dedup_window > 0 {
                        if self.dedup_order.len() == self.dedup_window {
                            if let Some(old) = self.dedup_order.pop_front() {
                                self.dedup_set.remove(&old);
                            }
                        }
                        self.dedup_order.push_back(msg.seq);
                        self.dedup_set.insert(msg.seq);
                    }
                    let now_ns = self.shared.now_ns();
                    let latency = now_ns.saturating_sub(msg.timestamp_ns);
                    self.shared.metrics.lock().record_delivery(now_ns, latency);
                    self.shared.deliveries.fetch_add(1, Ordering::Relaxed);
                }
                MessageKind::Signal if known => self.controller.fault(),
                MessageKind::Control if known => self.controller.fault(),
                _ => {}
            }
        }
        // Expire credit leases (checked once per run, same cadence as the
        // threaded pacer's once-per-tick check).
        if let Some(timeout) = self.lease {
            let now = Instant::now();
            let expired: Vec<u64> = self
                .outstanding
                .iter()
                .filter(|(_, admitted_at)| now.duration_since(**admitted_at) > timeout)
                .map(|(seq, _)| *seq)
                .collect();
            for seq in expired {
                self.outstanding.remove(&seq);
                self.controller.fault();
                self.shared
                    .errors
                    .lock()
                    .push(format!("pacer: credit lease expired for frame {seq}"));
            }
        }
        // Camera ticks due now (catch-up preserves threaded semantics).
        while Instant::now() >= self.next_tick {
            if self.shared.stop.load(Ordering::SeqCst) {
                return false;
            }
            self.pacer.advance();
            self.next_tick += self.interval;
            let stride = self.shared.knobs.admit_stride();
            let sampled_out = stride > 1 && !self.pacer.ticks().is_multiple_of(stride);
            let admitted = !sampled_out && self.controller.try_admit();
            {
                let mut metrics = self.shared.metrics.lock();
                metrics.frames_offered = metrics.frames_offered.saturating_add(1);
                if !admitted {
                    metrics.frames_dropped = metrics.frames_dropped.saturating_add(1);
                }
            }
            if admitted {
                if self.track_outstanding {
                    self.outstanding.insert(self.pacer.ticks(), Instant::now());
                }
                let t_ns = self.shared.now_ns();
                for source in &self.sources {
                    let _ = core.send_and_wake(
                        &self.pipe,
                        &self.source_device,
                        WireMessage {
                            kind: MessageKind::Signal,
                            channel: mod_chan(&self.pipeline, source),
                            reply_to: String::new(),
                            corr_id: 0,
                            seq: self.pacer.ticks(),
                            timestamp_ns: t_ns,
                            epoch: self.current_epoch,
                            payload: bytes::Bytes::new(),
                        },
                    );
                }
            }
        }
        self.rearm.ensure(core, self.next_tick);
        false
    }

    fn finalize(&mut self, _core: &Core) {
        // Final credit accounting (admitted == delivered + faulted +
        // in-flight), exactly once.
        if !self.finalized {
            self.finalized = true;
            let mut metrics = self.shared.metrics.lock();
            metrics.frames_admitted = self.controller.admitted();
            metrics.frames_faulted = self.controller.faulted();
            metrics.in_flight_at_end = self.controller.in_flight();
        }
    }
}

/// The SLO feedback controller as a self-rearming timer task (was a
/// dedicated `slo-<pipeline>` thread).
struct SloRunner {
    shared: Arc<Shared>,
    controller: SloController,
    interval: Duration,
    target_ms: f64,
    next_at: Instant,
    rearm: Rearm,
}

impl TaskRunner for SloRunner {
    fn run(&mut self, core: &Core, _depth: usize) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        if now >= self.next_at {
            self.next_at = now + self.interval;
            let (hist, queue_max) = {
                let metrics = self.shared.metrics.lock();
                let q = metrics
                    .dispatch
                    .values()
                    .map(|d| d.max_queue_depth)
                    .max()
                    .unwrap_or(0);
                (metrics.end_to_end.clone(), q)
            };
            let action = self
                .controller
                .observe(self.shared.now_ns(), &hist, queue_max);
            if action != SloAction::Hold {
                let level = self.controller.level();
                self.shared.knobs.apply(self.controller.settings(), level);
                self.shared
                    .knobs
                    .moves
                    .store(self.controller.moves(), Ordering::Relaxed);
                self.shared
                    .knobs
                    .flaps
                    .store(self.controller.flaps(), Ordering::Relaxed);
                let dir = match action {
                    SloAction::StepDown { .. } => "down",
                    _ => "up",
                };
                self.shared.logs.lock().push(format!(
                    "slo: step {dir} to level {level} \
                     (window p99 {:.1} ms vs target {:.1} ms, {:?})",
                    self.controller.last_window_p99_ns() as f64 / 1e6,
                    self.target_ms,
                    self.controller.settings(),
                ));
            }
        }
        self.rearm.ensure(core, self.next_at);
        false
    }
}

/// One device's heartbeat sender as a self-rearming timer task.
struct HbBeatRunner {
    shared: Arc<Shared>,
    pipe: Arc<PipeRt>,
    device: String,
    channel: String,
    interval: Duration,
    next_at: Instant,
    rearm: Rearm,
}

impl TaskRunner for HbBeatRunner {
    fn run(&mut self, core: &Core, _depth: usize) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        if now >= self.next_at {
            self.next_at = now + self.interval;
            if !self.shared.muted_heartbeats.lock().contains(&self.device) {
                let _ = core.send_and_wake(
                    &self.pipe,
                    &self.device,
                    WireMessage {
                        kind: MessageKind::Control,
                        channel: self.channel.clone(),
                        reply_to: String::new(),
                        corr_id: 0,
                        seq: 0,
                        timestamp_ns: self.shared.now_ns(),
                        epoch: 0,
                        payload: bytes::Bytes::copy_from_slice(self.device.as_bytes()),
                    },
                );
            }
        }
        self.rearm.ensure(core, self.next_at);
        false
    }
}

/// The heartbeat monitor as a task: woken by each beat (channel notify)
/// and by a periodic sweep that walks suspicion to confirmed loss.
struct HbMonitorRunner {
    shared: Arc<Shared>,
    inbox: InprocReceiver,
    confirmed: HashSet<String>,
    sweep: Duration,
    next_at: Instant,
    rearm: Rearm,
}

impl TaskRunner for HbMonitorRunner {
    fn run(&mut self, core: &Core, _depth: usize) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        while let Ok(msg) = self.inbox.try_recv() {
            if msg.kind == MessageKind::Control {
                if let Ok(device) = std::str::from_utf8(&msg.payload) {
                    if let Some(d) = self.shared.detector.lock().as_mut() {
                        d.record_heartbeat(device, self.shared.now_ns());
                    }
                }
            }
        }
        let now_ns = self.shared.now_ns();
        let dead = match self.shared.detector.lock().as_ref() {
            Some(d) => d.dead_devices(now_ns),
            None => Vec::new(),
        };
        for device in dead {
            if self.confirmed.insert(device.clone()) {
                let epoch = self.shared.fence_epoch.fetch_add(1, Ordering::SeqCst) + 1;
                self.shared.logs.lock().push(format!(
                    "monitor: device {device} confirmed dead; fencing epoch {epoch}"
                ));
            }
        }
        let now = Instant::now();
        if now >= self.next_at {
            self.next_at = now + self.sweep;
        }
        self.rearm.ensure(core, self.next_at);
        false
    }
}

/// The telemetry publisher as a self-rearming timer task.
struct TelemetryRunner {
    shared: Arc<Shared>,
    pipeline: String,
    interval: Duration,
    next_at: Instant,
    rearm: Rearm,
}

impl TaskRunner for TelemetryRunner {
    fn run(&mut self, core: &Core, _depth: usize) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        if now >= self.next_at {
            self.next_at = now + self.interval;
            let mut snapshot = {
                let metrics = self.shared.metrics.lock();
                crate::telemetry::TelemetrySnapshot::from_metrics(
                    &self.pipeline,
                    self.shared.now_ns(),
                    &metrics,
                )
            };
            snapshot.slo_level = self.shared.knobs.level.load(Ordering::Relaxed) as u64;
            snapshot.publish(&self.shared.hub);
        }
        self.rearm.ensure(core, self.next_at);
        false
    }
}

/// An event-driven multi-pipeline runtime with a bounded thread count.
///
/// Deploy any number of pipelines with [`ReactorRuntime::add_pipeline`];
/// they all share one worker pool sized to cores, one timer thread and (in
/// TCP mode) one I/O thread. The `Module`/`Service` traits and
/// [`RuntimeConfig`] are exactly those of the threaded runtime.
pub struct ReactorRuntime {
    core: Arc<Core>,
    threads: Vec<std::thread::JoinHandle<()>>,
    io_tx: Sender<IoEndpoint>,
    io_rx: Option<Receiver<IoEndpoint>>,
    /// Read-chunk pool shared by every TCP ingress endpoint this runtime
    /// binds: the I/O thread drives them all, so chunks recycle across
    /// pipelines instead of each endpoint cold-starting its own pool.
    ingress_pool: Arc<videopipe_net::BufferPool>,
    pipeline_names: Vec<String>,
    /// Contiguous `[start, end)` task-id range per pipeline, in
    /// `add_pipeline` order (deploy is single-writer, so each pipeline's
    /// tasks are registered back to back). Lets [`ReactorRuntime::stop_pipeline`]
    /// finalize exactly one pipeline's tasks mid-run.
    task_ranges: Vec<(usize, usize)>,
}

impl ReactorRuntime {
    /// Starts the worker pool and timer thread.
    pub fn new(cfg: ReactorConfig) -> Self {
        let workers = cfg.effective_workers();
        let core = Arc::new(Core {
            timers: TimerWheel::new(cfg.timer_granularity, workers),
            cfg,
            tasks: RwLock::new(Vec::new()),
            workers: (0..workers)
                // Fixed per-worker steal seeds (golden-ratio stride): no
                // shared RNG, deterministic across runs.
                .map(|i| {
                    CachePadded(WorkerQueue::new(
                        (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ))
                })
                .collect(),
            nb_ready: unbounded(),
            mod_ready: unbounded(),
            pipelines: RwLock::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let mut threads = Vec::new();
        for i in 0..workers {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("vp-reactor-worker-{i}"))
                    .spawn(move || core.worker_loop(i))
                    .expect("spawn reactor worker"),
            );
        }
        {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name("vp-reactor-timer".into())
                    .spawn(move || core.timer_loop())
                    .expect("spawn reactor timer"),
            );
        }
        let (io_tx, io_rx) = unbounded();
        ReactorRuntime {
            core,
            threads,
            io_tx,
            // The I/O thread is spawned lazily by the first TCP pipeline.
            io_rx: Some(io_rx),
            ingress_pool: Arc::new(videopipe_net::BufferPool::default()),
            pipeline_names: Vec::new(),
            task_ranges: Vec::new(),
        }
    }

    fn ensure_io_thread(&mut self) {
        if let Some(rx) = self.io_rx.take() {
            let core = Arc::clone(&self.core);
            self.threads.push(
                std::thread::Builder::new()
                    .name("vp-reactor-io".into())
                    .spawn(move || core.io_loop(&rx))
                    .expect("spawn reactor io"),
            );
        }
    }

    /// The next task id (single-writer: `add_pipeline` takes `&mut self`).
    fn next_task_id(&self) -> usize {
        self.core.tasks.read().len()
    }

    fn register_task(&self, home: usize, blocking: bool, runner: Box<dyn TaskRunner>) -> Arc<Task> {
        let mut tasks = self.core.tasks.write();
        let task = Arc::new(Task {
            home,
            blocking,
            state: CachePadded(AtomicU8::new(IDLE)),
            runner: Mutex::new(runner),
        });
        tasks.push(Arc::clone(&task));
        task
    }

    fn map_channel(&self, pipe: &PipeRt, channel: String, task: Arc<Task>) {
        pipe.staging.lock().insert(channel, task);
    }

    /// Deploys one more pipeline onto the shared reactor and returns its
    /// pipeline id (index into the reports from [`ReactorRuntime::finish`]).
    ///
    /// Each pipeline gets its own in-process hub, router and frame stores;
    /// only the executor (tasks, timers, workers) is shared, so channel
    /// names never collide across pipelines.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] for invalid configs, missing module
    /// includes or service images, or wiring failures — same contract as
    /// [`LocalRuntime::deploy`](crate::runtime::LocalRuntime::deploy).
    pub fn add_pipeline(
        &mut self,
        plan: &DeploymentPlan,
        modules: &ModuleRegistry,
        services: &ServiceRegistry,
        config: RuntimeConfig,
    ) -> Result<usize, PipelineError> {
        config.validate()?;
        let pipeline_id = self.pipeline_names.len();
        let first_task_id = self.next_task_id();
        let pipeline = plan.pipeline.name.clone();
        let hub = InprocHub::new();
        let mut stores = HashMap::new();
        for d in &plan.devices {
            stores.insert(
                d.name.clone(),
                Arc::new(FrameStore::with_capacity(REACTOR_STORE_CAPACITY)),
            );
        }
        let source_device = plan
            .pipeline
            .sources()
            .first()
            .and_then(|s| plan.placement.device_for(&s.name))
            .ok_or_else(|| PipelineError::Deploy("pipeline has no placed source".into()))?
            .to_string();

        // Router: in `Tcp` mode every device gets a *non-blocking* ingress
        // socket registered with the reactor's single I/O thread.
        let mut io_endpoints = Vec::new();
        let router = match config.transport {
            EdgeTransport::Inproc => Router::inproc(hub.clone()),
            EdgeTransport::Tcp => {
                let mut channel_device = HashMap::new();
                for m in &plan.pipeline.modules {
                    let device = plan
                        .placement
                        .device_for(&m.name)
                        .ok_or_else(|| {
                            PipelineError::Deploy(format!("module {:?} unplaced", m.name))
                        })?
                        .to_string();
                    channel_device.insert(mod_chan(&pipeline, &m.name), device.clone());
                    channel_device.insert(reply_chan(&pipeline, &m.name), device);
                }
                for b in &plan.service_bindings {
                    channel_device.insert(
                        rsvc_chan(&pipeline, &b.device, &b.service),
                        b.device.clone(),
                    );
                }
                channel_device.insert(fc_chan(&pipeline), source_device.clone());
                channel_device.insert(hb_chan(&pipeline), source_device.clone());

                let mut tcp_peers = HashMap::new();
                for d in &plan.devices {
                    let endpoint = PollEndpoint::bind_with_pool(
                        "127.0.0.1:0",
                        Arc::clone(&self.ingress_pool),
                    )?;
                    let addr = format!("127.0.0.1:{}", endpoint.local_port());
                    let sender = videopipe_net::tcp::TcpSender::connect_retry(
                        &addr,
                        Duration::from_secs(5),
                    )?
                    .with_reconnect(videopipe_net::tcp::ReconnectPolicy::default());
                    tcp_peers.insert(d.name.clone(), Arc::new(sender));
                    io_endpoints.push(endpoint);
                }
                Router {
                    hub: hub.clone(),
                    channel_device,
                    tcp_peers,
                }
            }
        };

        let shared = Arc::new(Shared {
            hub: hub.clone(),
            router,
            stores,
            metrics: Mutex::new(PipelineMetrics::new()),
            logs: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            epoch: Instant::now(),
            deliveries: AtomicU64::new(0),
            config: config.clone(),
            breakers: Mutex::new(HashMap::new()),
            restarts: AtomicU64::new(0),
            fence_epoch: AtomicU64::new(0),
            detector: Mutex::new(config.heartbeats.clone().map(|h| {
                let mut d = FailureDetector::new(h);
                for dev in &plan.devices {
                    d.expect(&dev.name, 0);
                }
                d
            })),
            checkpoints: Mutex::new(HashMap::new()),
            muted_heartbeats: Mutex::new(HashSet::new()),
            knobs: KnobActuators::baseline(),
            gate: ShutdownGate::new(),
        });
        // Pipeline affinity: home worker for every task of this pipeline.
        // Round-robin over workers by default spreads the fleet evenly;
        // `affinity` pins everything for scheduling experiments.
        let home = self.core.cfg.affinity.unwrap_or(pipeline_id) % self.core.workers.len();
        let pipe = Arc::new(PipeRt {
            home,
            shared: Arc::clone(&shared),
            notify: std::sync::OnceLock::new(),
            staging: Mutex::new(HashMap::new()),
        });
        self.core.pipelines.write().push(Arc::clone(&pipe));
        if !io_endpoints.is_empty() {
            for endpoint in io_endpoints {
                let _ = self.io_tx.send(IoEndpoint {
                    pipe: Arc::clone(&pipe),
                    endpoint,
                });
            }
            self.ensure_io_thread();
        }
        let mut initial_wakes = Vec::new();

        // --- Service hosts: one task per (device, service) actually bound.
        // Concurrency across hosts comes from the shared worker pool, so
        // per-device `cores` no longer multiplies threads.
        let mut hosted: Vec<(String, String)> = plan
            .service_bindings
            .iter()
            .map(|b| (b.device.clone(), b.service.clone()))
            .collect();
        hosted.sort();
        hosted.dedup();
        for (device, service) in hosted {
            let image = services.get(&service).ok_or_else(|| {
                PipelineError::Deploy(format!("service image {service:?} not registered"))
            })?;
            let dev_spec = plan
                .device(&device)
                .ok_or_else(|| PipelineError::Deploy(format!("unknown device {device:?}")))?;
            let speed = dev_spec.speed_factor.max(1e-6);
            let chan = rsvc_chan(&pipeline, &device, &service);
            let inbox = hub.bind(&chan)?;
            let host = format!("{device}/{}", image.name());
            let task = self.register_task(
                home,
                false,
                Box::new(ServiceRunner {
                    shared: Arc::clone(&shared),
                    pipe: Arc::clone(&pipe),
                    inbox,
                    image,
                    device,
                    speed,
                    host,
                }),
            );
            self.map_channel(&pipe, chan, task);
        }

        // --- Modules: one blocking-capable task each.
        let source_names: Vec<String> = plan
            .pipeline
            .sources()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        let sink_names: Vec<String> = plan
            .pipeline
            .sinks()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        for m in &plan.pipeline.modules {
            let device = plan
                .placement
                .device_for(&m.name)
                .ok_or_else(|| PipelineError::Deploy(format!("module {:?} unplaced", m.name)))?
                .to_string();
            let mut nexts = HashMap::new();
            for edge in plan.edges.iter().filter(|e| e.from == m.name) {
                nexts.insert(
                    edge.to.clone(),
                    (mod_chan(&pipeline, &edge.to), edge.cross_device),
                );
            }
            let mut svc_map = HashMap::new();
            for b in plan.service_bindings.iter().filter(|b| b.module == m.name) {
                svc_map.insert(
                    b.service.clone(),
                    (rsvc_chan(&pipeline, &b.device, &b.service), b.remote),
                );
            }
            let wiring = Arc::new(ModuleWiring {
                name: m.name.clone(),
                device,
                nexts,
                services: svc_map,
                is_source: source_names.contains(&m.name),
                is_sink: sink_names.contains(&m.name),
            });
            let chan = mod_chan(&pipeline, &m.name);
            let inbox = hub.bind(&chan)?;
            let reply_rx = hub.bind(&reply_chan(&pipeline, &m.name))?;
            let factory = modules.factory(&m.include)?;
            let mut instance = modules.instantiate(&m.include)?;
            let mut st = CtxState {
                header: Header::default(),
                epoch: 0,
                corr: 0,
                reply_rx,
                lkg: HashMap::new(),
                jitter: SeededJitter::new(seed_for(config.resilience.seed, &m.name)),
            };
            {
                // Init runs inline at deploy, with service tasks already
                // registered so init-time service calls can be helped.
                let mut ctx = ReactorCtx {
                    core: &self.core,
                    depth: 0,
                    pipe: &pipe,
                    pipeline: &pipeline,
                    shared: &shared,
                    wiring: &wiring,
                    st: &mut st,
                };
                instance.init(&mut ctx)?;
            }
            let id = self.next_task_id();
            let task = self.register_task(
                home,
                true,
                Box::new(ModuleRunner {
                    shared: Arc::clone(&shared),
                    wiring,
                    pipe: Arc::clone(&pipe),
                    pipeline: pipeline.clone(),
                    inbox,
                    instance,
                    factory,
                    st,
                    last_checkpoint: Instant::now(),
                    rearm: Rearm::new(id, home),
                }),
            );
            self.map_channel(&pipe, chan, task);
            if config.checkpoint_period.is_some() {
                initial_wakes.push(id);
            }
        }

        // --- SLO controller task (was a thread).
        if let Some(slo_cfg) = config.slo.clone() {
            let controller = SloController::new(slo_cfg);
            let interval = controller.config().interval;
            let target_ms = controller.config().slo.p99.as_secs_f64() * 1e3;
            let id = self.next_task_id();
            self.register_task(
                home,
                false,
                Box::new(SloRunner {
                    shared: Arc::clone(&shared),
                    controller,
                    interval,
                    target_ms,
                    next_at: Instant::now() + interval,
                    rearm: Rearm::new(id, home),
                }),
            );
            initial_wakes.push(id);
        }

        // --- Health layer tasks (were one thread per device + a monitor).
        if let Some(health) = config.heartbeats.clone() {
            let hb_channel = hb_chan(&pipeline);
            let hb_inbox = hub.bind(&hb_channel)?;
            for d in &plan.devices {
                let id = self.next_task_id();
                self.register_task(
                    home,
                    false,
                    Box::new(HbBeatRunner {
                        shared: Arc::clone(&shared),
                        pipe: Arc::clone(&pipe),
                        device: d.name.clone(),
                        channel: hb_channel.clone(),
                        interval: health.heartbeat_interval,
                        next_at: Instant::now(),
                        rearm: Rearm::new(id, home),
                    }),
                );
                initial_wakes.push(id);
            }
            let id = self.next_task_id();
            let task = self.register_task(
                home,
                false,
                Box::new(HbMonitorRunner {
                    shared: Arc::clone(&shared),
                    inbox: hb_inbox,
                    confirmed: HashSet::new(),
                    sweep: POLL,
                    next_at: Instant::now(),
                    rearm: Rearm::new(id, home),
                }),
            );
            self.map_channel(&pipe, hb_channel, task);
            initial_wakes.push(id);
        }

        // --- Telemetry publisher task (was a thread).
        if let Some(interval) = config.telemetry_interval {
            let id = self.next_task_id();
            self.register_task(
                home,
                false,
                Box::new(TelemetryRunner {
                    shared: Arc::clone(&shared),
                    pipeline: pipeline.clone(),
                    interval,
                    next_at: Instant::now() + interval,
                    rearm: Rearm::new(id, home),
                }),
            );
            initial_wakes.push(id);
        }

        // --- Pacer task (was a thread). Its first run fires the first
        // camera tick immediately, matching the threaded pacer.
        let fc_channel = fc_chan(&pipeline);
        let fc_inbox = hub.bind(&fc_channel)?;
        let pacer = SourcePacer::new(config.fps);
        let interval = Duration::from_nanos(pacer.interval_ns());
        let id = self.next_task_id();
        let task = self.register_task(
            home,
            false,
            Box::new(PacerRunner {
                shared: Arc::clone(&shared),
                pipe: Arc::clone(&pipe),
                pipeline: pipeline.clone(),
                sources: source_names,
                source_device,
                fc_inbox,
                pacer,
                controller: CreditController::new(config.credits),
                interval,
                lease: config.resilience.credit_timeout,
                track_outstanding: config.resilience.credit_timeout.is_some()
                    || config.heartbeats.is_some(),
                outstanding: HashMap::new(),
                current_epoch: 0,
                dedup_window: config.dedup_window,
                dedup_order: VecDeque::with_capacity(config.dedup_window),
                dedup_set: HashSet::with_capacity(config.dedup_window),
                next_tick: Instant::now(),
                rearm: Rearm::new(id, home),
                finalized: false,
            }),
        );
        self.map_channel(&pipe, fc_channel, task);
        initial_wakes.push(id);

        self.pipeline_names.push(pipeline);
        self.task_ranges.push((first_task_id, self.next_task_id()));
        // Freeze the staging notify map into the immutable snapshot:
        // every steady-state send is now a lock-free HashMap probe.
        pipe.freeze();
        for id in initial_wakes {
            self.core.wake_task(id);
        }
        Ok(pipeline_id)
    }

    /// Threads owned by this reactor (workers + timer + optional I/O) —
    /// constant in the number of deployed pipelines.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of deployed pipelines.
    pub fn pipeline_count(&self) -> usize {
        self.pipeline_names.len()
    }

    /// Total frames delivered across every pipeline.
    pub fn deliveries(&self) -> u64 {
        self.core
            .pipelines
            .read()
            .iter()
            .map(|p| p.shared.deliveries.load(Ordering::Relaxed))
            .sum()
    }

    /// Frames delivered by pipeline `id` (as returned by
    /// [`ReactorRuntime::add_pipeline`]).
    pub fn deliveries_for(&self, id: usize) -> u64 {
        self.core
            .pipelines
            .read()
            .get(id)
            .map_or(0, |p| p.shared.deliveries.load(Ordering::Relaxed))
    }

    /// Live snapshot of the per-worker scheduler counters (tasks run,
    /// steal attempts/successes, local-queue high-water, timer fires,
    /// unparks), one entry per worker.
    pub fn scheduler_stats(&self) -> Vec<crate::metrics::WorkerSchedStats> {
        self.core.scheduler_stats()
    }

    /// The latest checkpoint taken for `module` on pipeline `id`, if any
    /// (periodic while running; refreshed one last time by
    /// [`ReactorRuntime::stop_pipeline`] and at shutdown).
    pub fn checkpoint_for(&self, id: usize, module: &str) -> Option<Vec<u8>> {
        self.core
            .pipelines
            .read()
            .get(id)
            .and_then(|p| p.shared.checkpoints.lock().get(module).cloned())
    }

    /// Stops pipeline `id` mid-run without touching the rest of the fleet:
    /// sets its stop flag (every task runner checks it on entry), wakes its
    /// interval-parked watchers, and finalizes its tasks so pacer credit
    /// accounting flushes and each checkpointing module takes one final
    /// snapshot. The pipeline's task and channel entries stay registered
    /// (stopped tasks run no more work); its report remains collectable at
    /// [`ReactorRuntime::finish`]. Returns `false` for unknown ids or
    /// pipelines already stopped.
    pub fn stop_pipeline(&self, id: usize) -> bool {
        let Some(&(start, end)) = self.task_ranges.get(id) else {
            return false;
        };
        {
            let pipelines = self.core.pipelines.read();
            let Some(p) = pipelines.get(id) else {
                return false;
            };
            if p.shared.stop.swap(true, Ordering::SeqCst) {
                return false;
            }
            p.shared.gate.trigger();
        }
        // Finalize this pipeline's tasks. Locking each runner serializes
        // with any in-flight quantum; once the stop flag is set a queued
        // task returns at entry without touching its module instance, so
        // the final snapshot taken here cannot go stale.
        let tasks = self.core.tasks.read();
        for task in tasks.iter().take(end).skip(start) {
            task.runner.lock().finalize(&self.core);
        }
        true
    }

    /// Collects a report for pipeline `id` from its live shared state
    /// (non-consuming; pair with [`ReactorRuntime::stop_pipeline`] when
    /// retiring a single pipeline from a long-lived runtime).
    pub fn report_for(&self, id: usize) -> Option<RunReport> {
        self.core
            .pipelines
            .read()
            .get(id)
            .map(|p| collect_report(&p.shared))
    }

    /// Chaos hook: silences `device`'s heartbeat sender on pipeline `id`
    /// (see [`LocalRuntime::inject_heartbeat_loss`](crate::runtime::LocalRuntime::inject_heartbeat_loss)).
    pub fn inject_heartbeat_loss(&self, id: usize, device: &str) -> bool {
        self.core
            .pipelines
            .read()
            .get(id)
            .is_some_and(|p| p.shared.muted_heartbeats.lock().insert(device.to_string()))
    }

    /// Runs until `wall` elapses, then stops and reports (one report per
    /// pipeline, in `add_pipeline` order).
    pub fn run_for(self, wall: Duration) -> Vec<RunReport> {
        std::thread::sleep(wall);
        self.finish()
    }

    /// Runs until `n` total frames are delivered or `max_wall` elapses.
    pub fn run_until_total_deliveries(self, n: u64, max_wall: Duration) -> Vec<RunReport> {
        let deadline = Instant::now() + max_wall;
        while self.deliveries() < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.finish()
    }

    /// Stops every thread and collects one report per pipeline. Each
    /// report carries the same runtime-wide per-worker scheduler snapshot.
    pub fn finish(mut self) -> Vec<RunReport> {
        self.shutdown();
        let sched = self.core.scheduler_stats();
        let pipelines = self.core.pipelines.read();
        pipelines
            .iter()
            .map(|p| {
                let mut report = collect_report(&p.shared);
                report.scheduler = sched.clone();
                report
            })
            .collect()
    }

    fn shutdown(&mut self) {
        self.core.stop.store(true, Ordering::SeqCst);
        {
            let pipelines = self.core.pipelines.read();
            for p in pipelines.iter() {
                p.shared.stop.store(true, Ordering::SeqCst);
                p.shared.gate.trigger();
            }
        }
        for wq in &self.core.workers {
            wq.parker.unpark();
        }
        self.core.timers.kick();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Finalize every task (pacers flush credit accounting).
        let tasks = self.core.tasks.read();
        for task in tasks.iter() {
            task.runner.lock().finalize(&self.core);
        }
    }
}

impl Drop for ReactorRuntime {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown();
        }
    }
}

impl std::fmt::Debug for ReactorRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorRuntime")
            .field("pipelines", &self.pipeline_names.len())
            .field("threads", &self.threads.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{plan, DeviceSpec, Placement};
    use crate::module::{Event, Module, ModuleCtx, ModuleRegistry};
    use crate::service::{Service, ServiceCost, ServiceRegistry};
    use crate::spec::{ModuleSpec, PipelineSpec};
    use videopipe_media::{Frame, FrameBuf};

    /// Source: mints a tiny frame per tick and forwards the reference.
    struct TestSource;
    impl Module for TestSource {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::FrameTick { t_ns } = event {
                let frame: Frame = FrameBuf::new(16, 16).freeze(ctx.header().frame_seq, t_ns);
                let id = ctx.frame_store().insert(frame);
                ctx.call_module("mid", Payload::FrameRef(id))?;
            }
            Ok(())
        }
    }

    /// Middle: calls the doubling service on a count derived from the frame.
    struct TestMid;
    impl Module for TestMid {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(msg) = event {
                let Payload::FrameRef(id) = msg.payload else {
                    return Err(PipelineError::BadPayload("expected frame"));
                };
                let frame = ctx.frame_store().get(id)?;
                let resp = ctx.call_service(
                    "doubler",
                    ServiceRequest::new("double", Payload::Count(frame.seq())),
                )?;
                ctx.frame_store().release(id);
                ctx.call_module("sink", resp.payload)?;
            }
            Ok(())
        }
    }

    /// Sink: records the count and signals the source.
    struct TestSink;
    impl Module for TestSink {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(msg) = event {
                if let Payload::Count(n) = msg.payload {
                    ctx.log(&format!("got {n}"));
                }
                ctx.signal_source()?;
            }
            Ok(())
        }
    }

    struct Doubler;
    impl Service for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn handle(
            &self,
            request: &ServiceRequest,
            _store: &FrameStore,
        ) -> Result<ServiceResponse, PipelineError> {
            match request.payload {
                Payload::Count(n) => Ok(ServiceResponse::new(Payload::Count(n * 2))),
                ref other => Err(crate::service::wrong_payload("doubler", "count", other)),
            }
        }
        fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
            ServiceCost::flat(Duration::from_millis(1))
        }
    }

    fn test_spec(name: &str) -> PipelineSpec {
        PipelineSpec::new(name)
            .with_module(ModuleSpec::new("src", "TestSource").with_next("mid"))
            .with_module(
                ModuleSpec::new("mid", "TestMid")
                    .with_service("doubler")
                    .with_next("sink"),
            )
            .with_module(ModuleSpec::new("sink", "TestSink"))
    }

    fn registries() -> (ModuleRegistry, ServiceRegistry) {
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(TestMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(Doubler));
        (modules, services)
    }

    fn single_device_plan(name: &str) -> DeploymentPlan {
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(2)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        plan(&test_spec(name), &devices, &placement).unwrap()
    }

    #[test]
    fn reactor_single_pipeline_delivers_frames() {
        let (modules, services) = registries();
        let mut rt = ReactorRuntime::new(ReactorConfig::default());
        let config = RuntimeConfig {
            fps: 200.0,
            ..RuntimeConfig::default()
        };
        rt.add_pipeline(&single_device_plan("test"), &modules, &services, config)
            .unwrap();
        let reports = rt.run_until_total_deliveries(10, Duration::from_secs(10));
        let report = &reports[0];
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert!(report.logs.iter().any(|l| l.starts_with("sink: got")));
        assert!(report.metrics.stages.contains_key("src"));
        assert!(report.metrics.stages.contains_key("mid"));
        assert!(report.metrics.stages.contains_key("sink"));
        let dispatch = report
            .metrics
            .dispatch
            .get("one/doubler")
            .expect("dispatch stats for the doubler host");
        assert!(dispatch.requests >= 10, "{dispatch:?}");
        // Credit conservation survives the reactor refactor.
        assert_eq!(
            report.metrics.frames_admitted,
            report.metrics.frames_delivered
                + report.metrics.frames_faulted
                + u64::from(report.metrics.in_flight_at_end),
        );
    }

    #[test]
    fn reactor_thread_count_is_constant_in_pipelines() {
        let (modules, services) = registries();
        let mut rt = ReactorRuntime::new(ReactorConfig {
            workers: 2,
            ..ReactorConfig::default()
        });
        let base = rt.thread_count();
        for i in 0..40 {
            let config = RuntimeConfig {
                fps: 50.0,
                ..RuntimeConfig::default()
            };
            rt.add_pipeline(
                &single_device_plan(&format!("p{i}")),
                &modules,
                &services,
                config,
            )
            .unwrap();
        }
        // Inproc pipelines add ZERO threads: workers + timer only.
        assert_eq!(rt.thread_count(), base);
        assert_eq!(base, 3); // 2 workers + 1 timer
        let reports = rt.run_until_total_deliveries(40 * 3, Duration::from_secs(20));
        assert_eq!(reports.len(), 40);
        for (i, report) in reports.iter().enumerate() {
            assert!(
                report.metrics.frames_delivered >= 1,
                "pipeline {i} delivered nothing: {:?}",
                report.errors
            );
            assert!(
                report.errors.is_empty(),
                "pipeline {i}: {:?}",
                report.errors
            );
        }
    }

    #[test]
    fn reactor_single_worker_cannot_deadlock_on_service_calls() {
        // One worker must be able to run the module step AND the service
        // dispatch it is waiting on, via wait-by-helping.
        let (modules, services) = registries();
        let mut rt = ReactorRuntime::new(ReactorConfig {
            workers: 1,
            ..ReactorConfig::default()
        });
        let config = RuntimeConfig {
            fps: 200.0,
            ..RuntimeConfig::default()
        };
        rt.add_pipeline(&single_device_plan("solo"), &modules, &services, config)
            .unwrap();
        let reports = rt.run_until_total_deliveries(5, Duration::from_secs(10));
        assert!(
            reports[0].metrics.frames_delivered >= 5,
            "delivered {} errors {:?}",
            reports[0].metrics.frames_delivered,
            reports[0].errors
        );
    }

    #[test]
    fn reactor_tcp_transport_crosses_devices_via_io_thread() {
        let devices = vec![
            DeviceSpec::new("phone", 1.0),
            DeviceSpec::new("desktop", 1.0)
                .with_containers(2)
                .with_service("doubler"),
        ];
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "desktop")
            .assign("sink", "phone");
        let plan = plan(&test_spec("tcp"), &devices, &placement).unwrap();
        let (modules, services) = registries();
        let mut rt = ReactorRuntime::new(ReactorConfig {
            workers: 2,
            ..ReactorConfig::default()
        });
        let base = rt.thread_count();
        let config = RuntimeConfig {
            fps: 100.0,
            transport: EdgeTransport::Tcp,
            ..RuntimeConfig::default()
        };
        rt.add_pipeline(&plan, &modules, &services, config).unwrap();
        // TCP adds exactly one I/O thread, once, regardless of devices.
        assert_eq!(rt.thread_count(), base + 1);
        let reports = rt.run_until_total_deliveries(10, Duration::from_secs(15));
        let report = &reports[0];
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
    }

    #[test]
    fn reactor_modeled_service_cost_defers_instead_of_blocking() {
        // With time_scale > 0 the 1ms modeled cost of `Doubler` becomes a
        // timer deferral; a single worker still keeps the pipeline moving
        // because no worker ever sleeps out the modeled time.
        let (modules, services) = registries();
        let mut rt = ReactorRuntime::new(ReactorConfig {
            workers: 1,
            ..ReactorConfig::default()
        });
        let config = RuntimeConfig {
            fps: 200.0,
            time_scale: 1.0,
            ..RuntimeConfig::default()
        };
        rt.add_pipeline(&single_device_plan("modeled"), &modules, &services, config)
            .unwrap();
        let reports = rt.run_until_total_deliveries(5, Duration::from_secs(10));
        let report = &reports[0];
        assert!(
            report.metrics.frames_delivered >= 5,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        // The modeled time is accounted as busy time even though no
        // worker thread actually slept.
        let dispatch = report.metrics.dispatch.get("one/doubler").unwrap();
        assert!(
            dispatch.busy_ns >= 5 * 1_000_000,
            "modeled cost missing from busy_ns: {dispatch:?}"
        );
    }

    /// Probe task for the interleaving test: every run drains the shared
    /// `pending` wake counter. Lost DIRTY wakes leave `pending` non-zero
    /// forever; double-queued tasks produce more runs than wakes.
    struct ProbeRunner {
        pending: Arc<AtomicU64>,
        runs: Arc<AtomicU64>,
        overlap: Arc<AtomicBool>,
    }

    impl TaskRunner for ProbeRunner {
        fn run(&mut self, _core: &Core, _depth: usize) -> bool {
            assert!(
                !self.overlap.swap(true, Ordering::SeqCst),
                "task ran concurrently on two threads"
            );
            self.runs.fetch_add(1, Ordering::SeqCst);
            self.pending.swap(0, Ordering::SeqCst);
            self.overlap.store(false, Ordering::SeqCst);
            false
        }
    }

    /// Seeded randomized interleaving over the 4-state task machine under
    /// stealing: four threads hammer `wake()` on one task homed on worker
    /// 0 of a 4-worker pool, so the runner, its home worker and three
    /// stealers race on every IDLE/QUEUED/RUNNING/DIRTY transition. A task
    /// must never run concurrently with itself (double-queue would allow
    /// two workers to pop it), each run must consume at least one wake,
    /// and a wake that lands mid-run (DIRTY) must never be lost.
    #[test]
    fn task_machine_survives_randomized_stealing_interleavings() {
        const WAKERS: u64 = 4;
        const WAKES_PER_THREAD: u64 = 20_000;
        let rt = ReactorRuntime::new(ReactorConfig {
            workers: 4,
            ..ReactorConfig::default()
        });
        let pending = Arc::new(AtomicU64::new(0));
        let runs = Arc::new(AtomicU64::new(0));
        let task = rt.register_task(
            0,
            false,
            Box::new(ProbeRunner {
                pending: Arc::clone(&pending),
                runs: Arc::clone(&runs),
                overlap: Arc::new(AtomicBool::new(false)),
            }),
        );
        let mut handles = Vec::new();
        for t in 0..WAKERS {
            let core = Arc::clone(&rt.core);
            let task = Arc::clone(&task);
            let pending = Arc::clone(&pending);
            handles.push(std::thread::spawn(move || {
                // Fixed per-thread seed: the interleaving pressure pattern
                // (yield points) is reproducible run to run.
                let mut seed = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..WAKES_PER_THREAD {
                    pending.fetch_add(1, Ordering::SeqCst);
                    core.wake(&task);
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    if seed % 7 == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Quiesce: the final wake must still force a run that drains the
        // counter — if a racing DIRTY wake were dropped, `pending` would
        // stay non-zero forever.
        let deadline = Instant::now() + Duration::from_secs(10);
        while pending.load(Ordering::SeqCst) != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            pending.load(Ordering::SeqCst),
            0,
            "wake lost: pending never drained after {} runs",
            runs.load(Ordering::SeqCst)
        );
        let total_runs = runs.load(Ordering::SeqCst);
        assert!(total_runs >= 1, "task never ran");
        assert!(
            total_runs <= WAKERS * WAKES_PER_THREAD,
            "more runs ({total_runs}) than wakes ({}): task was double-queued",
            WAKERS * WAKES_PER_THREAD
        );
        assert_eq!(
            task.state.load(Ordering::SeqCst),
            IDLE,
            "task did not settle back to IDLE"
        );
    }
}
