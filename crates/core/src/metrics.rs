//! Metrics: per-stage latency histograms and end-to-end frame accounting.
//!
//! These types produce exactly the numbers the paper's evaluation reports:
//! per-module latency (Fig. 6) and end-to-end frames per second under a
//! given source rate (Table 2).

use std::collections::BTreeMap;
use std::fmt;

/// Number of logarithmic buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, up to ~ 4500 s.
const BUCKETS: usize = 32;

/// A fixed-size logarithmic latency histogram (values in nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_for(ns: u64) -> usize {
        let us = (ns / 1_000).max(1);
        ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one latency sample. Counters saturate instead of wrapping so
    /// a long soak cannot overflow-panic in debug profiles.
    pub fn record(&mut self, ns: u64) {
        let bucket = Self::bucket_for(ns);
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(u128::from(ns));
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram into this one (saturating).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }

    /// The histogram seen since `prev` was cloned from this same series:
    /// bucket-wise difference of two cumulative snapshots. This is how the
    /// SLO controller computes *windowed* p50/p99 between control ticks
    /// without any per-frame allocation. `prev` must be an earlier snapshot
    /// of the same histogram; stale buckets subtract saturating, so a
    /// mismatched pair degrades to an empty window rather than panicking.
    ///
    /// Exact per-sample min/max are not recoverable from bucket deltas, so
    /// the window's bounds are the covered bucket ranges (lowest nonzero
    /// bucket's floor, highest nonzero bucket's ceiling), which is what
    /// [`LatencyHistogram::quantile_ns`] clamps against.
    pub fn since(&self, prev: &LatencyHistogram) -> LatencyHistogram {
        let mut delta = LatencyHistogram::new();
        for (i, (a, b)) in self.buckets.iter().zip(prev.buckets.iter()).enumerate() {
            let d = a.saturating_sub(*b);
            delta.buckets[i] = d;
            if d > 0 {
                delta.count = delta.count.saturating_add(d);
                let lo = (1u64 << i) * 1_000;
                delta.min_ns = delta.min_ns.min(lo);
                delta.max_ns = delta.max_ns.max(lo.saturating_mul(2));
            }
        }
        delta.sum_ns = self.sum_ns.saturating_sub(prev.sum_ns);
        delta
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.count)) as u64
        }
    }

    /// Minimum sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Maximum sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Approximate quantile (`q` in `[0, 1]`) by bucket interpolation.
    /// Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                // Interpolate within the bucket [2^i, 2^(i+1)) µs.
                let lo = (1u64 << i) * 1_000;
                let hi = lo * 2;
                let frac = (target - seen) as f64 / n as f64;
                let v = lo as f64 + (hi - lo) as f64 * frac;
                return (v as u64).clamp(self.min_ns, self.max_ns);
            }
            seen += n;
        }
        self.max_ns
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns() as f64 / 1e6
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2}ms p50={:.2}ms p99={:.2}ms max={:.2}ms",
            self.count,
            self.mean_ms(),
            self.quantile_ns(0.5) as f64 / 1e6,
            self.quantile_ns(0.99) as f64 / 1e6,
            self.max_ns as f64 / 1e6,
        )
    }
}

/// Number of batch-size histogram buckets in [`DispatchStats`]: bucket `i`
/// counts batches of exactly `i + 1` requests, and the final bucket absorbs
/// everything of size ≥ `BATCH_BUCKETS`.
pub const BATCH_BUCKETS: usize = 8;

/// Per-service-host dispatch counters, keyed by `device/service`.
///
/// Filled by the runtime's executor pools: they prove (or disprove) that
/// requests spread across executors instead of serialising behind a shared
/// inbox lock, and — since micro-batching — how well the drain policy fills
/// batches under load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Requests executed by this service host.
    pub requests: u64,
    /// Total wall time executors spent handling requests (ns).
    pub busy_ns: u64,
    /// Deepest request backlog observed when the leading request of a batch
    /// was dequeued (i.e. before the drain empties the queue).
    pub max_queue_depth: u64,
    /// Batches dispatched (equals `requests` when batching is off).
    pub batches: u64,
    /// Largest batch dispatched.
    pub max_batch: u64,
    /// Batch-size histogram: `batch_sizes[i]` counts batches of `i + 1`
    /// requests, last bucket = `≥ BATCH_BUCKETS`.
    pub batch_sizes: [u64; BATCH_BUCKETS],
}

impl DispatchStats {
    /// Mean handling time per request in milliseconds (0 when idle).
    pub fn mean_busy_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.requests as f64 / 1e6
        }
    }

    /// Mean wall time per *batch* in milliseconds (0 when idle). With
    /// batching this is the amortised unit of executor work; without it,
    /// identical to [`DispatchStats::mean_busy_ms`].
    pub fn mean_batch_busy_ms(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.batches as f64 / 1e6
        }
    }

    /// Mean requests per dispatched batch (0 when idle, 1.0 when batching
    /// never engaged).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    fn record_batch(&mut self, busy_ns: u64, queue_depth: u64, batch_len: u64) {
        // Saturating on every counter: these accumulate for the life of a
        // deployment, and a wrap would panic in debug profiles mid-soak.
        self.requests = self.requests.saturating_add(batch_len);
        self.busy_ns = self.busy_ns.saturating_add(busy_ns);
        self.max_queue_depth = self.max_queue_depth.max(queue_depth);
        self.batches = self.batches.saturating_add(1);
        self.max_batch = self.max_batch.max(batch_len);
        let bucket = (batch_len.max(1) as usize - 1).min(BATCH_BUCKETS - 1);
        self.batch_sizes[bucket] = self.batch_sizes[bucket].saturating_add(1);
    }
}

/// Per-worker scheduler counters from the reactor's multi-core scheduler
/// (one entry per worker thread, never per task — deliberately
/// low-cardinality). Attached to every [`RunReport`] produced by a
/// `ReactorRuntime` and surfaced in the bench artifact, so scheduling
/// pathologies (steal storms, one hot home worker, wake contention) show
/// up in the numbers instead of a profiler.
///
/// [`RunReport`]: crate::runtime::RunReport
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSchedStats {
    /// Worker index in the pool.
    pub worker: usize,
    /// Tasks this worker executed (from any queue, own or stolen).
    pub tasks_run: u64,
    /// Steal sweeps this worker initiated after finding its own and the
    /// global queues dry.
    pub steals_attempted: u64,
    /// Steal sweeps that returned a task.
    pub steals_succeeded: u64,
    /// Deepest local run-queue depth observed at push time.
    pub queue_high_water: u64,
    /// Timer-wheel entries fired from this worker's wheel shard.
    pub timer_fires: u64,
    /// Times this worker was unparked by a targeted wake.
    pub unparks: u64,
}

/// Metrics for one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Per-stage processing latency, keyed by module name.
    pub stages: BTreeMap<String, LatencyHistogram>,
    /// Per-service-host executor dispatch counters, keyed by
    /// `device/service`.
    pub dispatch: BTreeMap<String, DispatchStats>,
    /// End-to-end latency (capture → final module done).
    pub end_to_end: LatencyHistogram,
    /// Frames delivered all the way to the sink.
    pub frames_delivered: u64,
    /// Frames dropped at the source by flow control.
    pub frames_dropped: u64,
    /// Camera ticks offered by the source.
    pub frames_offered: u64,
    /// Frames admitted into the pipeline by flow control.
    pub frames_admitted: u64,
    /// Frames that died mid-pipeline (module error, panic or abandoned
    /// service call) and had their flow-control credit reclaimed.
    pub frames_faulted: u64,
    /// Frames still in flight when the run stopped. Credit accounting is
    /// leak-free iff `frames_admitted == frames_delivered + frames_faulted
    /// + in_flight_at_end` (see [`credits_balanced`]).
    ///
    /// [`credits_balanced`]: PipelineMetrics::credits_balanced
    pub in_flight_at_end: u32,
    /// Pipeline-clock time of the first delivery (ns).
    pub first_delivery_ns: u64,
    /// Pipeline-clock time of the last delivery (ns).
    pub last_delivery_ns: u64,
    /// Total run duration on the pipeline clock (ns).
    pub run_duration_ns: u64,
}

impl PipelineMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a stage latency sample.
    pub fn record_stage(&mut self, stage: &str, ns: u64) {
        self.stages.entry(stage.to_string()).or_default().record(ns);
    }

    /// Records one executed service request: how long the executor was busy
    /// and how deep the request queue was when the request was dequeued.
    /// Equivalent to a batch of one.
    pub fn record_dispatch(&mut self, host: &str, busy_ns: u64, queue_depth: u64) {
        self.record_dispatch_batch(host, busy_ns, queue_depth, 1);
    }

    /// Records one executed micro-batch of `batch_len` requests:
    /// `busy_ns` covers the whole batch (drain → decode → handle → reply)
    /// and `queue_depth` is the backlog observed *before* the drain, so
    /// `max_queue_depth` still reflects true pressure.
    pub fn record_dispatch_batch(
        &mut self,
        host: &str,
        busy_ns: u64,
        queue_depth: u64,
        batch_len: u64,
    ) {
        self.dispatch
            .entry(host.to_string())
            .or_default()
            .record_batch(busy_ns, queue_depth, batch_len);
    }

    /// Records an end-to-end delivery at pipeline time `now_ns` with the
    /// given capture-to-done latency.
    pub fn record_delivery(&mut self, now_ns: u64, latency_ns: u64) {
        self.end_to_end.record(latency_ns);
        if self.frames_delivered == 0 {
            self.first_delivery_ns = now_ns;
        }
        self.last_delivery_ns = now_ns;
        self.frames_delivered += 1;
    }

    /// Achieved end-to-end frames per second, measured over the delivery
    /// span (the paper's Table 2 metric). Returns 0 with fewer than two
    /// deliveries.
    pub fn fps(&self) -> f64 {
        if self.frames_delivered < 2 {
            return 0.0;
        }
        let span_ns = self.last_delivery_ns.saturating_sub(self.first_delivery_ns);
        if span_ns == 0 {
            return 0.0;
        }
        (self.frames_delivered - 1) as f64 * 1e9 / span_ns as f64
    }

    /// Fraction of admitted frames that were delivered end-to-end (1.0 when
    /// nothing was admitted). The chaos tests assert this stays ≥ 0.9 under
    /// fault injection.
    pub fn delivery_ratio(&self) -> f64 {
        if self.frames_admitted == 0 {
            return 1.0;
        }
        self.frames_delivered as f64 / self.frames_admitted as f64
    }

    /// Whether flow-control credit accounting balances: every admitted
    /// frame either completed, faulted, or was still in flight at the end.
    /// A `false` here means a credit leaked — the failure mode that wedges
    /// the paper's §2.3 design.
    pub fn credits_balanced(&self) -> bool {
        self.frames_admitted
            == self.frames_delivered + self.frames_faulted + u64::from(self.in_flight_at_end)
    }

    /// Fraction of offered camera frames that were dropped at the source.
    pub fn drop_rate(&self) -> f64 {
        if self.frames_offered == 0 {
            return 0.0;
        }
        self.frames_dropped as f64 / self.frames_offered as f64
    }

    /// A formatted table of per-stage and total latencies (the rows of
    /// Fig. 6).
    pub fn latency_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "mean(ms)", "p50(ms)", "p99(ms)", "samples"
        ));
        for (stage, hist) in &self.stages {
            out.push_str(&format!(
                "{:<28} {:>10.2} {:>10.2} {:>10.2} {:>10}\n",
                stage,
                hist.mean_ms(),
                hist.quantile_ns(0.5) as f64 / 1e6,
                hist.quantile_ns(0.99) as f64 / 1e6,
                hist.count()
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>10.2} {:>10.2} {:>10.2} {:>10}\n",
            "total (end-to-end)",
            self.end_to_end.mean_ms(),
            self.end_to_end.quantile_ns(0.5) as f64 / 1e6,
            self.end_to_end.quantile_ns(0.99) as f64 / 1e6,
            self.end_to_end.count()
        ));
        out
    }

    /// Merges another run's metrics (e.g. across repetitions).
    pub fn merge(&mut self, other: &PipelineMetrics) {
        for (stage, hist) in &other.stages {
            self.stages.entry(stage.clone()).or_default().merge(hist);
        }
        for (host, stats) in &other.dispatch {
            let mine = self.dispatch.entry(host.clone()).or_default();
            mine.requests = mine.requests.saturating_add(stats.requests);
            mine.busy_ns = mine.busy_ns.saturating_add(stats.busy_ns);
            mine.max_queue_depth = mine.max_queue_depth.max(stats.max_queue_depth);
            mine.batches = mine.batches.saturating_add(stats.batches);
            mine.max_batch = mine.max_batch.max(stats.max_batch);
            for (a, b) in mine.batch_sizes.iter_mut().zip(stats.batch_sizes.iter()) {
                *a = a.saturating_add(*b);
            }
        }
        self.end_to_end.merge(&other.end_to_end);
        self.frames_delivered = self.frames_delivered.saturating_add(other.frames_delivered);
        self.frames_dropped = self.frames_dropped.saturating_add(other.frames_dropped);
        self.frames_offered = self.frames_offered.saturating_add(other.frames_offered);
        self.frames_admitted = self.frames_admitted.saturating_add(other.frames_admitted);
        self.frames_faulted = self.frames_faulted.saturating_add(other.frames_faulted);
        self.in_flight_at_end = self.in_flight_at_end.saturating_add(other.in_flight_at_end);
        self.last_delivery_ns = self.last_delivery_ns.max(other.last_delivery_ns);
        self.run_duration_ns = self.run_duration_ns.max(other.run_duration_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_statistics() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        for ms in [10u64, 20, 30, 40] {
            h.record(ms * 1_000_000);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_ns(), 25_000_000);
        assert_eq!(h.min_ns(), 10_000_000);
        assert_eq!(h.max_ns(), 40_000_000);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100_000); // 0.1ms .. 100ms
        }
        let p50 = h.quantile_ns(0.5);
        let p90 = h.quantile_ns(0.9);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= h.min_ns() && p99 <= h.max_ns());
        // Log-bucket interpolation: p50 within a factor of 2 of the truth.
        let true_p50 = 50_000_000u64 / 1000 * 1000;
        assert!(
            p50 as f64 / true_p50 as f64 > 0.5 && (p50 as f64 / true_p50 as f64) < 2.0,
            "p50 {p50} vs {true_p50}"
        );
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1_000_000);
        b.record(3_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean_ns(), 2_000_000);
        assert_eq!(a.max_ns(), 3_000_000);
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn sub_microsecond_samples_clamp_to_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(500);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) <= 1_000_000);
    }

    #[test]
    fn fps_over_delivery_span() {
        let mut m = PipelineMetrics::new();
        // 11 deliveries spaced 100 ms apart → 10 intervals in 1 s → 10 fps.
        for i in 0..11u64 {
            m.record_delivery(i * 100_000_000, 90_000_000);
        }
        assert!((m.fps() - 10.0).abs() < 1e-9, "fps {}", m.fps());
        assert_eq!(m.frames_delivered, 11);
        assert_eq!(m.first_delivery_ns, 0);
        assert_eq!(m.last_delivery_ns, 1_000_000_000);
    }

    #[test]
    fn fps_degenerate_cases() {
        let mut m = PipelineMetrics::new();
        assert_eq!(m.fps(), 0.0);
        m.record_delivery(5, 1);
        assert_eq!(m.fps(), 0.0); // single delivery
    }

    #[test]
    fn drop_rate() {
        let mut m = PipelineMetrics::new();
        m.frames_offered = 100;
        m.frames_dropped = 25;
        assert!((m.drop_rate() - 0.25).abs() < 1e-9);
        assert_eq!(PipelineMetrics::new().drop_rate(), 0.0);
    }

    #[test]
    fn latency_table_contains_stages() {
        let mut m = PipelineMetrics::new();
        m.record_stage("pose", 60_000_000);
        m.record_stage("load_frame", 10_000_000);
        m.record_delivery(0, 90_000_000);
        m.record_delivery(100_000_000, 95_000_000);
        let table = m.latency_table();
        assert!(table.contains("pose"));
        assert!(table.contains("load_frame"));
        assert!(table.contains("end-to-end"));
    }

    #[test]
    fn metrics_merge() {
        let mut a = PipelineMetrics::new();
        a.record_stage("s", 1_000_000);
        a.record_delivery(10, 5);
        a.frames_offered = 2;
        let mut b = PipelineMetrics::new();
        b.record_stage("s", 3_000_000);
        b.record_stage("t", 1_000_000);
        b.record_delivery(20, 6);
        b.frames_dropped = 1;
        b.frames_offered = 2;
        a.merge(&b);
        assert_eq!(a.stages["s"].count(), 2);
        assert_eq!(a.stages["t"].count(), 1);
        assert_eq!(a.frames_delivered, 2);
        assert_eq!(a.frames_offered, 4);
        assert_eq!(a.frames_dropped, 1);
    }

    #[test]
    fn credit_accounting() {
        let mut m = PipelineMetrics::new();
        assert!(m.credits_balanced());
        assert_eq!(m.delivery_ratio(), 1.0);
        m.frames_admitted = 10;
        m.frames_delivered = 8;
        m.frames_faulted = 1;
        m.in_flight_at_end = 1;
        assert!(m.credits_balanced());
        assert!((m.delivery_ratio() - 0.8).abs() < 1e-9);
        m.frames_faulted = 0; // one credit unaccounted for → leak
        assert!(!m.credits_balanced());
    }

    #[test]
    fn dispatch_stats_record_and_merge() {
        let mut a = PipelineMetrics::new();
        a.record_dispatch("dev/svc", 2_000_000, 3);
        a.record_dispatch("dev/svc", 4_000_000, 1);
        assert_eq!(a.dispatch["dev/svc"].requests, 2);
        assert_eq!(a.dispatch["dev/svc"].busy_ns, 6_000_000);
        assert_eq!(a.dispatch["dev/svc"].max_queue_depth, 3);
        assert!((a.dispatch["dev/svc"].mean_busy_ms() - 3.0).abs() < 1e-9);

        let mut b = PipelineMetrics::new();
        b.record_dispatch("dev/svc", 1_000_000, 9);
        b.record_dispatch("dev/other", 1_000_000, 0);
        a.merge(&b);
        assert_eq!(a.dispatch["dev/svc"].requests, 3);
        assert_eq!(a.dispatch["dev/svc"].max_queue_depth, 9);
        assert_eq!(a.dispatch["dev/other"].requests, 1);
        assert_eq!(DispatchStats::default().mean_busy_ms(), 0.0);
        // A plain record_dispatch is a batch of one.
        assert_eq!(a.dispatch["dev/svc"].batches, 3);
        assert_eq!(a.dispatch["dev/svc"].max_batch, 1);
        assert_eq!(a.dispatch["dev/svc"].batch_sizes[0], 3);
    }

    #[test]
    fn dispatch_batch_histogram_and_means() {
        let mut m = PipelineMetrics::new();
        m.record_dispatch_batch("dev/svc", 8_000_000, 7, 4);
        m.record_dispatch_batch("dev/svc", 2_000_000, 0, 1);
        m.record_dispatch_batch("dev/svc", 20_000_000, 30, 12); // clamps to last bucket
        let s = &m.dispatch["dev/svc"];
        assert_eq!(s.requests, 17);
        assert_eq!(s.batches, 3);
        assert_eq!(s.max_batch, 12);
        assert_eq!(s.max_queue_depth, 30);
        assert_eq!(s.batch_sizes[0], 1);
        assert_eq!(s.batch_sizes[3], 1);
        assert_eq!(s.batch_sizes[BATCH_BUCKETS - 1], 1);
        assert!((s.mean_batch() - 17.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_batch_busy_ms() - 10.0).abs() < 1e-9);
        assert_eq!(DispatchStats::default().mean_batch(), 0.0);
        assert_eq!(DispatchStats::default().mean_batch_busy_ms(), 0.0);

        // Batch fields survive a merge.
        let mut other = PipelineMetrics::new();
        other.record_dispatch_batch("dev/svc", 1_000_000, 2, 4);
        m.merge(&other);
        let s = &m.dispatch["dev/svc"];
        assert_eq!(s.batches, 4);
        assert_eq!(s.batch_sizes[3], 2);
        assert_eq!(s.max_batch, 12);
    }

    #[test]
    fn since_yields_windowed_quantiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(2_000_000); // 2 ms era
        }
        let snap = h.clone();
        for _ in 0..100 {
            h.record(64_000_000); // 64 ms era
        }
        // The cumulative p50 straddles both eras, but the window since the
        // snapshot only sees the slow era.
        let window = h.since(&snap);
        assert_eq!(window.count(), 100);
        assert!(window.quantile_ns(0.5) >= 32_000_000);
        assert!(window.mean_ns() >= 32_000_000);
        // Window of a snapshot against itself is empty.
        let empty = h.since(&h.clone());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile_ns(0.99), 0);
    }

    #[test]
    fn since_mismatched_snapshots_saturate_to_empty() {
        let mut newer = LatencyHistogram::new();
        newer.record(1_000_000);
        let mut older = LatencyHistogram::new();
        for _ in 0..10 {
            older.record(1_000_000);
        }
        // "prev" has more samples than "now" (mismatched series): the delta
        // saturates to zero instead of wrapping.
        let window = newer.since(&older);
        assert_eq!(window.count(), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        // Force the counters to the brink and record again: must not panic
        // (debug profiles panic on overflow with unchecked `+=`).
        let mut s = DispatchStats {
            requests: u64::MAX - 1,
            busy_ns: u64::MAX - 1,
            batches: u64::MAX,
            ..DispatchStats::default()
        };
        s.record_batch(100, 1, 5);
        assert_eq!(s.requests, u64::MAX);
        assert_eq!(s.batches, u64::MAX);

        let mut m = PipelineMetrics::new();
        m.frames_delivered = u64::MAX;
        let mut other = PipelineMetrics::new();
        other.frames_delivered = 10;
        other.record_dispatch("d/s", 1, 1);
        m.merge(&other);
        assert_eq!(m.frames_delivered, u64::MAX);
    }

    #[test]
    fn histogram_display_nonempty() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        assert!(!h.to_string().is_empty());
    }
}
