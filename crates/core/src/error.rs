use std::error::Error;
use std::fmt;
use std::time::Duration;
use videopipe_media::MediaError;
use videopipe_net::NetError;

/// Errors produced by the VideoPipe core.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// A pipeline configuration file failed to parse.
    Config {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A pipeline spec failed validation.
    Validation(String),
    /// A runtime configuration value failed deploy-time validation (e.g.
    /// `fps <= 0`, zero credits, a zero-sized batch, inverted SLO bounds).
    InvalidConfig {
        /// The offending configuration field.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// Deployment planning failed (placement, capability or wiring error).
    Deploy(String),
    /// A module referenced a service that is not reachable from its device.
    ServiceUnavailable {
        /// The calling module.
        module: String,
        /// The missing service.
        service: String,
    },
    /// A service rejected or failed a request.
    Service {
        /// Service name.
        service: String,
        /// Failure description.
        reason: String,
    },
    /// A service call exceeded its per-call deadline (distinct from the
    /// service itself failing the request).
    Timeout {
        /// Service name.
        service: String,
        /// How long the caller waited before giving up.
        elapsed: Duration,
    },
    /// A service call was rejected by an open circuit breaker without
    /// reaching the service.
    CircuitOpen {
        /// Service name.
        service: String,
    },
    /// A module handler failed.
    Module {
        /// Module name.
        module: String,
        /// Failure description.
        reason: String,
    },
    /// Payload decode failure.
    BadPayload(&'static str),
    /// Transport failure.
    Net(NetError),
    /// Media failure (frame store, codec).
    Media(MediaError),
    /// The runtime is shutting down.
    Shutdown,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Config { line, reason } => {
                write!(f, "config parse error at line {line}: {reason}")
            }
            PipelineError::Validation(reason) => write!(f, "invalid pipeline: {reason}"),
            PipelineError::InvalidConfig { field, reason } => {
                write!(f, "invalid runtime config ({field}): {reason}")
            }
            PipelineError::Deploy(reason) => write!(f, "deployment failed: {reason}"),
            PipelineError::ServiceUnavailable { module, service } => {
                write!(f, "module {module:?} cannot reach service {service:?}")
            }
            PipelineError::Service { service, reason } => {
                write!(f, "service {service:?} failed: {reason}")
            }
            PipelineError::Timeout { service, elapsed } => {
                write!(f, "service {service:?} timed out after {elapsed:?}")
            }
            PipelineError::CircuitOpen { service } => {
                write!(f, "service {service:?} circuit breaker is open")
            }
            PipelineError::Module { module, reason } => {
                write!(f, "module {module:?} failed: {reason}")
            }
            PipelineError::BadPayload(reason) => write!(f, "bad payload: {reason}"),
            PipelineError::Net(e) => write!(f, "transport error: {e}"),
            PipelineError::Media(e) => write!(f, "media error: {e}"),
            PipelineError::Shutdown => write!(f, "runtime is shutting down"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Net(e) => Some(e),
            PipelineError::Media(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for PipelineError {
    fn from(e: NetError) -> Self {
        PipelineError::Net(e)
    }
}

impl From<MediaError> for PipelineError {
    fn from(e: MediaError) -> Self {
        PipelineError::Media(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let variants: Vec<PipelineError> = vec![
            PipelineError::Config {
                line: 3,
                reason: "x".into(),
            },
            PipelineError::Validation("v".into()),
            PipelineError::InvalidConfig {
                field: "fps",
                reason: "r".into(),
            },
            PipelineError::Deploy("d".into()),
            PipelineError::ServiceUnavailable {
                module: "m".into(),
                service: "s".into(),
            },
            PipelineError::Service {
                service: "s".into(),
                reason: "r".into(),
            },
            PipelineError::Timeout {
                service: "s".into(),
                elapsed: Duration::from_millis(10),
            },
            PipelineError::CircuitOpen {
                service: "s".into(),
            },
            PipelineError::Module {
                module: "m".into(),
                reason: "r".into(),
            },
            PipelineError::BadPayload("p"),
            PipelineError::Net(NetError::Disconnected),
            PipelineError::Media(MediaError::UnknownFrame(1)),
            PipelineError::Shutdown,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        let err = PipelineError::from(NetError::Disconnected);
        assert!(err.source().is_some());
        let err = PipelineError::from(MediaError::UnknownFrame(5));
        assert!(err.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
