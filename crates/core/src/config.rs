//! Parser for the pipeline configuration format of the paper's Listing 1.
//!
//! ```text
//! // An Example of DAG Configuration for a Pipeline
//! pipeline: fitness
//! modules : [
//!     { name: pose_detector_module
//!       include ("./PoseDetectorModule.js")
//!       service: ['pose_detector']
//!       endpoint: ["bind#tcp://*:5861"]
//!       next_module: activity_detector_module }
//!     { name: activity_detector_module
//!       include ("./ActivityDetectorModule.js")
//!       service: ['activity_detector']
//!       endpoint: ["bind#tcp://*:5862"]
//!       next_module: [rep_counter_module, display_module] }
//! ]
//! ```
//!
//! The `include` path is normalised to a registry key by stripping the
//! directory prefix and the `.js` suffix (so `"./PoseDetectorModule.js"`
//! instantiates the module registered as `PoseDetectorModule`).

use crate::error::PipelineError;
use crate::spec::{ModuleSpec, PipelineSpec};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Colon,
    Comma,
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    line: usize,
}

fn err(line: usize, reason: impl Into<String>) -> PipelineError {
    PipelineError::Config {
        line,
        reason: reason.into(),
    }
}

fn lex(input: &str) -> Result<Vec<Spanned>, PipelineError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    // Line comment.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(err(line, "unexpected '/'"));
                }
            }
            '{' => {
                tokens.push(Spanned {
                    token: Token::LBrace,
                    line,
                });
                chars.next();
            }
            '}' => {
                tokens.push(Spanned {
                    token: Token::RBrace,
                    line,
                });
                chars.next();
            }
            '[' => {
                tokens.push(Spanned {
                    token: Token::LBracket,
                    line,
                });
                chars.next();
            }
            ']' => {
                tokens.push(Spanned {
                    token: Token::RBracket,
                    line,
                });
                chars.next();
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    line,
                });
                chars.next();
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    line,
                });
                chars.next();
            }
            ':' => {
                tokens.push(Spanned {
                    token: Token::Colon,
                    line,
                });
                chars.next();
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    line,
                });
                chars.next();
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == quote {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        return Err(err(line, "unterminated string"));
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(err(line, "unterminated string"));
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    line,
                });
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(s),
                    line,
                });
            }
            other => return Err(err(line, format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.peek()
            .map(|t| t.line)
            .or_else(|| self.tokens.last().map(|t| t.line))
            .unwrap_or(1)
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<usize, PipelineError> {
        let line = self.line();
        match self.next() {
            Some(t) if &t.token == expected => Ok(t.line),
            Some(t) => Err(err(t.line, format!("expected {what}, found {:?}", t.token))),
            None => Err(err(line, format!("expected {what}, found end of input"))),
        }
    }

    fn skip_commas(&mut self) {
        while matches!(self.peek().map(|t| &t.token), Some(Token::Comma)) {
            self.pos += 1;
        }
    }

    /// A string literal or bare identifier.
    fn string_or_ident(&mut self, what: &str) -> Result<String, PipelineError> {
        let line = self.line();
        match self.next() {
            Some(Spanned {
                token: Token::Str(s) | Token::Ident(s),
                ..
            }) => Ok(s),
            Some(t) => Err(err(t.line, format!("expected {what}, found {:?}", t.token))),
            None => Err(err(line, format!("expected {what}, found end of input"))),
        }
    }

    /// A value that may be a single string/ident or a bracketed list of
    /// them; always returns a list.
    fn string_list(&mut self, what: &str) -> Result<Vec<String>, PipelineError> {
        if matches!(self.peek().map(|t| &t.token), Some(Token::LBracket)) {
            self.pos += 1;
            let mut out = Vec::new();
            loop {
                self.skip_commas();
                match self.peek().map(|t| &t.token) {
                    Some(Token::RBracket) => {
                        self.pos += 1;
                        break;
                    }
                    None => return Err(err(self.line(), format!("unterminated {what} list"))),
                    _ => out.push(self.string_or_ident(what)?),
                }
            }
            Ok(out)
        } else {
            Ok(vec![self.string_or_ident(what)?])
        }
    }
}

/// Normalises an include path to a module-registry key:
/// `"./PoseDetectorModule.js"` → `"PoseDetectorModule"`.
pub fn include_key(path: &str) -> String {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".js").unwrap_or(base).to_string()
}

/// Parses a pipeline configuration document.
///
/// # Errors
///
/// Returns [`PipelineError::Config`] with a line number for syntax errors,
/// and [`PipelineError::Validation`] when the parsed spec is invalid.
pub fn parse(input: &str) -> Result<PipelineSpec, PipelineError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut spec = PipelineSpec::new("pipeline");
    let mut saw_modules = false;

    while let Some(t) = parser.peek() {
        let line = t.line;
        let key = match &t.token {
            Token::Ident(k) => k.clone(),
            other => return Err(err(line, format!("expected a key, found {other:?}"))),
        };
        parser.pos += 1;
        match key.as_str() {
            "pipeline" => {
                parser.expect(&Token::Colon, "':'")?;
                spec.name = parser.string_or_ident("pipeline name")?;
            }
            "modules" => {
                parser.expect(&Token::Colon, "':'")?;
                parser.expect(&Token::LBracket, "'['")?;
                loop {
                    parser.skip_commas();
                    match parser.peek().map(|t| &t.token) {
                        Some(Token::RBracket) => {
                            parser.pos += 1;
                            break;
                        }
                        Some(Token::LBrace) => {
                            let module = parse_module(&mut parser)?;
                            spec.modules.push(module);
                        }
                        Some(other) => {
                            return Err(err(
                                parser.line(),
                                format!("expected a module block, found {other:?}"),
                            ))
                        }
                        None => return Err(err(parser.line(), "unterminated modules list")),
                    }
                }
                saw_modules = true;
            }
            other => {
                return Err(err(line, format!("unknown top-level key {other:?}")));
            }
        }
    }

    if !saw_modules {
        return Err(err(1, "configuration has no modules section"));
    }
    spec.validate()?;
    Ok(spec)
}

fn parse_module(parser: &mut Parser) -> Result<ModuleSpec, PipelineError> {
    parser.expect(&Token::LBrace, "'{'")?;
    let mut name: Option<String> = None;
    let mut include: Option<String> = None;
    let mut services = Vec::new();
    let mut endpoint = None;
    let mut next_modules = Vec::new();

    loop {
        parser.skip_commas();
        let line = parser.line();
        match parser.next() {
            Some(Spanned {
                token: Token::RBrace,
                ..
            }) => break,
            Some(Spanned {
                token: Token::Ident(key),
                line,
            }) => match key.as_str() {
                "name" => {
                    parser.expect(&Token::Colon, "':'")?;
                    name = Some(parser.string_or_ident("module name")?);
                }
                "include" => {
                    // Both `include ("./X.js")` and `include: "./X.js"`.
                    match parser.peek().map(|t| &t.token) {
                        Some(Token::LParen) => {
                            parser.pos += 1;
                            let path = parser.string_or_ident("include path")?;
                            parser.expect(&Token::RParen, "')'")?;
                            include = Some(include_key(&path));
                        }
                        Some(Token::Colon) => {
                            parser.pos += 1;
                            let path = parser.string_or_ident("include path")?;
                            include = Some(include_key(&path));
                        }
                        _ => return Err(err(line, "include needs '(path)' or ': path'")),
                    }
                }
                "service" | "services" => {
                    parser.expect(&Token::Colon, "':'")?;
                    services.extend(parser.string_list("service name")?);
                }
                "endpoint" => {
                    parser.expect(&Token::Colon, "':'")?;
                    let endpoints = parser.string_list("endpoint")?;
                    let first = endpoints
                        .first()
                        .ok_or_else(|| err(line, "endpoint list is empty"))?;
                    let parsed = first
                        .parse()
                        .map_err(|e| err(line, format!("invalid endpoint {first:?}: {e}")))?;
                    endpoint = Some(parsed);
                }
                "next_module" | "next_modules" => {
                    parser.expect(&Token::Colon, "':'")?;
                    next_modules.extend(parser.string_list("module name")?);
                }
                other => return Err(err(line, format!("unknown module key {other:?}"))),
            },
            Some(t) => {
                return Err(err(
                    t.line,
                    format!("expected a module key, found {:?}", t.token),
                ))
            }
            None => return Err(err(line, "unterminated module block")),
        }
    }

    let line = parser.line();
    let name = name.ok_or_else(|| err(line, "module block missing 'name'"))?;
    let include = include.ok_or_else(|| err(line, format!("module {name:?} missing 'include'")))?;
    Ok(ModuleSpec {
        name,
        include,
        services,
        endpoint,
        next_modules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use videopipe_net::EndpointMode;

    /// The paper's Listing 1, verbatim structure.
    const LISTING_1: &str = r#"
// An Example of DAG Configuration for a Pipeline
pipeline: fitness
modules : [
    { name: video_module
      include ("./VideoStreamingModule.js")
      endpoint: ["bind#tcp://*:5860"]
      next_module: pose_detector_module }
    { name: pose_detector_module
      include ("./PoseDetectorModule.js")
      service: ['pose_detector']
      endpoint: ["bind#tcp://*:5861"]
      next_module: activity_detector_module }
    { name: activity_detector_module
      include ("./ActivityDetectorModule.js")
      service: ['activity_detector']
      endpoint: ["bind#tcp://*:5862"]
      next_module: [rep_counter_module,
                    display_module] }
    { name: rep_counter_module
      include ("./RepCounterModule.js")
      service: ['rep_counter']
      endpoint: ["bind#tcp://*:5863"]
      next_module: display_module }
    { name: display_module
      include ("./DisplayModule.js")
      endpoint: ["bind#tcp://*:5864"] }
]
"#;

    #[test]
    fn parses_listing_1() {
        let spec = parse(LISTING_1).unwrap();
        assert_eq!(spec.name, "fitness");
        assert_eq!(spec.modules.len(), 5);
        let pose = spec.module("pose_detector_module").unwrap();
        assert_eq!(pose.include, "PoseDetectorModule");
        assert_eq!(pose.services, vec!["pose_detector"]);
        assert_eq!(pose.next_modules, vec!["activity_detector_module"]);
        let ep = pose.endpoint.as_ref().unwrap();
        assert_eq!(ep.mode(), EndpointMode::Bind);
        let activity = spec.module("activity_detector_module").unwrap();
        assert_eq!(
            activity.next_modules,
            vec!["rep_counter_module", "display_module"]
        );
        assert_eq!(spec.sinks().len(), 1);
        assert_eq!(spec.sources().len(), 1);
    }

    #[test]
    fn include_key_normalisation() {
        assert_eq!(include_key("./PoseDetectorModule.js"), "PoseDetectorModule");
        assert_eq!(include_key("a/b/C.js"), "C");
        assert_eq!(include_key("Bare"), "Bare");
        assert_eq!(include_key("no_ext"), "no_ext");
    }

    #[test]
    fn minimal_pipeline() {
        let spec = parse(
            "modules: [ { name: a include(\"A.js\") next_module: b } { name: b include(\"B.js\") } ]",
        )
        .unwrap();
        assert_eq!(spec.modules.len(), 2);
        assert_eq!(spec.name, "pipeline"); // default
    }

    #[test]
    fn colon_style_include() {
        let spec = parse("modules: [ { name: a include: \"./X.js\" } ]").unwrap();
        assert_eq!(spec.modules[0].include, "X");
    }

    #[test]
    fn comments_and_commas_are_tolerated() {
        let spec = parse(
            "// header\nmodules: [\n{ name: a, include(\"A.js\"), next_module: [b,] },\n{ name: b include(\"B.js\") },\n]",
        )
        .unwrap();
        assert_eq!(spec.modules.len(), 2);
    }

    #[test]
    fn error_reports_line_numbers() {
        let input = "modules: [\n{ name: a\n  bogus_key: 1 } ]";
        match parse(input) {
            Err(PipelineError::Config { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("bogus_key"));
            }
            other => panic!("expected config error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_name_or_include() {
        assert!(parse("modules: [ { include(\"A.js\") } ]").is_err());
        assert!(parse("modules: [ { name: a } ]").is_err());
    }

    #[test]
    fn rejects_bad_endpoint() {
        let result = parse("modules: [ { name: a include(\"A.js\") endpoint: [\"bogus://x\"] } ]");
        assert!(result.is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(parse("modules: [ { name: 'a } ]").is_err());
    }

    #[test]
    fn rejects_empty_document() {
        assert!(parse("").is_err());
        assert!(parse("// nothing here").is_err());
    }

    #[test]
    fn rejects_unknown_toplevel_key() {
        assert!(parse("wibble: 3").is_err());
    }

    #[test]
    fn propagates_spec_validation() {
        // Valid syntax, but dangling edge.
        let result = parse("modules: [ { name: a include(\"A.js\") next_module: ghost } ]");
        assert!(matches!(result, Err(PipelineError::Validation(_))));
    }

    #[test]
    fn roundtrip_through_builder_equivalence() {
        let parsed = parse(LISTING_1).unwrap();
        // Spot-check the DAG is intact.
        assert_eq!(parsed.topo_order().unwrap()[0], "video_module");
        assert_eq!(parsed.depth(), 5);
    }
}
