//! Device health: heartbeats, lease expiry, and failure detection.
//!
//! Every device in a deployment periodically announces itself with a
//! heartbeat. The [`FailureDetector`] tracks the last heartbeat per device
//! and classifies each device as [`Alive`](DeviceStatus::Alive),
//! [`Suspect`](DeviceStatus::Suspect) or [`Dead`](DeviceStatus::Dead) from
//! how many heartbeat intervals have elapsed past the lease. Two thresholds
//! separate *suspicion* (a transient partition — no action yet) from
//! *confirmation* (the device is gone — trigger failover), so a single
//! dropped packet never tears a pipeline apart.
//!
//! The detector is clock-agnostic: callers supply `now_ns` as nanoseconds
//! on any monotonic axis. The threaded runtime feeds it nanoseconds since
//! its start `Instant`; the simulator feeds it `SimTime` nanoseconds. That
//! keeps the transition logic identical — and identically testable — in
//! both worlds.

use std::collections::HashMap;
use std::time::Duration;

/// Tuning knobs for heartbeat-based failure detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthConfig {
    /// How often each device emits a heartbeat.
    pub heartbeat_interval: Duration,
    /// Grace period after the last heartbeat before a device is considered
    /// late at all. Must be at least one heartbeat interval, typically 2-4.
    pub lease: Duration,
    /// Number of *missed heartbeats past the lease* at which a device
    /// becomes [`DeviceStatus::Suspect`].
    pub suspicion_threshold: u32,
    /// Number of missed heartbeats past the lease at which a device is
    /// confirmed [`DeviceStatus::Dead`] and failover may begin. Must be
    /// `>= suspicion_threshold`.
    pub confirmation_threshold: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            heartbeat_interval: Duration::from_millis(100),
            lease: Duration::from_millis(300),
            suspicion_threshold: 1,
            confirmation_threshold: 3,
        }
    }
}

impl HealthConfig {
    /// Heartbeat interval in nanoseconds (at least 1 so arithmetic never
    /// divides by zero even with a degenerate config).
    fn heartbeat_ns(&self) -> u64 {
        (self.heartbeat_interval.as_nanos() as u64).max(1)
    }

    /// Lease in nanoseconds.
    fn lease_ns(&self) -> u64 {
        self.lease.as_nanos() as u64
    }
}

/// The detector's view of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceStatus {
    /// Heartbeats arriving within the lease.
    Alive,
    /// Late enough to worry, not late enough to act.
    Suspect,
    /// Missed the confirmation threshold; failover should run.
    Dead,
}

/// Tracks heartbeats for a set of devices and classifies their liveness.
///
/// `now_ns` is caller-supplied on every query so the detector works over
/// wall-clock and simulated time alike.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: HealthConfig,
    last_beat: HashMap<String, u64>,
}

impl FailureDetector {
    /// Creates a detector with no devices registered.
    pub fn new(cfg: HealthConfig) -> Self {
        FailureDetector {
            cfg,
            last_beat: HashMap::new(),
        }
    }

    /// The configuration the detector was built with.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Registers `device` as expected, dating its lease from `now_ns`.
    /// A device never heard from at all would otherwise be invisible.
    pub fn expect(&mut self, device: &str, now_ns: u64) {
        self.last_beat.entry(device.to_string()).or_insert(now_ns);
    }

    /// Records a heartbeat from `device`, renewing its lease.
    pub fn record_heartbeat(&mut self, device: &str, now_ns: u64) {
        let beat = self.last_beat.entry(device.to_string()).or_insert(now_ns);
        *beat = (*beat).max(now_ns);
    }

    /// Classifies `device` at `now_ns`. Unknown devices are `Alive` (they
    /// were never expected, so they cannot be late).
    pub fn status(&self, device: &str, now_ns: u64) -> DeviceStatus {
        let Some(&beat) = self.last_beat.get(device) else {
            return DeviceStatus::Alive;
        };
        let elapsed = now_ns.saturating_sub(beat);
        let lease = self.cfg.lease_ns();
        if elapsed <= lease {
            return DeviceStatus::Alive;
        }
        let missed = (elapsed - lease) / self.cfg.heartbeat_ns() + 1;
        if missed >= u64::from(self.cfg.confirmation_threshold) {
            DeviceStatus::Dead
        } else if missed >= u64::from(self.cfg.suspicion_threshold) {
            DeviceStatus::Suspect
        } else {
            DeviceStatus::Alive
        }
    }

    /// Devices whose status at `now_ns` is [`DeviceStatus::Dead`], sorted
    /// so callers act deterministically.
    pub fn dead_devices(&self, now_ns: u64) -> Vec<String> {
        let mut dead: Vec<String> = self
            .last_beat
            .keys()
            .filter(|d| self.status(d, now_ns) == DeviceStatus::Dead)
            .cloned()
            .collect();
        dead.sort();
        dead
    }

    /// Every tracked device with its status at `now_ns`, sorted by name.
    pub fn statuses(&self, now_ns: u64) -> Vec<(String, DeviceStatus)> {
        let mut all: Vec<(String, DeviceStatus)> = self
            .last_beat
            .keys()
            .map(|d| (d.clone(), self.status(d, now_ns)))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Forgets `device` entirely (e.g. after failover removed it from the
    /// deployment) so it stops reporting as dead forever.
    pub fn forget(&mut self, device: &str) {
        self.last_beat.remove(device);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            heartbeat_interval: Duration::from_millis(100),
            lease: Duration::from_millis(300),
            suspicion_threshold: 1,
            confirmation_threshold: 3,
        }
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn fresh_device_is_alive() {
        let mut d = FailureDetector::new(cfg());
        d.expect("phone", 0);
        assert_eq!(d.status("phone", 0), DeviceStatus::Alive);
        assert_eq!(d.status("phone", 300 * MS), DeviceStatus::Alive);
    }

    #[test]
    fn unknown_device_is_alive() {
        let d = FailureDetector::new(cfg());
        assert_eq!(d.status("ghost", 10_000 * MS), DeviceStatus::Alive);
    }

    #[test]
    fn transitions_through_suspect_to_dead() {
        let mut d = FailureDetector::new(cfg());
        d.record_heartbeat("phone", 0);
        // One missed beat past the lease: suspect, not dead.
        assert_eq!(d.status("phone", 301 * MS), DeviceStatus::Suspect);
        assert_eq!(d.status("phone", 450 * MS), DeviceStatus::Suspect);
        // Third missed beat past the lease: confirmed dead.
        assert_eq!(d.status("phone", 501 * MS), DeviceStatus::Dead);
        assert_eq!(d.dead_devices(501 * MS), vec!["phone".to_string()]);
    }

    #[test]
    fn heartbeat_renews_the_lease() {
        let mut d = FailureDetector::new(cfg());
        d.record_heartbeat("phone", 0);
        assert_eq!(d.status("phone", 450 * MS), DeviceStatus::Suspect);
        d.record_heartbeat("phone", 450 * MS);
        assert_eq!(d.status("phone", 700 * MS), DeviceStatus::Alive);
    }

    #[test]
    fn stale_heartbeat_does_not_rewind_the_lease() {
        let mut d = FailureDetector::new(cfg());
        d.record_heartbeat("phone", 500 * MS);
        d.record_heartbeat("phone", 100 * MS); // reordered delivery
        assert_eq!(d.status("phone", 700 * MS), DeviceStatus::Alive);
    }

    #[test]
    fn expect_does_not_overwrite_a_real_heartbeat() {
        let mut d = FailureDetector::new(cfg());
        d.record_heartbeat("phone", 500 * MS);
        d.expect("phone", 0);
        assert_eq!(d.status("phone", 700 * MS), DeviceStatus::Alive);
    }

    #[test]
    fn thresholds_are_configurable() {
        let mut d = FailureDetector::new(HealthConfig {
            suspicion_threshold: 2,
            confirmation_threshold: 5,
            ..cfg()
        });
        d.record_heartbeat("phone", 0);
        assert_eq!(d.status("phone", 301 * MS), DeviceStatus::Alive);
        assert_eq!(d.status("phone", 401 * MS), DeviceStatus::Suspect);
        assert_eq!(d.status("phone", 650 * MS), DeviceStatus::Suspect);
        assert_eq!(d.status("phone", 701 * MS), DeviceStatus::Dead);
    }

    #[test]
    fn forget_removes_the_device() {
        let mut d = FailureDetector::new(cfg());
        d.record_heartbeat("phone", 0);
        assert_eq!(d.status("phone", 10_000 * MS), DeviceStatus::Dead);
        d.forget("phone");
        assert_eq!(d.status("phone", 10_000 * MS), DeviceStatus::Alive);
        assert!(d.dead_devices(10_000 * MS).is_empty());
    }

    #[test]
    fn statuses_reports_all_devices_sorted() {
        let mut d = FailureDetector::new(cfg());
        d.record_heartbeat("tablet", 0);
        d.record_heartbeat("phone", 600 * MS);
        let statuses = d.statuses(700 * MS);
        assert_eq!(
            statuses,
            vec![
                ("phone".to_string(), DeviceStatus::Alive),
                ("tablet".to_string(), DeviceStatus::Dead),
            ]
        );
    }
}
