//! Pipeline messages and the typed payload codec.
//!
//! On-device edges carry [`Payload`]s by value (frames by
//! [`FrameId`] reference — paper §3: "rather than copying the full image
//! frames to the module, we pass on a reference id"); cross-device edges
//! serialise payloads with the hand-written codec in this module and ship
//! them inside [`WireMessage`](videopipe_net::WireMessage)s. Frames crossing
//! devices are transcoded to [`Payload::EncodedFrame`] by the runtime.

use crate::error::PipelineError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use videopipe_media::{FrameId, Keypoint, Pose, JOINT_COUNT};

/// A typed message payload.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Payload {
    /// No payload (signals, acks).
    Empty,
    /// A UTF-8 string (labels, logs, display text).
    Text(String),
    /// Opaque bytes.
    Blob(Bytes),
    /// A device-local frame reference (valid only on the device whose store
    /// issued it).
    FrameRef(FrameId),
    /// A codec-encoded frame (cross-device form).
    EncodedFrame(Bytes),
    /// A detected pose with a detection score.
    Pose {
        /// The keypoints.
        pose: Pose,
        /// Detector confidence in `[0, 1]`.
        score: f32,
    },
    /// A sequence of poses (calibration windows, pose batches).
    Poses(Vec<Pose>),
    /// A dense feature vector.
    Vector(Vec<f32>),
    /// A dense matrix (e.g. k-means centroids).
    Matrix(Vec<Vec<f32>>),
    /// A classification result.
    Label {
        /// Class label.
        label: String,
        /// Classifier confidence in `[0, 1]`.
        confidence: f32,
    },
    /// A counter value (rep counts, cluster ids).
    Count(u64),
    /// Axis-aligned boxes `(min_x, min_y, max_x, max_y)`.
    Boxes(Vec<(f32, f32, f32, f32)>),
    /// A failure description travelling in place of a result (e.g. a
    /// service executor reporting a failed request back to its caller, so
    /// the caller can retry instead of timing out).
    Error(String),
}

impl Payload {
    /// Approximate in-memory/wire size in bytes, used by the simulator's
    /// network model (a `FrameRef` is 8 bytes — that is the point of the
    /// paper's reference-passing design).
    pub fn size_hint(&self) -> usize {
        match self {
            Payload::Empty => 1,
            Payload::Text(s) => 5 + s.len(),
            Payload::Blob(b) => 5 + b.len(),
            Payload::FrameRef(_) => 9,
            Payload::EncodedFrame(b) => 5 + b.len(),
            Payload::Pose { .. } => 1 + 4 + JOINT_COUNT * 8,
            Payload::Poses(ps) => 5 + ps.len() * JOINT_COUNT * 8,
            Payload::Vector(v) => 5 + v.len() * 4,
            Payload::Matrix(m) => 5 + m.iter().map(|r| 4 + r.len() * 4).sum::<usize>(),
            Payload::Label { label, .. } => 5 + label.len() + 4,
            Payload::Count(_) => 9,
            Payload::Boxes(b) => 5 + b.len() * 16,
            Payload::Error(s) => 5 + s.len(),
        }
    }

    /// Short name of the payload variant (diagnostics and errors).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Empty => "empty",
            Payload::Text(_) => "text",
            Payload::Blob(_) => "blob",
            Payload::FrameRef(_) => "frame_ref",
            Payload::EncodedFrame(_) => "encoded_frame",
            Payload::Pose { .. } => "pose",
            Payload::Poses(_) => "poses",
            Payload::Vector(_) => "vector",
            Payload::Matrix(_) => "matrix",
            Payload::Label { .. } => "label",
            Payload::Count(_) => "count",
            Payload::Boxes(_) => "boxes",
            Payload::Error(_) => "error",
        }
    }

    /// Encodes the payload with the wire codec.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.size_hint() + 8);
        match self {
            Payload::Empty => buf.put_u8(0),
            Payload::Text(s) => {
                buf.put_u8(1);
                put_str(&mut buf, s);
            }
            Payload::Blob(b) => {
                buf.put_u8(2);
                buf.put_u32(b.len() as u32);
                buf.put_slice(b);
            }
            Payload::FrameRef(id) => {
                buf.put_u8(3);
                buf.put_u64(id.as_u64());
            }
            Payload::EncodedFrame(b) => {
                buf.put_u8(4);
                buf.put_u32(b.len() as u32);
                buf.put_slice(b);
            }
            Payload::Pose { pose, score } => {
                buf.put_u8(5);
                buf.put_f32(*score);
                put_pose(&mut buf, pose);
            }
            Payload::Poses(poses) => {
                buf.put_u8(6);
                buf.put_u32(poses.len() as u32);
                for p in poses {
                    put_pose(&mut buf, p);
                }
            }
            Payload::Vector(v) => {
                buf.put_u8(7);
                buf.put_u32(v.len() as u32);
                for x in v {
                    buf.put_f32(*x);
                }
            }
            Payload::Matrix(m) => {
                buf.put_u8(8);
                buf.put_u32(m.len() as u32);
                for row in m {
                    buf.put_u32(row.len() as u32);
                    for x in row {
                        buf.put_f32(*x);
                    }
                }
            }
            Payload::Label { label, confidence } => {
                buf.put_u8(9);
                put_str(&mut buf, label);
                buf.put_f32(*confidence);
            }
            Payload::Count(n) => {
                buf.put_u8(10);
                buf.put_u64(*n);
            }
            Payload::Boxes(boxes) => {
                buf.put_u8(11);
                buf.put_u32(boxes.len() as u32);
                for (a, b, c, d) in boxes {
                    buf.put_f32(*a);
                    buf.put_f32(*b);
                    buf.put_f32(*c);
                    buf.put_f32(*d);
                }
            }
            Payload::Error(s) => {
                buf.put_u8(12);
                put_str(&mut buf, s);
            }
        }
        buf.freeze()
    }

    /// Decodes a payload previously produced by [`Payload::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadPayload`] on truncation, unknown tags or
    /// trailing bytes.
    pub fn decode(mut buf: &[u8]) -> Result<Payload, PipelineError> {
        let payload = Self::decode_inner(&mut buf)?;
        if buf.has_remaining() {
            return Err(PipelineError::BadPayload("trailing bytes"));
        }
        Ok(payload)
    }

    fn decode_inner(buf: &mut &[u8]) -> Result<Payload, PipelineError> {
        fn need(buf: &&[u8], n: usize) -> Result<(), PipelineError> {
            if buf.remaining() < n {
                Err(PipelineError::BadPayload("truncated payload"))
            } else {
                Ok(())
            }
        }
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            0 => Payload::Empty,
            1 => Payload::Text(get_str(buf)?),
            2 => {
                need(buf, 4)?;
                let len = buf.get_u32() as usize;
                need(buf, len)?;
                let b = Bytes::copy_from_slice(&buf[..len]);
                buf.advance(len);
                Payload::Blob(b)
            }
            3 => {
                need(buf, 8)?;
                Payload::FrameRef(FrameId::from_u64(buf.get_u64()))
            }
            4 => {
                need(buf, 4)?;
                let len = buf.get_u32() as usize;
                need(buf, len)?;
                let b = Bytes::copy_from_slice(&buf[..len]);
                buf.advance(len);
                Payload::EncodedFrame(b)
            }
            5 => {
                need(buf, 4)?;
                let score = buf.get_f32();
                let pose = get_pose(buf)?;
                Payload::Pose { pose, score }
            }
            6 => {
                need(buf, 4)?;
                let n = buf.get_u32() as usize;
                if n > 1_000_000 {
                    return Err(PipelineError::BadPayload("pose list too long"));
                }
                let mut poses = Vec::with_capacity(n);
                for _ in 0..n {
                    poses.push(get_pose(buf)?);
                }
                Payload::Poses(poses)
            }
            7 => {
                need(buf, 4)?;
                let n = buf.get_u32() as usize;
                need(buf, n.saturating_mul(4))?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(buf.get_f32());
                }
                Payload::Vector(v)
            }
            8 => {
                need(buf, 4)?;
                let rows = buf.get_u32() as usize;
                if rows > 1_000_000 {
                    return Err(PipelineError::BadPayload("matrix too large"));
                }
                let mut m = Vec::with_capacity(rows);
                for _ in 0..rows {
                    need(buf, 4)?;
                    let cols = buf.get_u32() as usize;
                    need(buf, cols.saturating_mul(4))?;
                    let mut row = Vec::with_capacity(cols);
                    for _ in 0..cols {
                        row.push(buf.get_f32());
                    }
                    m.push(row);
                }
                Payload::Matrix(m)
            }
            9 => {
                let label = get_str(buf)?;
                need(buf, 4)?;
                let confidence = buf.get_f32();
                Payload::Label { label, confidence }
            }
            10 => {
                need(buf, 8)?;
                Payload::Count(buf.get_u64())
            }
            11 => {
                need(buf, 4)?;
                let n = buf.get_u32() as usize;
                need(buf, n.saturating_mul(16))?;
                let mut boxes = Vec::with_capacity(n);
                for _ in 0..n {
                    boxes.push((buf.get_f32(), buf.get_f32(), buf.get_f32(), buf.get_f32()));
                }
                Payload::Boxes(boxes)
            }
            12 => Payload::Error(get_str(buf)?),
            _ => return Err(PipelineError::BadPayload("unknown payload tag")),
        })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, PipelineError> {
    if buf.remaining() < 4 {
        return Err(PipelineError::BadPayload("truncated string"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(PipelineError::BadPayload("truncated string"));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| PipelineError::BadPayload("string not utf-8"))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

fn put_pose(buf: &mut BytesMut, pose: &Pose) {
    for kp in pose.keypoints() {
        buf.put_f32(kp.x);
        buf.put_f32(kp.y);
    }
}

fn get_pose(buf: &mut &[u8]) -> Result<Pose, PipelineError> {
    if buf.remaining() < JOINT_COUNT * 8 {
        return Err(PipelineError::BadPayload("truncated pose"));
    }
    let mut kps = [Keypoint::default(); JOINT_COUNT];
    for kp in &mut kps {
        kp.x = buf.get_f32();
        kp.y = buf.get_f32();
    }
    Ok(Pose::new(kps))
}

/// The frame-identity header carried end-to-end through a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Source frame sequence number.
    pub frame_seq: u64,
    /// Source capture timestamp (nanoseconds, pipeline clock).
    pub capture_ts_ns: u64,
}

/// A message travelling along a pipeline edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Frame identity.
    pub header: Header,
    /// The payload.
    pub payload: Payload,
}

impl Message {
    /// Creates a message.
    pub fn new(header: Header, payload: Payload) -> Self {
        Message { header, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_payloads() -> Vec<Payload> {
        vec![
            Payload::Empty,
            Payload::Text("hello".into()),
            Payload::Blob(Bytes::from_static(b"\x00\x01\x02")),
            Payload::FrameRef(FrameId::from_u64(42)),
            Payload::EncodedFrame(Bytes::from_static(b"VPF1rest")),
            Payload::Pose {
                pose: Pose::default(),
                score: 0.87,
            },
            Payload::Poses(vec![Pose::default(); 3]),
            Payload::Vector(vec![1.0, -2.5, 3.25]),
            Payload::Matrix(vec![vec![1.0, 2.0], vec![3.0]]),
            Payload::Label {
                label: "squat".into(),
                confidence: 0.93,
            },
            Payload::Count(12345),
            Payload::Boxes(vec![(0.1, 0.2, 0.3, 0.4), (0.5, 0.6, 0.7, 0.8)]),
            Payload::Error("service blew up".into()),
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for payload in all_payloads() {
            let encoded = payload.encode();
            let decoded = Payload::decode(&encoded).unwrap();
            assert_eq!(decoded, payload, "{}", payload.kind_name());
        }
    }

    #[test]
    fn truncation_always_errors() {
        for payload in all_payloads() {
            let encoded = payload.encode();
            for len in 0..encoded.len() {
                assert!(
                    Payload::decode(&encoded[..len]).is_err(),
                    "{} decoded at {len}",
                    payload.kind_name()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = Payload::Count(1).encode().to_vec();
        encoded.push(0);
        assert!(Payload::decode(&encoded).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(Payload::decode(&[99]).is_err());
    }

    #[test]
    fn frame_ref_is_tiny_on_wire() {
        // This is the heart of the reference-passing design: 9 bytes
        // instead of a whole frame.
        let payload = Payload::FrameRef(FrameId::from_u64(7));
        assert_eq!(payload.encode().len(), 9);
        assert_eq!(payload.size_hint(), 9);
    }

    #[test]
    fn size_hint_close_to_encoded_len() {
        for payload in all_payloads() {
            let hint = payload.size_hint();
            let real = payload.encode().len();
            assert!(
                (hint as i64 - real as i64).unsigned_abs() <= 16,
                "{}: hint {hint} vs real {real}",
                payload.kind_name()
            );
        }
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<_> = all_payloads().iter().map(|p| p.kind_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all_payloads().len());
    }

    #[test]
    fn message_construction() {
        let header = Header {
            frame_seq: 4,
            capture_ts_ns: 100,
        };
        let msg = Message::new(header, Payload::Empty);
        assert_eq!(msg.header.frame_seq, 4);
    }
}
