//! The module abstraction — the paper's Table 1 API.
//!
//! | Paper (JavaScript)             | Here (Rust)                          |
//! |--------------------------------|--------------------------------------|
//! | `init()`                       | [`Module::init`]                     |
//! | `event_received(message)`      | [`Module::on_event`]                 |
//! | `call_service(service, msg)`   | [`ModuleCtx::call_service`]          |
//! | `call_module(module, msg)`     | [`ModuleCtx::call_module`]           |
//!
//! Each module instance runs in its own isolated context (a thread in the
//! local runtime, an entity in the simulator) with its own encapsulated
//! state — mirroring the paper's one-Duktape-context-per-module design.

use crate::error::PipelineError;
use crate::message::{Header, Message, Payload};
use crate::service::{ServiceRequest, ServiceResponse};
use videopipe_media::FrameStore;

/// An event delivered to a module.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A camera tick admitted by flow control (source modules only). The
    /// timestamp is the capture time on the pipeline clock.
    FrameTick {
        /// Capture timestamp in nanoseconds.
        t_ns: u64,
    },
    /// A message arriving along a DAG edge.
    Message(Message),
}

/// A processing unit in a video pipeline.
///
/// Modules are single-threaded, event-driven, and own their state. All
/// interaction with the world goes through the [`ModuleCtx`].
pub trait Module: Send {
    /// Called once when the module is deployed on its device.
    ///
    /// # Errors
    ///
    /// An error aborts deployment of the pipeline.
    fn init(&mut self, _ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
        Ok(())
    }

    /// Called for every event.
    ///
    /// # Errors
    ///
    /// An error drops the current frame; the runtime records it and keeps
    /// the pipeline alive.
    fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError>;

    /// Serialises the module's recoverable state for checkpointing.
    ///
    /// The runtime calls this periodically; on failover (or a supervised
    /// restart) the latest snapshot is handed to [`Module::restore`] on the
    /// fresh instance. Stateless modules keep the default — `None` costs
    /// nothing and is never stored.
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Rebuilds state from a snapshot previously produced by
    /// [`Module::snapshot`] on an instance of the same module.
    ///
    /// Best-effort by design: an unreadable snapshot should leave the
    /// module in its freshly-constructed state rather than fail, since
    /// restore runs while the pipeline is already degraded.
    fn restore(&mut self, _snapshot: &[u8]) {}
}

/// The capabilities a runtime exposes to a module.
///
/// Object-safe so modules run identically on the threaded runtime and the
/// simulator.
pub trait ModuleCtx {
    /// Synchronously calls a stateless service and returns its response.
    ///
    /// Co-located services are an in-process call; remote services cost a
    /// round trip — exactly the difference the paper evaluates.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ServiceUnavailable`] when the service is not
    /// reachable, or the service's own failure.
    fn call_service(
        &mut self,
        service: &str,
        request: ServiceRequest,
    ) -> Result<ServiceResponse, PipelineError>;

    /// Sends a payload to a downstream module along a DAG edge. The current
    /// frame header is propagated automatically.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Validation`] when `target` is not a declared next
    /// module, or transport errors.
    fn call_module(&mut self, target: &str, payload: Payload) -> Result<(), PipelineError>;

    /// Signals the source that this frame has left the pipeline (the final
    /// module calls this; see paper §2.3 — no queues, drop at source).
    ///
    /// # Errors
    ///
    /// Transport errors reaching the source.
    fn signal_source(&mut self) -> Result<(), PipelineError>;

    /// Current pipeline-clock time in nanoseconds.
    fn now_ns(&self) -> u64;

    /// This module's name.
    fn module_name(&self) -> &str;

    /// The device this module instance runs on.
    fn device_name(&self) -> &str;

    /// The device-local frame store (for [`Payload::FrameRef`] payloads).
    fn frame_store(&self) -> &FrameStore;

    /// The header of the event being processed (frame identity).
    fn header(&self) -> Header;

    /// Overrides the current header — source modules call this when they
    /// mint a new frame.
    fn set_header(&mut self, header: Header);

    /// Emits a log line attributed to this module.
    fn log(&mut self, text: &str);
}

/// A shareable module constructor. The runtime keeps the factory of every
/// deployed module so supervision can re-instantiate one that panicked.
pub type ModuleFactory = std::sync::Arc<dyn Fn() -> Box<dyn Module> + Send + Sync>;

/// A registry mapping `include` keys from the pipeline configuration to
/// module constructors (the analogue of loading `./PoseDetectorModule.js`).
pub struct ModuleRegistry {
    factories: std::collections::HashMap<String, ModuleFactory>,
}

impl ModuleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModuleRegistry {
            factories: std::collections::HashMap::new(),
        }
    }

    /// Registers a module constructor under `include` key `name`.
    /// Re-registering a name replaces the previous factory.
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn() -> Box<dyn Module> + Send + Sync + 'static,
    {
        self.factories
            .insert(name.to_string(), std::sync::Arc::new(factory));
    }

    /// Instantiates the module registered under `name`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Deploy`] when the name is unknown.
    pub fn instantiate(&self, name: &str) -> Result<Box<dyn Module>, PipelineError> {
        self.factories
            .get(name)
            .map(|f| f())
            .ok_or_else(|| PipelineError::Deploy(format!("unknown module include {name:?}")))
    }

    /// Returns the factory registered under `name`, for runtimes that need
    /// to rebuild a module instance later (supervision restarts).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Deploy`] when the name is unknown.
    pub fn factory(&self, name: &str) -> Result<ModuleFactory, PipelineError> {
        self.factories
            .get(name)
            .cloned()
            .ok_or_else(|| PipelineError::Deploy(format!("unknown module include {name:?}")))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Registered include keys, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

impl Default for ModuleRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ModuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleRegistry")
            .field("modules", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoopModule;
    impl Module for NoopModule {
        fn on_event(&mut self, _: Event, _: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            Ok(())
        }
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = ModuleRegistry::new();
        assert!(!reg.contains("noop"));
        reg.register("noop", || Box::new(NoopModule));
        assert!(reg.contains("noop"));
        assert!(reg.instantiate("noop").is_ok());
        assert!(reg.instantiate("ghost").is_err());
        assert_eq!(reg.names(), vec!["noop"]);
        let factory = reg.factory("noop").unwrap();
        let _fresh: Box<dyn Module> = factory();
        assert!(reg.factory("ghost").is_err());
    }

    #[test]
    fn registry_replaces_on_reregister() {
        let mut reg = ModuleRegistry::new();
        reg.register("m", || Box::new(NoopModule));
        reg.register("m", || Box::new(NoopModule));
        assert_eq!(reg.names().len(), 1);
    }

    #[test]
    fn module_trait_is_object_safe() {
        let _: Box<dyn Module> = Box::new(NoopModule);
    }

    #[test]
    fn default_snapshot_is_stateless() {
        let mut m = NoopModule;
        assert!(m.snapshot().is_none());
        m.restore(b"ignored"); // default restore is a no-op
        assert!(m.snapshot().is_none());
    }
}
