//! Resilience primitives: bounded retries, circuit breakers and
//! degradation policies.
//!
//! The paper's §2.3 no-queue design (one credit in flight, drop-at-source)
//! is what makes VideoPipe fast — and what makes it fragile: a wedged
//! service call or a leaked flow-control credit stalls the source forever.
//! This module supplies the pieces the runtime wires into
//! `call_service`/`call_module` so that every failure path terminates
//! quickly and returns its credit:
//!
//! * [`RetryPolicy`] — bounded exponential backoff with deterministic,
//!   seeded jitter ([`SeededJitter`]), so retried runs are reproducible.
//! * [`CircuitBreaker`] — per-service closed → open → half-open breaker
//!   that fast-fails calls to a service that keeps failing, instead of
//!   burning the frame interval on doomed retries.
//! * [`DegradationPolicy`] — what a module does once retries and the
//!   breaker have given up: drop the frame (paper semantics) or reuse the
//!   last known good response so the pipeline keeps delivering.
//! * [`ResilienceConfig`] — the knob bundle carried by the runtime config;
//!   its `Default` reproduces the pre-resilience behaviour exactly (one
//!   attempt, no breaker, drop-frame, 30 s service deadline).

use std::time::Duration;

/// Tiny deterministic PRNG (splitmix64) used for retry jitter and seeded
/// chaos decisions.
///
/// Kept in-tree so `videopipe-core` stays dependency-free and jittered
/// schedules are bit-for-bit reproducible across platforms from a seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededJitter {
    state: u64,
}

impl SeededJitter {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        SeededJitter { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Derives a per-name seed from a base seed, so each module gets an
/// independent but reproducible jitter stream (FNV-1a over the name).
pub fn seed_for(base: u64, name: &str) -> u64 {
    let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    base ^ h
}

/// Bounded exponential backoff for retried service calls.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on the computed backoff (before jitter).
    pub max_backoff: Duration,
    /// Jitter amplitude as a fraction of the nominal backoff: the sleep is
    /// scaled by a factor drawn uniformly from `[1 - f, 1 + f)`.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// One attempt, no retries — the seed runtime's behaviour.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_frac: 0.0,
        }
    }

    /// Exponential backoff: `base`, `2*base`, `4*base`, ... capped at
    /// `max`, with 20% jitter.
    pub fn exponential(max_attempts: u32, base: Duration, max: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: base,
            max_backoff: max,
            jitter_frac: 0.2,
        }
    }

    /// Overrides the jitter amplitude (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, frac: f64) -> Self {
        self.jitter_frac = frac.clamp(0.0, 1.0);
        self
    }

    /// Backoff to sleep before retry number `retry` (1-based: `retry = 1`
    /// follows the first failed attempt). Returns zero when the policy has
    /// no retries.
    pub fn backoff(&self, retry: u32, jitter: &mut SeededJitter) -> Duration {
        if self.max_attempts <= 1 || retry == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let doublings = (retry - 1).min(16);
        let nominal = self
            .base_backoff
            .checked_mul(1u32 << doublings)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff);
        if self.jitter_frac == 0.0 {
            return nominal;
        }
        let factor = 1.0 + self.jitter_frac * (2.0 * jitter.next_f64() - 1.0);
        nominal.mul_f64(factor.max(0.0))
    }
}

/// State of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; consecutive failures are counted.
    Closed,
    /// Calls are rejected without reaching the service until the cooldown
    /// elapses.
    Open,
    /// The cooldown elapsed; probe calls are let through. A success closes
    /// the breaker, a failure re-opens it.
    HalfOpen,
}

/// Per-service circuit breaker: closed → open after `failure_threshold`
/// consecutive failures → half-open probe after `cooldown` → closed on a
/// successful probe.
///
/// Time is supplied by the caller as nanoseconds (the runtime's epoch
/// clock), keeping the breaker clock-agnostic and unit-testable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown: Duration,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ns: u64,
    // Half-open admits exactly one probe at a time: without this lease,
    // every caller draining a batch during the half-open window would be
    // admitted as a "probe" and a still-down service gets hammered.
    probe_in_flight: bool,
    probe_started_ns: u64,
    opened: u64,
    reclosed: u64,
    rejected: u64,
    probes: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    ///
    /// # Panics
    ///
    /// Panics if `failure_threshold` is zero (use
    /// [`ResilienceConfig::breaker_enabled`] to disable breaking entirely).
    pub fn new(failure_threshold: u32, cooldown: Duration) -> Self {
        assert!(failure_threshold > 0, "breaker threshold must be positive");
        CircuitBreaker {
            failure_threshold,
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_ns: 0,
            probe_in_flight: false,
            probe_started_ns: 0,
            opened: 0,
            reclosed: 0,
            rejected: 0,
            probes: 0,
        }
    }

    /// Whether a call may proceed at time `now_ns`. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits the call as
    /// the *single* probe for that window; further callers are rejected
    /// until the probe resolves (or its lease — one cooldown — expires, in
    /// case the probing caller wedged and never reported back).
    pub fn allow(&mut self, now_ns: u64) -> bool {
        let cooldown_ns = u64::try_from(self.cooldown.as_nanos()).unwrap_or(u64::MAX);
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ns >= self.opened_at_ns.saturating_add(cooldown_ns) {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = true;
                    self.probe_started_ns = now_ns;
                    self.probes += 1;
                    true
                } else {
                    self.rejected += 1;
                    false
                }
            }
            BreakerState::HalfOpen => {
                let probe_stale = now_ns >= self.probe_started_ns.saturating_add(cooldown_ns);
                if self.probe_in_flight && !probe_stale {
                    self.rejected += 1;
                    false
                } else {
                    self.probe_in_flight = true;
                    self.probe_started_ns = now_ns;
                    self.probes += 1;
                    true
                }
            }
        }
    }

    /// Records a successful call, closing the breaker if it was half-open.
    pub fn record_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.reclosed += 1;
        }
        self.state = BreakerState::Closed;
        self.probe_in_flight = false;
        self.consecutive_failures = 0;
    }

    /// Records a failed call at time `now_ns`, opening the breaker when the
    /// consecutive-failure threshold is reached or a half-open probe fails.
    pub fn record_failure(&mut self, now_ns: u64) {
        self.probe_in_flight = false;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.opened_at_ns = now_ns;
            self.opened += 1;
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Copies the observable counters out for reporting.
    pub fn snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            opened: self.opened,
            reclosed: self.reclosed,
            rejected: self.rejected,
            probes: self.probes,
            consecutive_failures: self.consecutive_failures,
        }
    }
}

/// Observable counters of a [`CircuitBreaker`], surfaced in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// State at snapshot time.
    pub state: BreakerState,
    /// Times the breaker tripped open.
    pub opened: u64,
    /// Times a half-open probe succeeded and the breaker reclosed.
    pub reclosed: u64,
    /// Calls rejected while open.
    pub rejected: u64,
    /// Probe calls admitted while transitioning to half-open.
    pub probes: u64,
    /// Consecutive failures at snapshot time.
    pub consecutive_failures: u32,
}

/// What a module does with a frame once retries and the circuit breaker
/// have given up on a service call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// Propagate the error; the frame dies and its flow-control credit is
    /// reclaimed (the paper's drop-at-source semantics, moved mid-pipe).
    #[default]
    DropFrame,
    /// Serve the most recent successful response for the same service from
    /// a per-module cache, keeping the pipeline delivering (stale) results
    /// through an outage. Falls back to dropping when the cache is cold.
    LastKnownGood,
}

/// Resilience knobs carried by the runtime configuration.
///
/// The `Default` value reproduces the pre-resilience runtime exactly: one
/// attempt per call, breaker disabled, drop-frame degradation and the
/// historical 30-second service deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Retry policy for service calls.
    pub retry: RetryPolicy,
    /// Per-call deadline for a single service request/response exchange
    /// (replaces the old hardcoded 30 s).
    pub service_call_timeout: Duration,
    /// Consecutive failures that trip a service's breaker; `0` disables
    /// circuit breaking.
    pub breaker_failure_threshold: u32,
    /// How long a tripped breaker stays open before admitting a half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// What modules do once a call is abandoned.
    pub degradation: DegradationPolicy,
    /// Reclaims the credit of a frame that produced no completion signal
    /// within this duration (a frame lost in transit, e.g. across a dead
    /// link). `None` disables the lease and preserves seed behaviour.
    pub credit_timeout: Option<Duration>,
    /// Base seed for deterministic retry jitter (per-module streams are
    /// derived via [`seed_for`]).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::none(),
            service_call_timeout: Duration::from_secs(30),
            breaker_failure_threshold: 0,
            breaker_cooldown: Duration::from_millis(250),
            degradation: DegradationPolicy::DropFrame,
            credit_timeout: None,
            seed: 0,
        }
    }
}

impl ResilienceConfig {
    /// Whether circuit breaking is enabled.
    pub fn breaker_enabled(&self) -> bool {
        self.breaker_failure_threshold > 0
    }

    /// Builds a breaker from the configured threshold and cooldown.
    pub fn make_breaker(&self) -> CircuitBreaker {
        CircuitBreaker::new(self.breaker_failure_threshold.max(1), self.breaker_cooldown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_uniform() {
        let mut a = SeededJitter::new(42);
        let mut b = SeededJitter::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededJitter::new(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = c.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} not near 0.5");
    }

    #[test]
    fn seed_for_separates_names() {
        assert_ne!(seed_for(1, "detector"), seed_for(1, "classifier"));
        assert_eq!(seed_for(1, "detector"), seed_for(1, "detector"));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy =
            RetryPolicy::exponential(5, Duration::from_millis(10), Duration::from_millis(40))
                .with_jitter(0.0);
        let mut j = SeededJitter::new(0);
        assert_eq!(policy.backoff(1, &mut j), Duration::from_millis(10));
        assert_eq!(policy.backoff(2, &mut j), Duration::from_millis(20));
        assert_eq!(policy.backoff(3, &mut j), Duration::from_millis(40));
        assert_eq!(policy.backoff(4, &mut j), Duration::from_millis(40));
    }

    #[test]
    fn backoff_jitter_stays_in_band() {
        let policy =
            RetryPolicy::exponential(3, Duration::from_millis(100), Duration::from_secs(1))
                .with_jitter(0.5);
        let mut j = SeededJitter::new(9);
        for _ in 0..100 {
            let b = policy.backoff(1, &mut j);
            assert!(b >= Duration::from_millis(50), "{b:?}");
            assert!(b < Duration::from_millis(150), "{b:?}");
        }
    }

    #[test]
    fn no_retry_policy_never_sleeps() {
        let mut j = SeededJitter::new(3);
        assert_eq!(RetryPolicy::none().backoff(1, &mut j), Duration::ZERO);
    }

    #[test]
    fn breaker_full_lifecycle() {
        let mut b = CircuitBreaker::new(3, Duration::from_millis(10));
        let ms = |m: u64| m * 1_000_000;
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(ms(0)));
        b.record_failure(ms(0));
        b.record_failure(ms(1));
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(ms(2));
        assert_eq!(b.state(), BreakerState::Open);
        // Rejected while cooling down.
        assert!(!b.allow(ms(5)));
        assert!(!b.allow(ms(11)));
        // Cooldown elapsed (opened at 2 ms + 10 ms): half-open probe.
        assert!(b.allow(ms(12)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let snap = b.snapshot();
        assert_eq!(snap.opened, 1);
        assert_eq!(snap.reclosed, 1);
        assert_eq!(snap.rejected, 2);
        assert_eq!(snap.probes, 1);
        assert_eq!(snap.consecutive_failures, 0);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(20_000_000));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure(20_000_000);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.snapshot().opened, 2);
        // Cooldown restarts from the re-open time.
        assert!(!b.allow(25_000_000));
        assert!(b.allow(31_000_000));
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(3, Duration::from_millis(10));
        b.record_failure(0);
        b.record_failure(0);
        b.record_success();
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        // Regression for batched dispatch: a drained batch of calls arriving
        // together during the half-open window must consume a single probe,
        // not one per batch slot.
        let mut b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.record_failure(0);
        let t = 20_000_000;
        let admitted: Vec<bool> = (0..8).map(|_| b.allow(t)).collect();
        assert_eq!(
            admitted.iter().filter(|a| **a).count(),
            1,
            "half-open admitted {admitted:?}"
        );
        assert!(admitted[0], "the first caller takes the probe");
        let snap = b.snapshot();
        assert_eq!(snap.probes, 1);
        assert_eq!(snap.rejected, 7);
        // The probe resolving releases the window.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(t + 1));
    }

    #[test]
    fn failed_probe_releases_the_window_for_the_next_cooldown() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.record_failure(0);
        let ms = |m: u64| m * 1_000_000;
        assert!(b.allow(ms(20)));
        b.record_failure(ms(20));
        assert_eq!(b.state(), BreakerState::Open);
        // Next window admits a fresh (single) probe again.
        assert!(b.allow(ms(31)));
        assert!(!b.allow(ms(31)));
        assert_eq!(b.snapshot().probes, 2);
    }

    #[test]
    fn wedged_probe_lease_expires_after_a_cooldown() {
        // A caller that took the probe and never reported back must not
        // wedge the breaker half-open forever.
        let mut b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.record_failure(0);
        let ms = |m: u64| m * 1_000_000;
        assert!(b.allow(ms(20))); // probe taken, caller wedges
        assert!(!b.allow(ms(25)));
        assert!(b.allow(ms(30)), "probe lease expired; re-probe allowed");
        assert_eq!(b.snapshot().probes, 2);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        let _ = CircuitBreaker::new(0, Duration::from_millis(10));
    }

    #[test]
    fn default_config_matches_seed_behaviour() {
        let cfg = ResilienceConfig::default();
        assert_eq!(cfg.retry.max_attempts, 1);
        assert!(!cfg.breaker_enabled());
        assert_eq!(cfg.degradation, DegradationPolicy::DropFrame);
        assert_eq!(cfg.service_call_timeout, Duration::from_secs(30));
        assert_eq!(cfg.credit_timeout, None);
    }
}
