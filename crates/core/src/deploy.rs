//! Deployment planning: devices, placements, service bindings and the
//! modeled-latency placement optimiser.
//!
//! The paper deploys modules manually ("we move this computation to a
//! desktop", §4.1) and names automatic deployment as future work (§7). This
//! module implements both: [`plan`] validates and wires an explicit
//! placement, and [`autoplace`] searches placements using a per-frame
//! latency model — which also powers the placement ablation bench.

use crate::error::PipelineError;
use crate::spec::PipelineSpec;
use std::collections::{BTreeMap, BTreeSet};

/// A heterogeneous edge device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Unique device name.
    pub name: String,
    /// Compute speed relative to the reference device (2.0 = twice as
    /// fast). Module/service costs divide by this.
    pub speed_factor: f64,
    /// Executor cores available to services on this device.
    pub cores: u32,
    /// Whether the device can run containers (paper §2.2: "we can only
    /// deploy the services on the devices that support containers").
    pub supports_containers: bool,
    /// Service images preinstalled on this device.
    pub installed_services: Vec<String>,
}

impl DeviceSpec {
    /// Creates a container-less device (phones, TVs in the paper's setup
    /// run only modules).
    pub fn new(name: impl Into<String>, speed_factor: f64) -> Self {
        DeviceSpec {
            name: name.into(),
            speed_factor,
            cores: 1,
            supports_containers: false,
            installed_services: Vec::new(),
        }
    }

    /// Enables container support with `cores` service executors.
    pub fn with_containers(mut self, cores: u32) -> Self {
        self.supports_containers = true;
        self.cores = cores.max(1);
        self
    }

    /// Preinstalls a service image.
    ///
    /// # Panics
    ///
    /// Panics if the device does not support containers.
    pub fn with_service(mut self, service: impl Into<String>) -> Self {
        assert!(
            self.supports_containers,
            "services require container support"
        );
        self.installed_services.push(service.into());
        self
    }

    /// Whether `service` is installed here.
    pub fn has_service(&self, service: &str) -> bool {
        self.installed_services.iter().any(|s| s == service)
    }
}

/// A module → device assignment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Placement {
    assignments: BTreeMap<String, String>,
}

impl Placement {
    /// Creates an empty placement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `module` to `device` (builder style).
    pub fn assign(mut self, module: impl Into<String>, device: impl Into<String>) -> Self {
        self.assignments.insert(module.into(), device.into());
        self
    }

    /// The device assigned to `module`.
    pub fn device_for(&self, module: &str) -> Option<&str> {
        self.assignments.get(module).map(String::as_str)
    }

    /// Iterates `(module, device)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.assignments
            .iter()
            .map(|(m, d)| (m.as_str(), d.as_str()))
    }

    /// Number of assigned modules.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }
}

/// How a module reaches one of its services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceBinding {
    /// The calling module.
    pub module: String,
    /// The service name.
    pub service: String,
    /// The device hosting the service instance.
    pub device: String,
    /// Whether the call crosses devices (the baseline's remote API call) or
    /// stays local (VideoPipe's co-location).
    pub remote: bool,
}

/// A pipeline edge annotated with its placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedEdge {
    /// Upstream module.
    pub from: String,
    /// Downstream module.
    pub to: String,
    /// Device of the upstream module.
    pub from_device: String,
    /// Device of the downstream module.
    pub to_device: String,
    /// Whether the edge crosses devices (frames must be encoded and sent
    /// over the network).
    pub cross_device: bool,
}

/// A validated, fully wired deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// The pipeline being deployed.
    pub pipeline: PipelineSpec,
    /// The devices participating.
    pub devices: Vec<DeviceSpec>,
    /// Module placements.
    pub placement: Placement,
    /// Resolved service bindings (one per module × service).
    pub service_bindings: Vec<ServiceBinding>,
    /// Placed edges.
    pub edges: Vec<PlannedEdge>,
}

impl DeploymentPlan {
    /// The device spec by name.
    pub fn device(&self, name: &str) -> Option<&DeviceSpec> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// The binding for `(module, service)`.
    pub fn binding(&self, module: &str, service: &str) -> Option<&ServiceBinding> {
        self.service_bindings
            .iter()
            .find(|b| b.module == module && b.service == service)
    }

    /// Module names placed on `device`.
    pub fn modules_on(&self, device: &str) -> Vec<&str> {
        self.pipeline
            .modules
            .iter()
            .filter(|m| self.placement.device_for(&m.name) == Some(device))
            .map(|m| m.name.as_str())
            .collect()
    }

    /// Number of remote service bindings (0 means fully co-located, the
    /// VideoPipe ideal).
    pub fn remote_binding_count(&self) -> usize {
        self.service_bindings.iter().filter(|b| b.remote).count()
    }
}

/// Validates `placement` of `spec` onto `devices` and resolves all wiring.
///
/// Service resolution prefers a co-located instance (the VideoPipe design);
/// when the module's device lacks the service, the binding falls back to a
/// remote device that has it (the baseline architecture).
///
/// # Errors
///
/// Returns [`PipelineError`] when the spec is invalid, a module is
/// unassigned, a device is unknown, a device hosts services without
/// container support, or a required service is installed nowhere.
pub fn plan(
    spec: &PipelineSpec,
    devices: &[DeviceSpec],
    placement: &Placement,
) -> Result<DeploymentPlan, PipelineError> {
    spec.validate()?;
    if devices.is_empty() {
        return Err(PipelineError::Deploy("no devices".into()));
    }
    let mut names = BTreeSet::new();
    for d in devices {
        if !names.insert(d.name.as_str()) {
            return Err(PipelineError::Deploy(format!(
                "duplicate device name {:?}",
                d.name
            )));
        }
        if !d.installed_services.is_empty() && !d.supports_containers {
            return Err(PipelineError::Deploy(format!(
                "device {:?} has services but no container support",
                d.name
            )));
        }
        if d.speed_factor <= 0.0 || !d.speed_factor.is_finite() {
            return Err(PipelineError::Deploy(format!(
                "device {:?} has invalid speed factor",
                d.name
            )));
        }
    }

    let device_of = |module: &str| -> Result<&str, PipelineError> {
        let device = placement
            .device_for(module)
            .ok_or_else(|| PipelineError::Deploy(format!("module {module:?} not placed")))?;
        if !names.contains(device) {
            return Err(PipelineError::Deploy(format!(
                "module {module:?} placed on unknown device {device:?}"
            )));
        }
        Ok(device)
    };

    // Resolve service bindings.
    let mut service_bindings = Vec::new();
    for m in &spec.modules {
        let module_device = device_of(&m.name)?;
        for service in &m.services {
            let local = devices
                .iter()
                .find(|d| d.name == module_device && d.has_service(service));
            let binding = if local.is_some() {
                ServiceBinding {
                    module: m.name.clone(),
                    service: service.clone(),
                    device: module_device.to_string(),
                    remote: false,
                }
            } else {
                let host = devices
                    .iter()
                    .find(|d| d.has_service(service))
                    .ok_or_else(|| PipelineError::ServiceUnavailable {
                        module: m.name.clone(),
                        service: service.clone(),
                    })?;
                ServiceBinding {
                    module: m.name.clone(),
                    service: service.clone(),
                    device: host.name.clone(),
                    remote: true,
                }
            };
            service_bindings.push(binding);
        }
    }

    // Place edges.
    let mut edges = Vec::new();
    for e in spec.edges() {
        let from_device = device_of(&e.from)?.to_string();
        let to_device = device_of(&e.to)?.to_string();
        let cross_device = from_device != to_device;
        edges.push(PlannedEdge {
            from: e.from,
            to: e.to,
            from_device,
            to_device,
            cross_device,
        });
    }

    Ok(DeploymentPlan {
        pipeline: spec.clone(),
        devices: devices.to_vec(),
        placement: placement.clone(),
        service_bindings,
        edges,
    })
}

/// Parameters of the per-frame latency model used by [`estimate_latency`]
/// and [`autoplace`].
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Handler cost per module (reference device), nanoseconds.
    pub module_cost_ns: BTreeMap<String, u64>,
    /// Fallback handler cost, nanoseconds.
    pub default_module_cost_ns: u64,
    /// Compute cost per service (reference device), nanoseconds.
    pub service_cost_ns: BTreeMap<String, u64>,
    /// Request payload size per service, bytes (frames are big, features
    /// are small).
    pub service_request_bytes: BTreeMap<String, usize>,
    /// Fallback request size, bytes.
    pub default_request_bytes: usize,
    /// Response payload size, bytes.
    pub response_bytes: usize,
    /// Encoded frame size crossing a pipeline edge, bytes.
    pub frame_bytes: usize,
    /// Non-frame edge payload size, bytes.
    pub result_bytes: usize,
    /// One-way network latency, nanoseconds.
    pub link_latency_ns: u64,
    /// Network bandwidth, bits per second.
    pub link_bandwidth_bps: u64,
    /// Same-device message handoff cost, nanoseconds.
    pub ipc_ns: u64,
}

impl Default for CostParams {
    /// Wi-Fi-class defaults; the calibrated profile in `videopipe-sim`
    /// overrides per-module/service costs.
    fn default() -> Self {
        CostParams {
            module_cost_ns: BTreeMap::new(),
            default_module_cost_ns: 1_000_000,
            service_cost_ns: BTreeMap::new(),
            service_request_bytes: BTreeMap::new(),
            default_request_bytes: 2_048,
            response_bytes: 512,
            frame_bytes: 12_000,
            result_bytes: 512,
            link_latency_ns: 2_500_000,
            link_bandwidth_bps: 100_000_000,
            ipc_ns: 30_000,
        }
    }
}

impl CostParams {
    /// One-way transfer time for `bytes` over the modeled link.
    pub fn link_time_ns(&self, bytes: usize) -> u64 {
        self.link_latency_ns
            + (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.link_bandwidth_bps
    }

    fn module_cost(&self, module: &str) -> u64 {
        *self
            .module_cost_ns
            .get(module)
            .unwrap_or(&self.default_module_cost_ns)
    }

    fn service_cost(&self, service: &str) -> u64 {
        *self.service_cost_ns.get(service).unwrap_or(&1_000_000)
    }

    fn request_bytes(&self, service: &str) -> usize {
        *self
            .service_request_bytes
            .get(service)
            .unwrap_or(&self.default_request_bytes)
    }
}

/// Estimates the per-frame latency (ns) of a deployment as the longest
/// source→sink path: module handler costs (scaled by device speed), service
/// calls (local IPC or remote round trip), and edge transfers.
pub fn estimate_latency(plan: &DeploymentPlan, params: &CostParams) -> u64 {
    let order = match plan.pipeline.topo_order() {
        Ok(o) => o,
        Err(_) => return u64::MAX,
    };
    let speed = |device: &str| {
        plan.device(device)
            .map(|d| d.speed_factor)
            .unwrap_or(1.0)
            .max(1e-6)
    };

    // Node cost: handler + service calls.
    let node_cost = |module: &str| -> u64 {
        let device = plan.placement.device_for(module).unwrap_or_default();
        let mut cost = (params.module_cost(module) as f64 / speed(device)) as u64;
        if let Some(spec) = plan.pipeline.module(module) {
            for service in &spec.services {
                let binding = plan.binding(module, service);
                let host = binding.map(|b| b.device.as_str()).unwrap_or(device);
                let compute = (params.service_cost(service) as f64 / speed(host)) as u64;
                let remote = binding.map(|b| b.remote).unwrap_or(false);
                if remote {
                    cost += params.link_time_ns(params.request_bytes(service))
                        + compute
                        + params.link_time_ns(params.response_bytes);
                } else {
                    cost += 2 * params.ipc_ns + compute;
                }
            }
        }
        cost
    };

    // Longest path accumulation in topo order.
    let mut dist: BTreeMap<&str, u64> = BTreeMap::new();
    let mut best = 0u64;
    for name in &order {
        let incoming = *dist.get(name.as_str()).unwrap_or(&0);
        let total = incoming + node_cost(name);
        best = best.max(total);
        if let Some(spec) = plan.pipeline.module(name) {
            for next in &spec.next_modules {
                let edge = plan.edges.iter().find(|e| &e.from == name && e.to == *next);
                let carries_frame = plan.pipeline.sources().iter().any(|s| s.name == *name);
                let edge_cost = match edge {
                    Some(e) if e.cross_device => {
                        let bytes = if carries_frame {
                            params.frame_bytes
                        } else {
                            params.result_bytes
                        };
                        params.link_time_ns(bytes)
                    }
                    _ => params.ipc_ns,
                };
                let entry = dist.entry(next.as_str()).or_insert(0);
                *entry = (*entry).max(total + edge_cost);
            }
        }
    }
    best
}

/// Searches for the placement minimising [`estimate_latency`].
///
/// Exhaustive when `devices.len() ^ modules.len() <= max_enumerate`
/// (default 1 << 16 via [`autoplace`]); greedy (topo order, locally best
/// device) beyond that.
///
/// # Errors
///
/// Returns an error when no valid placement exists (e.g. a required service
/// is installed nowhere).
pub fn autoplace(
    spec: &PipelineSpec,
    devices: &[DeviceSpec],
    params: &CostParams,
) -> Result<(Placement, u64), PipelineError> {
    autoplace_with_limit(spec, devices, params, 1 << 16)
}

/// [`autoplace`] with device-affinity pins: modules in `pins` are fixed to
/// their device (camera hardware lives on the phone, the screen on the TV)
/// and only the remaining modules are searched.
///
/// # Errors
///
/// See [`autoplace`]; additionally errors when a pin names an unknown
/// module.
pub fn autoplace_pinned(
    spec: &PipelineSpec,
    devices: &[DeviceSpec],
    params: &CostParams,
    pins: &Placement,
) -> Result<(Placement, u64), PipelineError> {
    for (module, _) in pins.iter() {
        if spec.module(module).is_none() {
            return Err(PipelineError::Deploy(format!(
                "pin references unknown module {module:?}"
            )));
        }
    }
    autoplace_impl(spec, devices, params, pins, 1 << 16)
}

/// [`autoplace`] with an explicit enumeration budget.
///
/// # Errors
///
/// See [`autoplace`].
pub fn autoplace_with_limit(
    spec: &PipelineSpec,
    devices: &[DeviceSpec],
    params: &CostParams,
    max_enumerate: u64,
) -> Result<(Placement, u64), PipelineError> {
    autoplace_impl(spec, devices, params, &Placement::new(), max_enumerate)
}

/// Recomputes a deployment after `dead_device` is confirmed lost.
///
/// Modules already on surviving devices stay exactly where they are (their
/// state, threads and caches are intact — moving them would widen the
/// outage), so only the orphans stranded on the dead device are re-placed,
/// via [`autoplace_pinned`] restricted to the survivors. `affinity` pins
/// win over current positions: a camera module affined to the phone is
/// re-pinned there even if the optimiser would rather move it.
///
/// # Errors
///
/// Returns [`PipelineError::Deploy`] when no device survives, and
/// propagates [`PipelineError::ServiceUnavailable`] when a service the
/// pipeline needs was installed only on the dead device — the pipeline
/// genuinely cannot heal without it.
pub fn replan_after_device_loss(
    current: &DeploymentPlan,
    dead_device: &str,
    params: &CostParams,
    affinity: &Placement,
) -> Result<DeploymentPlan, PipelineError> {
    let survivors: Vec<DeviceSpec> = current
        .devices
        .iter()
        .filter(|d| d.name != dead_device)
        .cloned()
        .collect();
    if survivors.is_empty() {
        return Err(PipelineError::Deploy(format!(
            "no devices survive the loss of {dead_device:?}"
        )));
    }
    // Surface the un-healable case with a typed error: a service the
    // pipeline needs that was installed only on the dead device.
    for m in &current.pipeline.modules {
        for service in &m.services {
            if !survivors.iter().any(|d| d.has_service(service)) {
                return Err(PipelineError::ServiceUnavailable {
                    module: m.name.clone(),
                    service: service.clone(),
                });
            }
        }
    }
    let mut pins = Placement::new();
    for (module, device) in current.placement.iter() {
        if device != dead_device {
            pins = pins.assign(module, device);
        }
    }
    for (module, device) in affinity.iter() {
        if survivors.iter().any(|d| d.name == device) {
            pins = pins.assign(module, device);
        }
    }
    let (placement, _) = autoplace_pinned(&current.pipeline, &survivors, params, &pins)?;
    plan(&current.pipeline, &survivors, &placement)
}

fn autoplace_impl(
    spec: &PipelineSpec,
    devices: &[DeviceSpec],
    params: &CostParams,
    pins: &Placement,
    max_enumerate: u64,
) -> Result<(Placement, u64), PipelineError> {
    spec.validate()?;
    if devices.is_empty() {
        return Err(PipelineError::Deploy("no devices".into()));
    }
    let free_modules: Vec<&str> = spec
        .modules
        .iter()
        .map(|m| m.name.as_str())
        .filter(|m| pins.device_for(m).is_none())
        .collect();
    let n_free = free_modules.len() as u32;
    let combos = (devices.len() as u64).checked_pow(n_free);

    let with_pins = |placement: Placement| -> Placement {
        let mut out = placement;
        for (module, device) in pins.iter() {
            out = out.assign(module.to_string(), device.to_string());
        }
        out
    };

    if combos.map(|c| c <= max_enumerate).unwrap_or(false) {
        // Exhaustive enumeration over the free modules.
        let mut best: Option<(Placement, u64)> = None;
        let mut indices = vec![0usize; free_modules.len()];
        loop {
            let mut placement = Placement::new();
            for (m, &di) in free_modules.iter().zip(indices.iter()) {
                placement = placement.assign(m.to_string(), devices[di].name.clone());
            }
            let placement = with_pins(placement);
            if let Ok(p) = plan(spec, devices, &placement) {
                let cost = estimate_latency(&p, params);
                if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
                    best = Some((placement, cost));
                }
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == indices.len() {
                    return best
                        .ok_or_else(|| PipelineError::Deploy("no valid placement exists".into()));
                }
                indices[i] += 1;
                if indices[i] < devices.len() {
                    break;
                }
                indices[i] = 0;
                i += 1;
            }
        }
    }

    // Greedy: place free modules in topo order, trying each device and
    // keeping the partial plan that minimises the estimate (the remaining
    // modules temporarily parked on the first device).
    let order = spec.topo_order()?;
    let mut placement = with_pins(Placement::new());
    for name in &order {
        if placement.device_for(name).is_some() {
            continue; // pinned
        }
        let mut best: Option<(String, u64)> = None;
        for d in devices {
            let mut candidate = placement.clone().assign(name.clone(), d.name.clone());
            for other in &order {
                if candidate.device_for(other).is_none() {
                    candidate = candidate.assign(other.clone(), devices[0].name.clone());
                }
            }
            if let Ok(p) = plan(spec, devices, &candidate) {
                let cost = estimate_latency(&p, params);
                if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
                    best = Some((d.name.clone(), cost));
                }
            }
        }
        let (device, _) =
            best.ok_or_else(|| PipelineError::Deploy("no valid placement exists".into()))?;
        placement = placement.assign(name.clone(), device);
    }
    let p = plan(spec, devices, &placement)?;
    let cost = estimate_latency(&p, params);
    Ok((placement, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModuleSpec;

    fn fitness_spec() -> PipelineSpec {
        PipelineSpec::new("fitness")
            .with_module(ModuleSpec::new("video", "V").with_next("pose"))
            .with_module(
                ModuleSpec::new("pose", "P")
                    .with_service("pose_detector")
                    .with_next("display"),
            )
            .with_module(ModuleSpec::new("display", "D"))
    }

    fn devices() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::new("phone", 0.6),
            DeviceSpec::new("desktop", 2.0)
                .with_containers(2)
                .with_service("pose_detector"),
            DeviceSpec::new("tv", 0.8),
        ]
    }

    fn videopipe_placement() -> Placement {
        Placement::new()
            .assign("video", "phone")
            .assign("pose", "desktop")
            .assign("display", "tv")
    }

    #[test]
    fn plan_colocated_service_is_local() {
        let plan = plan(&fitness_spec(), &devices(), &videopipe_placement()).unwrap();
        let binding = plan.binding("pose", "pose_detector").unwrap();
        assert!(!binding.remote);
        assert_eq!(binding.device, "desktop");
        assert_eq!(plan.remote_binding_count(), 0);
        assert_eq!(plan.edges.len(), 2);
        assert!(plan.edges.iter().all(|e| e.cross_device));
        assert_eq!(plan.modules_on("desktop"), vec!["pose"]);
    }

    #[test]
    fn plan_baseline_service_is_remote() {
        // All modules on the phone: pose service resolves remotely.
        let placement = Placement::new()
            .assign("video", "phone")
            .assign("pose", "phone")
            .assign("display", "phone");
        let plan = plan(&fitness_spec(), &devices(), &placement).unwrap();
        let binding = plan.binding("pose", "pose_detector").unwrap();
        assert!(binding.remote);
        assert_eq!(binding.device, "desktop");
        assert!(plan.edges.iter().all(|e| !e.cross_device));
    }

    #[test]
    fn plan_rejects_unplaced_and_unknown() {
        let p = Placement::new().assign("video", "phone");
        assert!(plan(&fitness_spec(), &devices(), &p).is_err());
        let p = videopipe_placement().assign("pose", "ghost-device");
        assert!(plan(&fitness_spec(), &devices(), &p).is_err());
    }

    #[test]
    fn plan_rejects_missing_service() {
        let devices = vec![DeviceSpec::new("phone", 1.0)];
        let placement = Placement::new()
            .assign("video", "phone")
            .assign("pose", "phone")
            .assign("display", "phone");
        let err = plan(&fitness_spec(), &devices, &placement).unwrap_err();
        assert!(matches!(err, PipelineError::ServiceUnavailable { .. }));
    }

    #[test]
    fn plan_rejects_services_without_containers() {
        let mut d = DeviceSpec::new("weird", 1.0);
        d.installed_services.push("pose_detector".into());
        assert!(plan(&fitness_spec(), &[d], &videopipe_placement()).is_err());
    }

    #[test]
    fn plan_rejects_duplicate_devices_and_bad_speed() {
        let ds = vec![DeviceSpec::new("a", 1.0), DeviceSpec::new("a", 1.0)];
        assert!(plan(&fitness_spec(), &ds, &videopipe_placement()).is_err());
        let ds = vec![DeviceSpec::new("phone", 0.0)];
        assert!(plan(&fitness_spec(), &ds, &videopipe_placement()).is_err());
    }

    #[test]
    fn colocated_estimate_beats_baseline() {
        // The paper's headline claim, at the model level.
        let spec = fitness_spec();
        let devices = devices();
        let mut params = CostParams::default();
        params
            .service_cost_ns
            .insert("pose_detector".into(), 170_000_000);
        params
            .service_request_bytes
            .insert("pose_detector".into(), 12_000);

        let vp = plan(&spec, &devices, &videopipe_placement()).unwrap();
        let baseline_placement = Placement::new()
            .assign("video", "phone")
            .assign("pose", "phone")
            .assign("display", "phone");
        let bl = plan(&spec, &devices, &baseline_placement).unwrap();

        let vp_lat = estimate_latency(&vp, &params);
        let bl_lat = estimate_latency(&bl, &params);
        assert!(
            vp_lat < bl_lat,
            "VideoPipe {vp_lat}ns should beat baseline {bl_lat}ns"
        );
    }

    #[test]
    fn autoplace_colocates_pose_with_its_service() {
        let mut params = CostParams::default();
        params
            .service_cost_ns
            .insert("pose_detector".into(), 170_000_000);
        let (placement, cost) = autoplace(&fitness_spec(), &devices(), &params).unwrap();
        assert_eq!(placement.device_for("pose"), Some("desktop"));
        assert!(cost > 0);
    }

    #[test]
    fn autoplace_greedy_matches_feasibility() {
        // Force the greedy path with a tiny enumeration budget.
        let mut params = CostParams::default();
        params
            .service_cost_ns
            .insert("pose_detector".into(), 170_000_000);
        let (placement, _) = autoplace_with_limit(&fitness_spec(), &devices(), &params, 1).unwrap();
        // Greedy must still produce a valid plan.
        assert!(plan(&fitness_spec(), &devices(), &placement).is_ok());
    }

    #[test]
    fn autoplace_pinned_respects_pins() {
        let mut params = CostParams::default();
        params
            .service_cost_ns
            .insert("pose_detector".into(), 170_000_000);
        // Without pins the optimiser would park everything on the fast
        // desktop; pinning the camera to the phone forces realism.
        let pins = Placement::new().assign("video", "phone");
        let (placement, _) = autoplace_pinned(&fitness_spec(), &devices(), &params, &pins).unwrap();
        assert_eq!(placement.device_for("video"), Some("phone"));
        assert_eq!(placement.device_for("pose"), Some("desktop"));
        // Pinning an unknown module errors.
        let bad = Placement::new().assign("ghost", "phone");
        assert!(autoplace_pinned(&fitness_spec(), &devices(), &params, &bad).is_err());
    }

    #[test]
    fn autoplace_errors_when_impossible() {
        let devices = vec![DeviceSpec::new("phone", 1.0)]; // no service anywhere
        assert!(autoplace(&fitness_spec(), &devices, &CostParams::default()).is_err());
    }

    #[test]
    fn replan_moves_only_the_orphans() {
        let devices = vec![
            DeviceSpec::new("phone", 0.6),
            DeviceSpec::new("desktop", 2.0)
                .with_containers(2)
                .with_service("pose_detector"),
            DeviceSpec::new("tv", 0.8)
                .with_containers(1)
                .with_service("pose_detector"),
        ];
        let before = plan(&fitness_spec(), &devices, &videopipe_placement()).unwrap();
        let healed = replan_after_device_loss(
            &before,
            "desktop",
            &CostParams::default(),
            &Placement::new(),
        )
        .unwrap();
        // Survivors keep their modules; the orphan lands on a survivor.
        assert_eq!(healed.placement.device_for("video"), Some("phone"));
        assert_eq!(healed.placement.device_for("display"), Some("tv"));
        let new_home = healed.placement.device_for("pose").unwrap();
        assert_ne!(new_home, "desktop");
        assert!(healed.devices.iter().all(|d| d.name != "desktop"));
        // The service binding re-resolves against survivors.
        assert_eq!(
            healed.binding("pose", "pose_detector").unwrap().device,
            "tv"
        );
    }

    #[test]
    fn replan_respects_affinity_pins() {
        let devices = vec![
            DeviceSpec::new("phone", 0.6),
            DeviceSpec::new("desktop", 2.0)
                .with_containers(2)
                .with_service("pose_detector"),
            DeviceSpec::new("tv", 0.8),
        ];
        // Everything starts on the tv except pose; kill the tv.
        let placement = Placement::new()
            .assign("video", "tv")
            .assign("pose", "desktop")
            .assign("display", "tv");
        let before = plan(&fitness_spec(), &devices, &placement).unwrap();
        let affinity = Placement::new().assign("video", "phone");
        let healed =
            replan_after_device_loss(&before, "tv", &CostParams::default(), &affinity).unwrap();
        assert_eq!(healed.placement.device_for("video"), Some("phone"));
        assert_eq!(healed.placement.device_for("pose"), Some("desktop"));
    }

    #[test]
    fn replan_errors_when_the_only_service_host_dies() {
        let before = plan(&fitness_spec(), &devices(), &videopipe_placement()).unwrap();
        // Only the desktop hosts pose_detector.
        let err = replan_after_device_loss(
            &before,
            "desktop",
            &CostParams::default(),
            &Placement::new(),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::ServiceUnavailable { .. }));
    }

    #[test]
    fn replan_errors_when_no_device_survives() {
        let spec = PipelineSpec::new("solo").with_module(ModuleSpec::new("only", "O"));
        let devices = vec![DeviceSpec::new("phone", 1.0)];
        let placement = Placement::new().assign("only", "phone");
        let before = plan(&spec, &devices, &placement).unwrap();
        assert!(replan_after_device_loss(
            &before,
            "phone",
            &CostParams::default(),
            &Placement::new()
        )
        .is_err());
    }

    #[test]
    fn link_time_accounts_latency_and_bandwidth() {
        let params = CostParams::default();
        let t_small = params.link_time_ns(100);
        let t_big = params.link_time_ns(100_000);
        assert!(t_big > t_small);
        assert!(t_small >= params.link_latency_ns);
        // 100 KB at 100 Mbit/s = 8 ms + latency.
        assert_eq!(
            params.link_time_ns(100_000),
            params.link_latency_ns + 8_000_000
        );
    }

    #[test]
    fn placement_accessors() {
        let p = videopipe_placement();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.device_for("video"), Some("phone"));
        assert_eq!(p.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "container")]
    fn with_service_requires_containers() {
        let _ = DeviceSpec::new("phone", 1.0).with_service("x");
    }
}
