//! Stateless services — the paper's container-hosted heavy lifting.
//!
//! Paper §2.2: "These services all receive needed data as input so they do
//! not require saving state. This allows the services to be shared among
//! different applications and also allows for horizontal scaling."
//!
//! Statelessness is enforced structurally: [`Service::handle`] takes
//! `&self`, so an implementation cannot accumulate per-request mutable state
//! without interior mutability (and none of the provided services use any).
//! The simulator exploits this: a service's *result* is independent of
//! timing, so data can be computed eagerly while queueing/compute time is
//! replayed on the virtual clock.

use crate::error::PipelineError;
use crate::message::Payload;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use videopipe_media::FrameStore;

/// A request to a stateless service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRequest {
    /// Operation name (services may expose several, e.g. the rep counter's
    /// `"fit"` and `"classify"`).
    pub op: String,
    /// Typed argument.
    pub payload: Payload,
}

impl ServiceRequest {
    /// Creates a request.
    pub fn new(op: impl Into<String>, payload: Payload) -> Self {
        ServiceRequest {
            op: op.into(),
            payload,
        }
    }

    /// Encodes `op` + payload for the wire (`[op_len u8][op][payload]`).
    pub fn encode(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let payload = self.payload.encode();
        let mut buf = bytes::BytesMut::with_capacity(2 + self.op.len() + payload.len());
        buf.put_u8(self.op.len().min(255) as u8);
        buf.put_slice(&self.op.as_bytes()[..self.op.len().min(255)]);
        buf.put_slice(&payload);
        buf.freeze()
    }

    /// Decodes a request produced by [`ServiceRequest::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadPayload`] on truncation or bad UTF-8.
    pub fn decode(buf: &[u8]) -> Result<Self, PipelineError> {
        if buf.is_empty() {
            return Err(PipelineError::BadPayload("empty service request"));
        }
        let op_len = buf[0] as usize;
        if buf.len() < 1 + op_len {
            return Err(PipelineError::BadPayload("truncated service request"));
        }
        let op = std::str::from_utf8(&buf[1..1 + op_len])
            .map_err(|_| PipelineError::BadPayload("op not utf-8"))?
            .to_string();
        let payload = Payload::decode(&buf[1 + op_len..])?;
        Ok(ServiceRequest { op, payload })
    }
}

/// A service response.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResponse {
    /// Typed result.
    pub payload: Payload,
}

impl ServiceResponse {
    /// Creates a response.
    pub fn new(payload: Payload) -> Self {
        ServiceResponse { payload }
    }

    /// Encodes the response payload for the wire.
    pub fn encode(&self) -> bytes::Bytes {
        self.payload.encode()
    }

    /// Decodes a response produced by [`ServiceResponse::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadPayload`] on malformed bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, PipelineError> {
        Ok(ServiceResponse {
            payload: Payload::decode(buf)?,
        })
    }
}

/// The modeled compute cost of a service invocation on the *reference*
/// device (speed factor 1.0). Used by the simulator and by the local
/// runtime's optional cost emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceCost {
    /// Fixed cost per invocation.
    pub base: Duration,
    /// Additional cost per KiB of request payload.
    pub per_kib: Duration,
    /// Fixed cost for the second and later requests of a micro-batch:
    /// setup work (model load, cache warm-up, kernel launch) is paid once by
    /// the first request and amortised by the rest. `None` means the service
    /// gains nothing from batching (`base` is charged every time).
    pub batched_base: Option<Duration>,
}

impl ServiceCost {
    /// A flat per-invocation cost.
    pub const fn flat(base: Duration) -> Self {
        ServiceCost {
            base,
            per_kib: Duration::ZERO,
            batched_base: None,
        }
    }

    /// Declares the amortised fixed cost for non-leading requests of a
    /// batch. Must not exceed `base` (a batch can't be slower per request
    /// than sequential dispatch under this model).
    ///
    /// # Panics
    ///
    /// Panics if `batched_base > base`.
    pub const fn with_batched_base(mut self, batched_base: Duration) -> Self {
        assert!(
            batched_base.as_nanos() <= self.base.as_nanos(),
            "batched_base must not exceed base"
        );
        self.batched_base = Some(batched_base);
        self
    }

    /// Total cost for a request of `payload_bytes`.
    pub fn for_bytes(&self, payload_bytes: usize) -> Duration {
        self.base + self.per_kib * (payload_bytes as u32 / 1024)
    }

    /// Cost contribution of one request inside a batch: the first request
    /// pays the full `base`, followers pay `batched_base` (or `base` when
    /// no discount is declared). The per-KiB term is always charged in full
    /// — payload bytes still have to be moved and decoded per request.
    pub fn for_batch_item(&self, first_in_batch: bool, payload_bytes: usize) -> Duration {
        let fixed = if first_in_batch {
            self.base
        } else {
            self.batched_base.unwrap_or(self.base)
        };
        fixed + self.per_kib * (payload_bytes as u32 / 1024)
    }

    /// Total modeled cost of serving `payload_sizes` as one batch. With a
    /// single element this equals [`ServiceCost::for_bytes`]; without a
    /// `batched_base` it equals the sequential sum.
    pub fn for_batch(&self, payload_sizes: &[usize]) -> Duration {
        payload_sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| self.for_batch_item(i == 0, bytes))
            .sum()
    }
}

/// A stateless service.
///
/// The `store` argument gives access to the device-local frame store so a
/// [`Payload::FrameRef`] request can be resolved without copying pixels —
/// the service and module share the device, which is exactly the co-location
/// the paper advocates.
pub trait Service: Send + Sync {
    /// The service's registered name (e.g. `"pose_detector"`).
    fn name(&self) -> &str;

    /// Handles one request. Must be pure modulo the frame store lookup.
    ///
    /// # Errors
    ///
    /// Implementations return [`PipelineError::Service`] for malformed
    /// requests and propagate store misses.
    fn handle(
        &self,
        request: &ServiceRequest,
        store: &FrameStore,
    ) -> Result<ServiceResponse, PipelineError>;

    /// Handles a micro-batch of requests, returning one result per request
    /// in order. The default implementation dispatches each request through
    /// [`Service::handle`] sequentially, so overriding is purely an
    /// optimisation — results must match the sequential path exactly.
    ///
    /// Implementations that can share work across a batch (one fused pixel
    /// scan, reused scratch buffers, a single model activation) override
    /// this; the executor calls it whenever its drain policy collected more
    /// than zero requests, so `requests` is never empty but is often a
    /// singleton.
    fn handle_batch(
        &self,
        requests: &[ServiceRequest],
        store: &FrameStore,
    ) -> Vec<Result<ServiceResponse, PipelineError>> {
        requests.iter().map(|r| self.handle(r, store)).collect()
    }

    /// The modeled compute cost of `request` on the reference device.
    fn cost(&self, request: &ServiceRequest) -> ServiceCost {
        let _ = request;
        ServiceCost::flat(Duration::from_millis(1))
    }
}

/// Helper for implementations: the canonical "wrong payload" error.
pub fn wrong_payload(service: &str, expected: &str, got: &Payload) -> PipelineError {
    PipelineError::Service {
        service: service.to_string(),
        reason: format!("expected {expected} payload, got {}", got.kind_name()),
    }
}

/// How a [`ChaosService`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ChaosMode {
    /// Fail every `n`-th request (1 = every request).
    FailEveryN(u64),
    /// Fail each request independently with `probability`, decided by a
    /// deterministic hash of `seed` and the request number — two runs with
    /// the same seed fail the same requests.
    FailWithProbability {
        /// Base seed for the per-request decision.
        seed: u64,
        /// Failure probability in `[0, 1]`.
        probability: f64,
    },
    /// Sleep `delay` before answering every `every`-th request (a wedged
    /// container or GC pause; exercises the caller's per-call deadline).
    DelayEveryN {
        /// Which requests are delayed (1 = all).
        every: u64,
        /// Injected wall-clock delay.
        delay: Duration,
    },
    /// Panic on every `n`-th request (a crashed executor; exercises
    /// supervision of the service thread).
    PanicEveryN(u64),
    /// Fail every request inside the wall-clock window
    /// `[after, after + duration)` measured from construction — a scheduled
    /// outage that drives a circuit breaker open and, once healed, back
    /// closed through a half-open probe.
    Outage {
        /// Outage start, relative to construction.
        after: Duration,
        /// Outage length.
        duration: Duration,
    },
}

/// A fault-injection decorator: wraps any service and misbehaves according
/// to a [`ChaosMode`]. Used by resilience tests to verify that the runtime
/// returns the frame's flow-control credit and keeps the pipeline alive
/// when a service misbehaves (a crashed container, in the paper's
/// deployment terms).
pub struct ChaosService {
    inner: Arc<dyn Service>,
    mode: ChaosMode,
    calls: std::sync::atomic::AtomicU64,
    started: std::time::Instant,
}

impl ChaosService {
    /// Wraps `inner`, failing every `fail_every`-th request (1 = every
    /// request).
    ///
    /// # Panics
    ///
    /// Panics if `fail_every` is zero.
    pub fn new(inner: Arc<dyn Service>, fail_every: u64) -> Self {
        assert!(fail_every > 0, "fail_every must be at least 1");
        Self::with_mode(inner, ChaosMode::FailEveryN(fail_every))
    }

    /// Wraps `inner` with an arbitrary chaos mode.
    ///
    /// # Panics
    ///
    /// Panics on degenerate modes: a zero `n`/`every`, or a probability
    /// outside `[0, 1]`.
    pub fn with_mode(inner: Arc<dyn Service>, mode: ChaosMode) -> Self {
        match mode {
            ChaosMode::FailEveryN(n) | ChaosMode::PanicEveryN(n) => {
                assert!(n > 0, "fail_every must be at least 1");
            }
            ChaosMode::DelayEveryN { every, .. } => {
                assert!(every > 0, "fail_every must be at least 1");
            }
            ChaosMode::FailWithProbability { probability, .. } => {
                assert!(
                    (0.0..=1.0).contains(&probability),
                    "probability must be in [0, 1]"
                );
            }
            ChaosMode::Outage { .. } => {}
        }
        ChaosService {
            inner,
            mode,
            calls: std::sync::atomic::AtomicU64::new(0),
            started: std::time::Instant::now(),
        }
    }

    /// Seeded probabilistic failures: each request fails independently with
    /// `probability`.
    pub fn probabilistic(inner: Arc<dyn Service>, seed: u64, probability: f64) -> Self {
        Self::with_mode(inner, ChaosMode::FailWithProbability { seed, probability })
    }

    /// Injected latency: every `every`-th request sleeps `delay` first.
    pub fn delaying(inner: Arc<dyn Service>, every: u64, delay: Duration) -> Self {
        Self::with_mode(inner, ChaosMode::DelayEveryN { every, delay })
    }

    /// Injected panics: every `every`-th request panics.
    pub fn panicking(inner: Arc<dyn Service>, every: u64) -> Self {
        Self::with_mode(inner, ChaosMode::PanicEveryN(every))
    }

    /// A scheduled outage window starting `after` construction and lasting
    /// `duration`.
    pub fn outage(inner: Arc<dyn Service>, after: Duration, duration: Duration) -> Self {
        Self::with_mode(inner, ChaosMode::Outage { after, duration })
    }

    /// Requests served so far (including failed ones).
    pub fn calls(&self) -> u64 {
        self.calls.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn injected_fault(&self, n: u64) -> PipelineError {
        PipelineError::Service {
            service: self.inner.name().to_string(),
            reason: format!("injected fault on request #{n}"),
        }
    }
}

impl Service for ChaosService {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn handle(
        &self,
        request: &ServiceRequest,
        store: &FrameStore,
    ) -> Result<ServiceResponse, PipelineError> {
        let n = self
            .calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        match self.mode {
            ChaosMode::FailEveryN(every) => {
                if n.is_multiple_of(every) {
                    return Err(self.injected_fault(n));
                }
            }
            ChaosMode::FailWithProbability { seed, probability } => {
                let roll = crate::resilience::SeededJitter::new(seed ^ n).next_f64();
                if roll < probability {
                    return Err(self.injected_fault(n));
                }
            }
            ChaosMode::DelayEveryN { every, delay } => {
                if n.is_multiple_of(every) {
                    std::thread::sleep(delay);
                }
            }
            ChaosMode::PanicEveryN(every) => {
                if n.is_multiple_of(every) {
                    panic!("injected panic on request #{n}");
                }
            }
            ChaosMode::Outage { after, duration } => {
                let t = self.started.elapsed();
                if t >= after && t < after + duration {
                    return Err(PipelineError::Service {
                        service: self.inner.name().to_string(),
                        reason: format!("injected outage (request #{n})"),
                    });
                }
            }
        }
        self.inner.handle(request, store)
    }

    fn cost(&self, request: &ServiceRequest) -> ServiceCost {
        self.inner.cost(request)
    }
}

impl std::fmt::Debug for ChaosService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosService")
            .field("inner", &self.inner.name())
            .field("mode", &self.mode)
            .field("calls", &self.calls())
            .finish()
    }
}

/// The set of service images installed on one device ("services are
/// preinstalled on some edge devices", paper §2.2).
#[derive(Clone, Default)]
pub struct ServiceRegistry {
    services: HashMap<String, Arc<dyn Service>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a service. Replaces any previous service with the same
    /// name.
    pub fn install(&mut self, service: Arc<dyn Service>) {
        self.services.insert(service.name().to_string(), service);
    }

    /// Looks up a service by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Service>> {
        self.services.get(name).cloned()
    }

    /// Whether `name` is installed.
    pub fn contains(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    /// Installed service names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.services.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of installed services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("services", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EchoService;
    impl Service for EchoService {
        fn name(&self) -> &str {
            "echo"
        }
        fn handle(
            &self,
            request: &ServiceRequest,
            _store: &FrameStore,
        ) -> Result<ServiceResponse, PipelineError> {
            Ok(ServiceResponse::new(request.payload.clone()))
        }
        fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
            ServiceCost::flat(Duration::from_millis(5))
        }
    }

    #[test]
    fn registry_install_and_lookup() {
        let mut reg = ServiceRegistry::new();
        assert!(reg.is_empty());
        reg.install(Arc::new(EchoService));
        assert!(reg.contains("echo"));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.names(), vec!["echo"]);
        let svc = reg.get("echo").unwrap();
        let store = FrameStore::new();
        let resp = svc
            .handle(&ServiceRequest::new("echo", Payload::Count(9)), &store)
            .unwrap();
        assert_eq!(resp.payload, Payload::Count(9));
        assert!(reg.get("ghost").is_none());
    }

    #[test]
    fn cost_model_scales_with_bytes() {
        let cost = ServiceCost {
            base: Duration::from_millis(10),
            per_kib: Duration::from_millis(1),
            batched_base: None,
        };
        assert_eq!(cost.for_bytes(0), Duration::from_millis(10));
        assert_eq!(cost.for_bytes(4096), Duration::from_millis(14));
        let flat = ServiceCost::flat(Duration::from_millis(3));
        assert_eq!(flat.for_bytes(1 << 20), Duration::from_millis(3));
    }

    #[test]
    fn batch_cost_amortises_the_base() {
        let cost = ServiceCost {
            base: Duration::from_millis(10),
            per_kib: Duration::from_millis(1),
            batched_base: None,
        }
        .with_batched_base(Duration::from_millis(2));
        // Leader pays full base, followers pay the amortised base; the
        // per-KiB term is charged in full for everyone.
        assert_eq!(cost.for_batch_item(true, 1024), Duration::from_millis(11));
        assert_eq!(cost.for_batch_item(false, 1024), Duration::from_millis(3));
        assert_eq!(cost.for_batch(&[1024]), cost.for_bytes(1024));
        assert_eq!(
            cost.for_batch(&[0, 0, 0, 0]),
            Duration::from_millis(10 + 3 * 2)
        );
        // Without a declared discount, a batch costs the sequential sum.
        let flat = ServiceCost::flat(Duration::from_millis(4));
        assert_eq!(flat.for_batch(&[0, 0, 0]), Duration::from_millis(12));
    }

    #[test]
    #[should_panic(expected = "batched_base must not exceed base")]
    fn batch_cost_rejects_discount_above_base() {
        let _ =
            ServiceCost::flat(Duration::from_millis(1)).with_batched_base(Duration::from_millis(2));
    }

    #[test]
    fn default_handle_batch_matches_sequential_handle() {
        // EchoService does not override handle_batch, so the default loop
        // must produce exactly what sequential handle calls produce.
        let svc = EchoService;
        let store = FrameStore::new();
        let requests: Vec<ServiceRequest> = (0..5)
            .map(|i| ServiceRequest::new("echo", Payload::Count(i)))
            .collect();
        let batched = svc.handle_batch(&requests, &store);
        assert_eq!(batched.len(), requests.len());
        for (req, result) in requests.iter().zip(batched) {
            assert_eq!(result.unwrap().payload, req.payload);
        }
    }

    #[test]
    fn chaos_schedule_advances_per_request_in_a_batch() {
        // The default handle_batch loops handle, so a FailEveryN(3) chaos
        // service fails exactly the 3rd request of a batch — batching must
        // not collapse the fault schedule into one event per batch.
        let chaos = ChaosService::new(Arc::new(EchoService), 3);
        let store = FrameStore::new();
        let requests: Vec<ServiceRequest> = (0..6)
            .map(|i| ServiceRequest::new("echo", Payload::Count(i)))
            .collect();
        let results = chaos.handle_batch(&requests, &store);
        let failures: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_err())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failures, vec![2, 5]);
        assert_eq!(chaos.calls(), 6);
    }

    #[test]
    fn wrong_payload_is_descriptive() {
        let err = wrong_payload("pose", "frame_ref", &Payload::Count(1));
        let text = err.to_string();
        assert!(text.contains("pose") && text.contains("frame_ref") && text.contains("count"));
    }

    #[test]
    fn chaos_service_fails_every_nth() {
        let chaos = ChaosService::new(Arc::new(EchoService), 3);
        let store = FrameStore::new();
        let req = ServiceRequest::new("echo", Payload::Count(1));
        assert!(chaos.handle(&req, &store).is_ok());
        assert!(chaos.handle(&req, &store).is_ok());
        assert!(chaos.handle(&req, &store).is_err()); // 3rd
        assert!(chaos.handle(&req, &store).is_ok());
        assert_eq!(chaos.calls(), 4);
        assert_eq!(chaos.name(), "echo");
        assert_eq!(chaos.cost(&req).base, Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn chaos_rejects_zero() {
        let _ = ChaosService::new(Arc::new(EchoService), 0);
    }

    #[test]
    fn chaos_probabilistic_is_seeded_and_calibrated() {
        let store = FrameStore::new();
        let req = ServiceRequest::new("echo", Payload::Count(1));
        let run = |seed: u64| {
            let chaos = ChaosService::probabilistic(Arc::new(EchoService), seed, 0.3);
            (0..1000)
                .map(|_| chaos.handle(&req, &store).is_err())
                .collect::<Vec<bool>>()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed must fail the same requests");
        let failures = a.iter().filter(|&&f| f).count();
        assert!(
            (200..400).contains(&failures),
            "30% target, got {failures}/1000"
        );
        assert_ne!(a, run(12), "different seeds should differ");
        // Degenerate probabilities behave as advertised.
        let never = ChaosService::probabilistic(Arc::new(EchoService), 1, 0.0);
        let always = ChaosService::probabilistic(Arc::new(EchoService), 1, 1.0);
        for _ in 0..20 {
            assert!(never.handle(&req, &store).is_ok());
            assert!(always.handle(&req, &store).is_err());
        }
    }

    #[test]
    fn chaos_delay_injects_latency() {
        let chaos = ChaosService::delaying(Arc::new(EchoService), 2, Duration::from_millis(30));
        let store = FrameStore::new();
        let req = ServiceRequest::new("echo", Payload::Count(1));
        let t = std::time::Instant::now();
        assert!(chaos.handle(&req, &store).is_ok()); // 1st: fast
        let fast = t.elapsed();
        let t = std::time::Instant::now();
        assert!(chaos.handle(&req, &store).is_ok()); // 2nd: delayed
        let slow = t.elapsed();
        assert!(
            slow >= Duration::from_millis(30),
            "delayed call took {slow:?}"
        );
        assert!(fast < Duration::from_millis(30), "fast call took {fast:?}");
    }

    #[test]
    fn chaos_panic_mode_panics_on_schedule() {
        let chaos = Arc::new(ChaosService::panicking(Arc::new(EchoService), 3));
        let store = FrameStore::new();
        let req = ServiceRequest::new("echo", Payload::Count(1));
        assert!(chaos.handle(&req, &store).is_ok());
        assert!(chaos.handle(&req, &store).is_ok());
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| chaos.handle(&req, &store)));
        assert!(result.is_err(), "3rd request should panic");
        assert!(chaos.handle(&req, &store).is_ok());
        assert_eq!(chaos.calls(), 4);
    }

    #[test]
    fn chaos_outage_window_opens_and_heals() {
        // Outage from 20 ms to 60 ms after construction.
        let chaos = ChaosService::outage(
            Arc::new(EchoService),
            Duration::from_millis(20),
            Duration::from_millis(40),
        );
        let store = FrameStore::new();
        let req = ServiceRequest::new("echo", Payload::Count(1));
        assert!(chaos.handle(&req, &store).is_ok(), "before the outage");
        std::thread::sleep(Duration::from_millis(30));
        let during = chaos.handle(&req, &store);
        assert!(during.is_err(), "inside the outage window");
        assert!(during.unwrap_err().to_string().contains("injected outage"));
        std::thread::sleep(Duration::from_millis(40));
        assert!(chaos.handle(&req, &store).is_ok(), "after the heal time");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn chaos_rejects_bad_probability() {
        let _ = ChaosService::probabilistic(Arc::new(EchoService), 0, 1.5);
    }

    #[test]
    fn request_response_wire_roundtrip() {
        let req = ServiceRequest::new("classify", Payload::Vector(vec![1.0, 2.0]));
        let decoded = ServiceRequest::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
        let resp = ServiceResponse::new(Payload::Label {
            label: "squat".into(),
            confidence: 0.9,
        });
        assert_eq!(ServiceResponse::decode(&resp.encode()).unwrap(), resp);
        assert!(ServiceRequest::decode(&[]).is_err());
        assert!(ServiceRequest::decode(&[5, b'a']).is_err());
    }

    #[test]
    fn services_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arc<dyn Service>>();
        assert_send_sync::<ServiceRegistry>();
    }
}
