//! The VideoPipe core: modules, stateless services, pipeline DAGs,
//! configuration, deployment planning, flow control, metrics and the local
//! threaded runtime.
//!
//! This crate is the Rust reproduction of the paper's primary contribution
//! (*VideoPipe: Building Video Stream Processing Pipelines at the Edge*,
//! Middleware Industry '19): a FaaS-container hybrid runtime that places
//! lightweight pipeline **modules** on heterogeneous edge devices and
//! co-locates them with the stateless **services** they call.
//!
//! # The pieces
//!
//! * [`module`] — the [`Module`](module::Module) trait and
//!   [`ModuleCtx`](module::ModuleCtx) (the paper's Table 1 API:
//!   `init` / `event_received` / `call_service` / `call_module`).
//! * [`service`] — stateless [`Service`](service::Service)s with cost
//!   models, shareable across pipelines and horizontally scalable.
//! * [`spec`] / [`config`] — the pipeline DAG and the Listing-1-style
//!   configuration parser.
//! * [`deploy`] — devices, placements, service-binding resolution
//!   (co-located vs remote), and latency-model-driven automatic placement.
//! * [`flow`] — the no-queue, drop-at-source flow control (§2.3).
//! * [`health`] — heartbeat-based device failure detection feeding the
//!   self-healing failover path.
//! * [`resilience`] — retry policies, per-service circuit breakers and
//!   degradation policies that keep the §2.3 design from wedging when
//!   services fail.
//! * [`metrics`] — per-stage latency histograms and FPS accounting (the
//!   exact quantities of Fig. 6 and Table 2).
//! * [`runtime`] — the threaded local runtime executing deployments for
//!   real, with per-module isolation, transparent cross-device frame
//!   transcoding, and optional real-TCP cross-device transport.
//! * [`reactor`] — the event-driven multi-pipeline executor: one worker
//!   pool sized to cores runs module steps, service dispatch, pacer ticks
//!   and watchers as scheduled tasks, so thread count stays O(cores) while
//!   pipeline count scales to the tens of thousands.
//! * [`slo`] — the per-pipeline SLO feedback controller: windowed-tail
//!   observation over the metrics histograms, an ordered degradation knob
//!   lattice, hysteresis and dwell.
//! * [`telemetry`] — pipeline monitoring snapshots over PUB/SUB (the
//!   paper's §7 future work).
//!
//! # Quickstart
//!
//! ```
//! let spec = videopipe_core::config::parse(r#"
//!     pipeline: demo
//!     modules: [
//!         { name: src include("Source.js") next_module: sink }
//!         { name: sink include("Sink.js") }
//!     ]"#)?;
//! assert_eq!(spec.modules.len(), 2);
//! # Ok::<(), videopipe_core::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod deploy;
mod error;
pub mod flow;
pub mod health;
pub mod message;
pub mod metrics;
pub mod module;
pub mod reactor;
pub mod resilience;
pub mod runtime;
pub mod service;
pub mod slo;
pub mod spec;
pub mod telemetry;

pub use error::PipelineError;

/// The most frequently used items.
pub mod prelude {
    pub use crate::deploy::{
        plan, replan_after_device_loss, DeploymentPlan, DeviceSpec, Placement,
    };
    pub use crate::error::PipelineError;
    pub use crate::health::{DeviceStatus, FailureDetector, HealthConfig};
    pub use crate::message::{Header, Message, Payload};
    pub use crate::metrics::PipelineMetrics;
    pub use crate::module::{Event, Module, ModuleCtx, ModuleRegistry};
    pub use crate::reactor::{ReactorConfig, ReactorRuntime};
    pub use crate::resilience::{DegradationPolicy, ResilienceConfig, RetryPolicy};
    pub use crate::runtime::{BatchConfig, LocalRuntime, RuntimeConfig};
    pub use crate::service::{Service, ServiceRegistry, ServiceRequest, ServiceResponse};
    pub use crate::slo::{Knob, Slo, SloConfig, SloController};
    pub use crate::spec::{ModuleSpec, PipelineSpec};
}
