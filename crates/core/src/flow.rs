//! Flow control: the paper's no-queue, drop-at-source design.
//!
//! Paper §2.3: "We do not use any queues in our design. When the final
//! module is done with its current data, it signals the source to send a new
//! frame into the pipeline. This approach pushes frame dropping to the
//! beginning of the pipeline and eliminates queuing delays inside the
//! pipeline."
//!
//! [`CreditController`] generalises the signal to `N` credits (the paper's
//! design is `N = 1`); the flow-control ablation sweeps `N` to show the
//! latency/throughput trade-off the authors allude to ("a more intelligent
//! signaling mechanism may also be utilized").

/// Admission control at the video source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditController {
    credits: u32,
    in_flight: u32,
    admitted: u64,
    dropped: u64,
    completed: u64,
    faulted: u64,
}

impl CreditController {
    /// The paper's design: exactly one frame in flight.
    pub fn paper_default() -> Self {
        Self::new(1)
    }

    /// Creates a controller allowing up to `credits` frames in flight.
    ///
    /// # Panics
    ///
    /// Panics if `credits` is zero.
    pub fn new(credits: u32) -> Self {
        assert!(credits > 0, "flow control needs at least one credit");
        CreditController {
            credits,
            in_flight: 0,
            admitted: 0,
            dropped: 0,
            completed: 0,
            faulted: 0,
        }
    }

    /// Attempts to admit a camera frame into the pipeline. Returns `true`
    /// (and consumes a credit) if capacity is available; otherwise records a
    /// drop and returns `false`.
    pub fn try_admit(&mut self) -> bool {
        if self.in_flight < self.credits {
            self.in_flight += 1;
            self.admitted += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Handles the completion signal from the final module, returning the
    /// credit.
    ///
    /// Tolerates spurious signals (e.g. duplicated completion from a
    /// fan-in sink) by saturating at zero.
    pub fn complete(&mut self) {
        if self.in_flight > 0 {
            self.in_flight -= 1;
            self.completed += 1;
        }
    }

    /// Reclaims the credit of a frame that died mid-pipeline (module error,
    /// panic, abandoned service call or expired credit lease) instead of
    /// completing. Keeping the error path separate from [`complete`]
    /// preserves the invariant `admitted == completed + faulted +
    /// in_flight`, which the runtime uses to prove no credit leaked.
    ///
    /// Saturates at zero like [`complete`].
    ///
    /// [`complete`]: CreditController::complete
    pub fn fault(&mut self) {
        if self.in_flight > 0 {
            self.in_flight -= 1;
            self.faulted += 1;
        }
    }

    /// Frames currently inside the pipeline.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Configured credit limit.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Frames admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Frames dropped at the source so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames whose completion signal has returned.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Frames whose credit was reclaimed through the error path.
    pub fn faulted(&self) -> u64 {
        self.faulted
    }
}

/// Computes camera tick times for a source of a given frame rate.
///
/// The camera offers a frame every `1/fps` seconds; the controller decides
/// whether each tick enters the pipeline or is dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourcePacer {
    interval_ns: u64,
    next_tick_ns: u64,
    ticks: u64,
}

impl SourcePacer {
    /// Creates a pacer for `fps` frames per second starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive and finite.
    pub fn new(fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        SourcePacer {
            interval_ns: (1e9 / fps).round().max(1.0) as u64,
            next_tick_ns: 0,
            ticks: 0,
        }
    }

    /// Interval between camera frames in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// The time of the next camera tick.
    pub fn peek_next(&self) -> u64 {
        self.next_tick_ns
    }

    /// Consumes and returns the next tick time.
    pub fn advance(&mut self) -> u64 {
        let t = self.next_tick_ns;
        self.ticks += 1;
        self.next_tick_ns += self.interval_ns;
        t
    }

    /// Total camera ticks generated.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_credit_serialises_frames() {
        let mut fc = CreditController::paper_default();
        assert!(fc.try_admit());
        assert!(!fc.try_admit()); // dropped
        assert!(!fc.try_admit()); // dropped
        assert_eq!(fc.in_flight(), 1);
        assert_eq!(fc.dropped(), 2);
        fc.complete();
        assert_eq!(fc.in_flight(), 0);
        assert!(fc.try_admit());
        assert_eq!(fc.admitted(), 2);
        assert_eq!(fc.completed(), 1);
    }

    #[test]
    fn multi_credit_allows_pipelining() {
        let mut fc = CreditController::new(3);
        assert!(fc.try_admit());
        assert!(fc.try_admit());
        assert!(fc.try_admit());
        assert!(!fc.try_admit());
        fc.complete();
        assert!(fc.try_admit());
        assert_eq!(fc.dropped(), 1);
        assert_eq!(fc.in_flight(), 3);
    }

    #[test]
    fn spurious_complete_is_tolerated() {
        let mut fc = CreditController::new(1);
        fc.complete();
        assert_eq!(fc.in_flight(), 0);
        assert_eq!(fc.completed(), 0);
        assert!(fc.try_admit());
    }

    #[test]
    #[should_panic(expected = "at least one credit")]
    fn zero_credits_panics() {
        let _ = CreditController::new(0);
    }

    #[test]
    fn invariant_in_flight_bounded() {
        // in_flight never exceeds credits, and admitted = completed +
        // faulted + in_flight always holds.
        let mut fc = CreditController::new(2);
        for i in 0..100u32 {
            match i % 4 {
                0 => fc.complete(),
                3 => fc.fault(),
                _ => {
                    fc.try_admit();
                }
            }
            assert!(fc.in_flight() <= fc.credits());
            assert_eq!(
                fc.admitted(),
                fc.completed() + fc.faulted() + u64::from(fc.in_flight())
            );
        }
    }

    #[test]
    fn fault_returns_credit_without_counting_completion() {
        let mut fc = CreditController::paper_default();
        assert!(fc.try_admit());
        fc.fault();
        assert_eq!(fc.in_flight(), 0);
        assert_eq!(fc.completed(), 0);
        assert_eq!(fc.faulted(), 1);
        // The credit is usable again.
        assert!(fc.try_admit());
    }

    #[test]
    fn spurious_fault_is_tolerated() {
        let mut fc = CreditController::new(1);
        fc.fault();
        assert_eq!(fc.faulted(), 0);
        assert!(fc.try_admit());
    }

    #[test]
    fn pacer_ticks_at_interval() {
        let mut pacer = SourcePacer::new(5.0);
        assert_eq!(pacer.interval_ns(), 200_000_000);
        assert_eq!(pacer.advance(), 0);
        assert_eq!(pacer.advance(), 200_000_000);
        assert_eq!(pacer.advance(), 400_000_000);
        assert_eq!(pacer.ticks(), 3);
        assert_eq!(pacer.peek_next(), 600_000_000);
    }

    #[test]
    fn pacer_high_fps() {
        let pacer = SourcePacer::new(60.0);
        assert_eq!(pacer.interval_ns(), 16_666_667);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn pacer_rejects_zero_fps() {
        let _ = SourcePacer::new(0.0);
    }
}
