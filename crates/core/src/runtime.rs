//! The local threaded runtime: executes a [`DeploymentPlan`] for real.
//!
//! Every module gets its own thread and inbox (the analogue of the paper's
//! per-module Duktape context); services run executor-pool threads on their
//! host device; a pacer thread per pipeline implements the camera tick +
//! credit flow control. All devices live in one process — "device" is a
//! logical placement domain with its own frame store and service hosts —
//! and cross-device edges transparently encode/decode frames, exactly as
//! the paper's ZeroMQ data path does.
//!
//! Timing fidelity (Wi-Fi latency, heavyweight inference) is the simulator's
//! job; the local runtime optionally *emulates* modeled costs with scaled
//! sleeps so demos behave realistically, but the evaluation harness uses
//! `videopipe-sim` for calibrated, deterministic numbers.

use crate::deploy::DeploymentPlan;
use crate::error::PipelineError;
use crate::flow::{CreditController, SourcePacer};
use crate::health::{DeviceStatus, FailureDetector, HealthConfig};
use crate::message::{Header, Message, Payload};
use crate::metrics::PipelineMetrics;
use crate::module::{Event, Module, ModuleCtx, ModuleFactory, ModuleRegistry};
use crate::resilience::{
    seed_for, BreakerSnapshot, CircuitBreaker, DegradationPolicy, ResilienceConfig, SeededJitter,
};
use crate::service::{ServiceRegistry, ServiceRequest, ServiceResponse};
use crate::slo::{KnobSettings, SloAction, SloConfig, SloController};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use videopipe_media::{codec, FrameStore};
use videopipe_net::{InprocHub, MessageKind, MsgReceiver, MsgSender, WireMessage};

/// How cross-device traffic travels in the local runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeTransport {
    /// All edges are in-process channels (fastest; the default).
    #[default]
    Inproc,
    /// Cross-device traffic goes over real loopback TCP sockets with
    /// length-prefixed framing — one ingress socket per device, exactly
    /// like the paper's per-device ZeroMQ endpoints.
    Tcp,
}

/// Micro-batching knobs for one service executor's drain policy (see
/// DESIGN.md §5.7). After dequeuing a request, the executor first drains
/// whatever is already queued (zero added latency), then — only under
/// observed arrival pressure — holds the partial batch open for an adaptive
/// deadline scaled by the measured inter-arrival gap, never longer than
/// `max_wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Largest micro-batch one executor dispatches per drain
    /// (1 disables batching; this is the default).
    pub max_batch: usize,
    /// Ceiling on the adaptive drain deadline. Irrelevant at low load: with
    /// an empty queue and slow arrivals the executor never waits at all, so
    /// single-request latency is untouched.
    pub max_wait: Duration,
}

impl BatchConfig {
    /// Request-at-a-time dispatch (the pre-batching behaviour).
    pub const fn disabled() -> Self {
        BatchConfig {
            max_batch: 1,
            max_wait: Duration::from_millis(2),
        }
    }

    /// Batching up to `max_batch` requests with the default 2 ms wait
    /// ceiling.
    pub fn up_to(max_batch: usize) -> Self {
        BatchConfig {
            max_batch: max_batch.max(1),
            ..Self::disabled()
        }
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Camera frame rate offered by each source.
    pub fps: f64,
    /// Flow-control credits (1 = the paper's design).
    pub credits: u32,
    /// Cost emulation factor: modeled service/link costs are slept scaled
    /// by this (0.0 disables emulation; 1.0 is real-time).
    pub time_scale: f64,
    /// Codec quality for cross-device frames.
    pub codec_quality: codec::Quality,
    /// Cross-device transport.
    pub transport: EdgeTransport,
    /// When set, a monitoring thread publishes
    /// [`TelemetrySnapshot`](crate::telemetry::TelemetrySnapshot)s at this
    /// interval on the `telemetry/<pipeline>` topic.
    pub telemetry_interval: Option<Duration>,
    /// Resilience behaviour: retries, per-call deadlines, circuit breakers,
    /// degradation and the flow-control credit lease. The default disables
    /// everything but the (30 s) deadline.
    pub resilience: ResilienceConfig,
    /// Service-dispatch micro-batching defaults for every executor pool.
    /// The default (`max_batch` 1) preserves request-at-a-time dispatch.
    pub batch: BatchConfig,
    /// Per-service overrides of [`RuntimeConfig::batch`], keyed by service
    /// name — lets a deployment batch the heavy detector aggressively while
    /// leaving a latency-critical display service unbatched.
    pub service_batch: HashMap<String, BatchConfig>,
    /// When set, every device emits heartbeats on the `hb/<pipeline>`
    /// channel and a failure detector maintains a live
    /// [`DeviceStatus`] view; a *confirmed* device loss bumps the
    /// pipeline's fence epoch so in-flight frames from before the loss are
    /// fenced and their credits reclaimed. `None` (the default) disables
    /// the health layer entirely and preserves seed behaviour.
    pub heartbeats: Option<HealthConfig>,
    /// Interval at which module state is snapshotted
    /// ([`Module::snapshot`]) into the runtime's checkpoint store, so a
    /// supervised restart resumes near where the old instance died.
    /// `None` (the default) disables checkpointing.
    pub checkpoint_period: Option<Duration>,
    /// Number of recently delivered frame sequence numbers the pacer
    /// remembers to suppress double-counting when a frame is redelivered
    /// (at-least-once delivery after partition heal or failover). `0` (the
    /// default) disables the window and preserves seed behaviour.
    pub dedup_window: usize,
    /// When set, a per-pipeline SLO feedback controller observes windowed
    /// end-to-end p99 latency (and dispatch queue growth) and actuates the
    /// configured degradation [`Knob`](crate::slo::Knob) lattice — codec
    /// quality down, batches up, source sampling down, shedding last — with
    /// hysteresis and a minimum dwell. `None` (the default) keeps every
    /// knob static.
    pub slo: Option<SloConfig>,
}

impl RuntimeConfig {
    /// The effective batching policy for `service` (the per-service
    /// override when present, the runtime default otherwise).
    pub fn batch_for(&self, service: &str) -> BatchConfig {
        self.service_batch
            .get(service)
            .copied()
            .unwrap_or(self.batch)
    }

    /// Builder-style per-service batching override.
    pub fn with_service_batch(mut self, service: impl Into<String>, batch: BatchConfig) -> Self {
        self.service_batch.insert(service.into(), batch);
        self
    }

    /// Builder-style SLO controller attachment.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Deploy-time validation of every statically checkable field. The
    /// flow-control types would otherwise panic inside spawned threads
    /// (`SourcePacer` on a non-positive fps, `CreditController` on zero
    /// credits), turning a bad config into a hang instead of an error.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if !(self.fps.is_finite() && self.fps > 0.0) {
            return Err(PipelineError::InvalidConfig {
                field: "fps",
                reason: format!("must be finite and > 0, got {}", self.fps),
            });
        }
        if self.credits == 0 {
            return Err(PipelineError::InvalidConfig {
                field: "credits",
                reason: "must be ≥ 1 (the paper's no-queue design is credits = 1)".into(),
            });
        }
        if !(self.time_scale.is_finite() && self.time_scale >= 0.0) {
            return Err(PipelineError::InvalidConfig {
                field: "time_scale",
                reason: format!("must be finite and ≥ 0, got {}", self.time_scale),
            });
        }
        if self.batch.max_batch == 0 {
            return Err(PipelineError::InvalidConfig {
                field: "batch.max_batch",
                reason: "zero-sized batch can never dispatch; use 1 to disable batching".into(),
            });
        }
        for (service, batch) in &self.service_batch {
            if batch.max_batch == 0 {
                return Err(PipelineError::InvalidConfig {
                    field: "service_batch",
                    reason: format!(
                        "zero-sized batch for service {service:?}; use 1 to disable batching"
                    ),
                });
            }
        }
        if let Some(slo) = &self.slo {
            slo.validate()
                .map_err(|reason| PipelineError::InvalidConfig {
                    field: "slo",
                    reason,
                })?;
        }
        Ok(())
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            fps: 30.0,
            credits: 1,
            time_scale: 0.0,
            codec_quality: codec::Quality::default(),
            transport: EdgeTransport::Inproc,
            telemetry_interval: None,
            resilience: ResilienceConfig::default(),
            batch: BatchConfig::disabled(),
            service_batch: HashMap::new(),
            heartbeats: None,
            checkpoint_period: None,
            dedup_window: 0,
            slo: None,
        }
    }
}

/// Routes a message to its destination channel: in-process when the
/// destination lives on the sender's device (or in `Inproc` mode), over the
/// destination device's TCP ingress socket otherwise.
pub(crate) struct Router {
    pub(crate) hub: InprocHub,
    /// channel → owning device (empty in `Inproc` mode: everything local).
    pub(crate) channel_device: HashMap<String, String>,
    /// device → TCP sender towards that device's ingress socket.
    pub(crate) tcp_peers: HashMap<String, Arc<videopipe_net::tcp::TcpSender>>,
}

impl Router {
    pub(crate) fn inproc(hub: InprocHub) -> Self {
        Router {
            hub,
            channel_device: HashMap::new(),
            tcp_peers: HashMap::new(),
        }
    }

    pub(crate) fn send_from(
        &self,
        from_device: &str,
        msg: WireMessage,
    ) -> Result<(), PipelineError> {
        if let Some(dest_device) = self.channel_device.get(&msg.channel) {
            if dest_device != from_device {
                if let Some(peer) = self.tcp_peers.get(dest_device) {
                    return peer.send(msg).map_err(PipelineError::from);
                }
            }
        }
        self.hub
            .connect(&msg.channel)
            .and_then(|s| s.send(msg))
            .map_err(PipelineError::from)
    }
}

/// The outcome of a runtime run.
#[derive(Debug)]
pub struct RunReport {
    /// Collected metrics.
    pub metrics: PipelineMetrics,
    /// Module log lines, in arrival order (`"module: text"`).
    pub logs: Vec<String>,
    /// Handler errors observed (pipeline kept running).
    pub errors: Vec<String>,
    /// Module instances restarted by supervision after a panic.
    pub restarts: u64,
    /// Final circuit-breaker counters, keyed by service name (empty unless
    /// [`ResilienceConfig::breaker_failure_threshold`] is set).
    pub breakers: HashMap<String, BreakerSnapshot>,
    /// Final failure-detector view per device (empty unless
    /// [`RuntimeConfig::heartbeats`] is set).
    pub device_statuses: Vec<(String, DeviceStatus)>,
    /// Fence epoch at the end of the run (0 = no confirmed device loss).
    pub fence_epoch: u64,
    /// Final SLO controller lattice level (0 = baseline; also 0 when no
    /// controller was configured).
    pub slo_level: usize,
    /// Total SLO knob moves over the run (both directions).
    pub slo_moves: u64,
    /// SLO controller direction reversals over the run (bounded by the
    /// dwell time: at most one move per dwell).
    pub slo_flaps: u64,
    /// Per-worker reactor scheduler counters (empty for the threaded
    /// [`LocalRuntime`], which has no shared scheduler). Runtime-wide:
    /// every pipeline's report carries the same snapshot.
    pub scheduler: Vec<crate::metrics::WorkerSchedStats>,
    /// Final module checkpoints by module name (empty unless
    /// [`RuntimeConfig::checkpoint_period`] is set). Teardown takes one
    /// last snapshot of every checkpointing module, so a graceful shutdown
    /// hands the freshest recoverable state to whoever redeploys it.
    pub checkpoints: HashMap<String, Vec<u8>>,
}

/// A condvar-backed shutdown latch: watcher threads (SLO controller,
/// heartbeat senders, telemetry) park on it for their *full* interval —
/// no periodic poll wakeups — and teardown wakes every waiter at once, so
/// [`LocalRuntime::finish`] joins them in milliseconds regardless of how
/// long their intervals are.
pub(crate) struct ShutdownGate {
    state: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl ShutdownGate {
    pub(crate) fn new() -> Self {
        ShutdownGate {
            state: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Wakes every thread parked in [`ShutdownGate::wait_shutdown`].
    pub(crate) fn trigger(&self) {
        let mut triggered = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *triggered = true;
        self.cv.notify_all();
    }

    /// Parks for up to `dur`; returns `true` the moment shutdown is
    /// triggered (possibly before `dur` elapses), `false` on a normal
    /// interval expiry.
    pub(crate) fn wait_shutdown(&self, dur: Duration) -> bool {
        let guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if *guard {
            return true;
        }
        let (guard, _timeout) = self
            .cv
            .wait_timeout_while(guard, dur, |triggered| !*triggered)
            .unwrap_or_else(|e| e.into_inner());
        *guard
    }
}

/// Shared state for one running pipeline.
pub(crate) struct Shared {
    pub(crate) hub: InprocHub,
    pub(crate) router: Router,
    pub(crate) stores: HashMap<String, Arc<FrameStore>>,
    pub(crate) metrics: Mutex<PipelineMetrics>,
    pub(crate) logs: Mutex<Vec<String>>,
    pub(crate) errors: Mutex<Vec<String>>,
    pub(crate) stop: AtomicBool,
    pub(crate) epoch: Instant,
    pub(crate) deliveries: AtomicU64,
    pub(crate) config: RuntimeConfig,
    pub(crate) breakers: Mutex<HashMap<String, CircuitBreaker>>,
    pub(crate) restarts: AtomicU64,
    /// Pipeline fence epoch: bumped once per confirmed device loss;
    /// messages stamped with an older epoch are fenced by the pacer.
    pub(crate) fence_epoch: AtomicU64,
    /// Heartbeat failure detector (`None` when heartbeats are disabled).
    pub(crate) detector: Mutex<Option<FailureDetector>>,
    /// Latest module snapshots by module name, for checkpointed restarts.
    pub(crate) checkpoints: Mutex<HashMap<String, Vec<u8>>>,
    /// Devices whose heartbeat sender is suppressed (chaos hook).
    pub(crate) muted_heartbeats: Mutex<HashSet<String>>,
    /// Live SLO knob actuators, written by the controller thread and read
    /// lock-free at the actuation sites (encode path, executor drain, pacer
    /// admission). All-baseline when no controller is configured.
    pub(crate) knobs: KnobActuators,
    /// Prompt-teardown latch for interval-driven watcher threads.
    pub(crate) gate: ShutdownGate,
}

/// Lock-free actuation state for the SLO controller's knob lattice.
pub(crate) struct KnobActuators {
    /// Codec quality override for cross-device frames; `NO_QUALITY` (255)
    /// means "use the configured quality".
    pub(crate) quality_shift: AtomicU8,
    /// Floor applied over every service's configured `max_batch`; 0 means
    /// no override.
    pub(crate) batch_floor: AtomicUsize,
    /// Source sampling divisor (1 = every camera tick).
    pub(crate) sample_divisor: AtomicU32,
    /// Shedding factor applied after sampling (1 = keep everything).
    pub(crate) shed_one_in: AtomicU32,
    /// Current lattice level, for telemetry and reports.
    pub(crate) level: AtomicUsize,
    /// Knob moves / direction reversals, mirrored from the controller.
    pub(crate) moves: AtomicU64,
    pub(crate) flaps: AtomicU64,
}

pub(crate) const NO_QUALITY: u8 = u8::MAX;

impl KnobActuators {
    pub(crate) fn baseline() -> Self {
        KnobActuators {
            quality_shift: AtomicU8::new(NO_QUALITY),
            batch_floor: AtomicUsize::new(0),
            sample_divisor: AtomicU32::new(1),
            shed_one_in: AtomicU32::new(1),
            level: AtomicUsize::new(0),
            moves: AtomicU64::new(0),
            flaps: AtomicU64::new(0),
        }
    }

    pub(crate) fn apply(&self, settings: KnobSettings, level: usize) {
        self.quality_shift.store(
            settings.quality_shift.unwrap_or(NO_QUALITY),
            Ordering::Relaxed,
        );
        self.batch_floor
            .store(settings.max_batch.unwrap_or(0), Ordering::Relaxed);
        self.sample_divisor
            .store(settings.sample_divisor.max(1), Ordering::Relaxed);
        self.shed_one_in
            .store(settings.shed_one_in.max(1), Ordering::Relaxed);
        self.level.store(level, Ordering::Relaxed);
    }

    pub(crate) fn admit_stride(&self) -> u64 {
        u64::from(self.sample_divisor.load(Ordering::Relaxed).max(1))
            * u64::from(self.shed_one_in.load(Ordering::Relaxed).max(1))
    }
}

impl Shared {
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The codec quality in effect right now: the SLO controller's override
    /// when one is applied, the configured quality otherwise.
    pub(crate) fn effective_quality(&self) -> codec::Quality {
        match self.knobs.quality_shift.load(Ordering::Relaxed) {
            shift if shift < 8 => codec::Quality::new(shift),
            _ => self.config.codec_quality,
        }
    }

    /// The micro-batch ceiling in effect for `service` right now: the
    /// configured policy, raised to the controller's batch floor when the
    /// batch knob is engaged.
    pub(crate) fn effective_max_batch(&self, service: &str) -> usize {
        self.config
            .batch_for(service)
            .max_batch
            .max(1)
            .max(self.knobs.batch_floor.load(Ordering::Relaxed))
    }
}

pub(crate) fn mod_chan(pipeline: &str, module: &str) -> String {
    format!("mod/{pipeline}/{module}")
}
pub(crate) fn reply_chan(pipeline: &str, module: &str) -> String {
    format!("rpl/{pipeline}/{module}")
}
pub(crate) fn svc_chan(device: &str, service: &str) -> String {
    format!("svc/{device}/{service}")
}
pub(crate) fn fc_chan(pipeline: &str) -> String {
    format!("fc/{pipeline}")
}
pub(crate) fn hb_chan(pipeline: &str) -> String {
    format!("hb/{pipeline}")
}

/// Wiring facts one module needs, derived from the plan.
pub(crate) struct ModuleWiring {
    pub(crate) name: String,
    pub(crate) device: String,
    /// next module -> (channel, cross_device)
    pub(crate) nexts: HashMap<String, (String, bool)>,
    /// service -> (channel, remote)
    pub(crate) services: HashMap<String, (String, bool)>,
    pub(crate) is_source: bool,
    pub(crate) is_sink: bool,
}

/// The execution context handed to module handlers.
struct LocalCtx {
    shared: Arc<Shared>,
    wiring: Arc<ModuleWiring>,
    pipeline: String,
    header: Header,
    /// Fence epoch of the event being processed; stamped onto every
    /// outgoing message so the pacer can fence frames admitted before a
    /// failover.
    epoch: u64,
    corr: u64,
    reply_rx: videopipe_net::InprocReceiver,
    /// Last successful response per service, for
    /// [`DegradationPolicy::LastKnownGood`]. Stored in encoded form: the
    /// per-success insert is then an O(1) refcount bump of the wire bytes,
    /// and the (rare) degraded path pays the decode.
    lkg: HashMap<String, bytes::Bytes>,
    /// Deterministic per-module retry jitter stream.
    jitter: SeededJitter,
}

impl LocalCtx {
    fn store(&self) -> &Arc<FrameStore> {
        self.shared
            .stores
            .get(&self.wiring.device)
            .expect("device store exists")
    }

    fn emulate(&self, modeled: Duration) {
        let scale = self.shared.config.time_scale;
        if scale > 0.0 {
            std::thread::sleep(modeled.mul_f64(scale));
        }
    }

    /// One request/response exchange with a service executor, bounded by
    /// the configured per-call deadline. Returns the decoded response plus
    /// its raw wire bytes (shared, for the last-known-good cache).
    fn attempt_service_call(
        &mut self,
        service: &str,
        channel: &str,
        remote: bool,
        bytes: bytes::Bytes,
    ) -> Result<(ServiceResponse, bytes::Bytes), PipelineError> {
        if remote {
            // Emulated request transfer (sender-side: the module blocks on
            // the round trip anyway).
            self.emulate(Duration::from_micros(
                2_500 + bytes.len() as u64 * 8 / 100, // ~wifi: 2.5ms + 100Mbit/s
            ));
        }
        self.corr += 1;
        let corr_id = self.corr;
        self.shared.router.send_from(
            &self.wiring.device,
            WireMessage::request(
                channel.to_string(),
                reply_chan(&self.pipeline, &self.wiring.name),
                corr_id,
                bytes,
            ),
        )?;
        let started = Instant::now();
        let deadline = started + self.shared.config.resilience.service_call_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(PipelineError::Timeout {
                    service: service.to_string(),
                    elapsed: started.elapsed(),
                });
            }
            // Wait in short slices so shutdown stays responsive even under
            // a long per-call deadline.
            match self.reply_rx.recv_timeout(remaining.min(POLL)) {
                Ok(msg) if msg.kind == MessageKind::Response && msg.corr_id == corr_id => {
                    if remote {
                        self.emulate(Duration::from_micros(
                            2_500 + msg.payload.len() as u64 * 8 / 100,
                        ));
                    }
                    let resp = ServiceResponse::decode(&msg.payload)?;
                    // Executors answer failures with a typed error payload.
                    if let Payload::Error(reason) = &resp.payload {
                        return Err(PipelineError::Service {
                            service: service.to_string(),
                            reason: reason.clone(),
                        });
                    }
                    return Ok((resp, msg.payload));
                }
                // Stale responses to timed-out attempts carry old corr ids.
                Ok(_stale) => continue,
                Err(_) => {
                    if self.shared.stop.load(Ordering::SeqCst) {
                        return Err(PipelineError::Shutdown);
                    }
                }
            }
        }
    }

    fn breaker_allows(&mut self, service: &str) -> bool {
        let now_ns = self.shared.now_ns();
        let mut breakers = self.shared.breakers.lock();
        breakers
            .entry(service.to_string())
            .or_insert_with(|| self.shared.config.resilience.make_breaker())
            .allow(now_ns)
    }

    fn breaker_record(&mut self, service: &str, success: bool) {
        let now_ns = self.shared.now_ns();
        let mut breakers = self.shared.breakers.lock();
        let breaker = breakers
            .entry(service.to_string())
            .or_insert_with(|| self.shared.config.resilience.make_breaker());
        if success {
            breaker.record_success();
        } else {
            breaker.record_failure(now_ns);
        }
    }

    /// Applies the degradation policy once a call has been abandoned.
    fn degrade(
        &mut self,
        service: &str,
        err: PipelineError,
    ) -> Result<ServiceResponse, PipelineError> {
        if self.shared.config.resilience.degradation == DegradationPolicy::LastKnownGood {
            if let Some(cached) = self.lkg.get(service) {
                // Cached in wire form; decoding here keeps the success path
                // free of deep response clones.
                if let Ok(resp) = ServiceResponse::decode(cached) {
                    return Ok(resp);
                }
            }
        }
        Err(err)
    }
}

impl ModuleCtx for LocalCtx {
    fn call_service(
        &mut self,
        service: &str,
        mut request: ServiceRequest,
    ) -> Result<ServiceResponse, PipelineError> {
        let (channel, remote) = self.wiring.services.get(service).cloned().ok_or_else(|| {
            PipelineError::ServiceUnavailable {
                module: self.wiring.name.clone(),
                service: service.to_string(),
            }
        })?;
        let resilience = self.shared.config.resilience.clone();
        // Circuit breaker gate: fast-fail while the service's breaker is
        // open so a dead service costs microseconds per frame, not a
        // deadline per frame.
        if resilience.breaker_enabled() && !self.breaker_allows(service) {
            return self.degrade(
                service,
                PipelineError::CircuitOpen {
                    service: service.to_string(),
                },
            );
        }
        // A frame reference cannot leave its device: encode for remote
        // calls — at most once per (frame, quality), via the store's
        // transcoding cache. A frame fanned out to N remote destinations
        // (or retried M times) runs the codec exactly once; everyone else
        // gets a refcount bump of the same buffer.
        if remote {
            if let Payload::FrameRef(id) = request.payload {
                let encoded = self.store().encoded(id, self.shared.effective_quality())?;
                request.payload = Payload::EncodedFrame(encoded);
            }
        }
        let mut bytes = request.encode();
        let max_attempts = resilience.retry.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            // Attempts share the serialized request by refcount; the final
            // attempt moves it instead of cloning.
            let attempt_bytes = if attempt >= max_attempts {
                std::mem::take(&mut bytes)
            } else {
                bytes.clone()
            };
            match self.attempt_service_call(service, &channel, remote, attempt_bytes) {
                Ok((resp, raw)) => {
                    if resilience.breaker_enabled() {
                        self.breaker_record(service, true);
                    }
                    if resilience.degradation == DegradationPolicy::LastKnownGood {
                        self.lkg.insert(service.to_string(), raw);
                    }
                    return Ok(resp);
                }
                Err(PipelineError::Shutdown) => return Err(PipelineError::Shutdown),
                Err(e) => {
                    if resilience.breaker_enabled() {
                        self.breaker_record(service, false);
                    }
                    if attempt >= max_attempts {
                        return self.degrade(service, e);
                    }
                    let backoff = resilience.retry.backoff(attempt, &mut self.jitter);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    if self.shared.stop.load(Ordering::SeqCst) {
                        return Err(PipelineError::Shutdown);
                    }
                }
            }
        }
    }

    fn call_module(&mut self, target: &str, mut payload: Payload) -> Result<(), PipelineError> {
        let (channel, cross_device) = self.wiring.nexts.get(target).cloned().ok_or_else(|| {
            PipelineError::Validation(format!(
                "module {:?} has no edge to {target:?}",
                self.wiring.name
            ))
        })?;
        if cross_device {
            if let Payload::FrameRef(id) = payload {
                // Cached transcode: a frame forwarded to several
                // cross-device successors is encoded once, not per edge.
                let encoded = self.store().encoded(id, self.shared.effective_quality())?;
                payload = Payload::EncodedFrame(encoded);
            }
            let bytes = payload.size_hint() as u64;
            self.emulate(Duration::from_micros(2_500 + bytes * 8 / 100));
        }
        self.shared.router.send_from(
            &self.wiring.device,
            WireMessage::data(
                channel.clone(),
                self.header.frame_seq,
                self.header.capture_ts_ns,
                payload.encode(),
            )
            .with_epoch(self.epoch),
        )?;
        Ok(())
    }

    fn signal_source(&mut self) -> Result<(), PipelineError> {
        self.shared.router.send_from(
            &self.wiring.device,
            WireMessage {
                kind: MessageKind::Signal,
                channel: fc_chan(&self.pipeline),
                reply_to: String::new(),
                corr_id: 0,
                seq: self.header.frame_seq,
                timestamp_ns: self.header.capture_ts_ns,
                epoch: self.epoch,
                payload: bytes::Bytes::new(),
            },
        )?;
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.shared.now_ns()
    }

    fn module_name(&self) -> &str {
        &self.wiring.name
    }

    fn device_name(&self) -> &str {
        &self.wiring.device
    }

    fn frame_store(&self) -> &FrameStore {
        self.shared
            .stores
            .get(&self.wiring.device)
            .expect("device store exists")
    }

    fn header(&self) -> Header {
        self.header
    }

    fn set_header(&mut self, header: Header) {
        self.header = header;
    }

    fn log(&mut self, text: &str) {
        self.shared
            .logs
            .lock()
            .push(format!("{}: {text}", self.wiring.name));
    }
}

/// A deployed, running pipeline on the local threaded runtime.
pub struct LocalRuntime {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    pipeline: String,
}

impl LocalRuntime {
    /// Deploys `plan` and starts all threads (modules, services, pacer).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] when a module include or service image is
    /// missing, or wiring fails.
    pub fn deploy(
        plan: &DeploymentPlan,
        modules: &ModuleRegistry,
        services: &ServiceRegistry,
        config: RuntimeConfig,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        let pipeline = plan.pipeline.name.clone();
        let hub = InprocHub::new();
        let mut stores = HashMap::new();
        for d in &plan.devices {
            stores.insert(d.name.clone(), Arc::new(FrameStore::new()));
        }
        let source_device = plan
            .pipeline
            .sources()
            .first()
            .and_then(|s| plan.placement.device_for(&s.name))
            .ok_or_else(|| PipelineError::Deploy("pipeline has no placed source".into()))?
            .to_string();

        // Build the router: in `Tcp` mode every device gets a loopback
        // ingress socket and all cross-device channels route through it.
        let mut listeners = Vec::new();
        let router = match config.transport {
            EdgeTransport::Inproc => Router::inproc(hub.clone()),
            EdgeTransport::Tcp => {
                let mut channel_device = HashMap::new();
                for m in &plan.pipeline.modules {
                    let device = plan
                        .placement
                        .device_for(&m.name)
                        .ok_or_else(|| {
                            PipelineError::Deploy(format!("module {:?} unplaced", m.name))
                        })?
                        .to_string();
                    channel_device.insert(mod_chan(&pipeline, &m.name), device.clone());
                    channel_device.insert(reply_chan(&pipeline, &m.name), device);
                }
                for b in &plan.service_bindings {
                    channel_device.insert(svc_chan(&b.device, &b.service), b.device.clone());
                }
                channel_device.insert(fc_chan(&pipeline), source_device.clone());
                // Heartbeats converge on the monitor, which runs alongside
                // the pacer on the source device.
                channel_device.insert(hb_chan(&pipeline), source_device.clone());

                let mut tcp_peers = HashMap::new();
                for d in &plan.devices {
                    let listener = videopipe_net::tcp::TcpListenerHandle::bind("127.0.0.1:0")?;
                    let addr = format!("127.0.0.1:{}", listener.local_port());
                    let sender = videopipe_net::tcp::TcpSender::connect_retry(
                        &addr,
                        Duration::from_secs(5),
                    )?
                    // Survive mid-stream disconnects: buffer and reconnect
                    // with backoff instead of failing the pipeline edge.
                    .with_reconnect(videopipe_net::tcp::ReconnectPolicy::default());
                    tcp_peers.insert(d.name.clone(), Arc::new(sender));
                    listeners.push(listener);
                }
                Router {
                    hub: hub.clone(),
                    channel_device,
                    tcp_peers,
                }
            }
        };

        let shared = Arc::new(Shared {
            hub: hub.clone(),
            router,
            stores,
            metrics: Mutex::new(PipelineMetrics::new()),
            logs: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            epoch: Instant::now(),
            deliveries: AtomicU64::new(0),
            config: config.clone(),
            breakers: Mutex::new(HashMap::new()),
            restarts: AtomicU64::new(0),
            fence_epoch: AtomicU64::new(0),
            detector: Mutex::new(config.heartbeats.clone().map(|h| {
                let mut d = FailureDetector::new(h);
                for dev in &plan.devices {
                    d.expect(&dev.name, 0);
                }
                d
            })),
            checkpoints: Mutex::new(HashMap::new()),
            muted_heartbeats: Mutex::new(HashSet::new()),
            knobs: KnobActuators::baseline(),
            gate: ShutdownGate::new(),
        });
        let mut threads = Vec::new();

        // --- SLO feedback controller: one thread per pipeline, ticking at
        // the configured interval. It reads cumulative metrics (the same
        // histograms telemetry publishes), diffs them into a window, and
        // actuates the knob lattice through the shared atomics — never
        // touching the per-frame path.
        if let Some(slo_cfg) = config.slo.clone() {
            let shared_s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("slo-{pipeline}"))
                    .spawn(move || {
                        let mut controller = SloController::new(slo_cfg);
                        let interval = controller.config().interval;
                        let target_ms = controller.config().slo.p99.as_secs_f64() * 1e3;
                        // Park for the whole interval: the gate wakes this
                        // thread the instant teardown starts, so a long
                        // controller interval never delays `finish()`.
                        while !shared_s.gate.wait_shutdown(interval) {
                            let (hist, queue_max) = {
                                let metrics = shared_s.metrics.lock();
                                let q = metrics
                                    .dispatch
                                    .values()
                                    .map(|d| d.max_queue_depth)
                                    .max()
                                    .unwrap_or(0);
                                (metrics.end_to_end.clone(), q)
                            };
                            let action = controller.observe(shared_s.now_ns(), &hist, queue_max);
                            if action != SloAction::Hold {
                                let level = controller.level();
                                shared_s.knobs.apply(controller.settings(), level);
                                shared_s
                                    .knobs
                                    .moves
                                    .store(controller.moves(), Ordering::Relaxed);
                                shared_s
                                    .knobs
                                    .flaps
                                    .store(controller.flaps(), Ordering::Relaxed);
                                let dir = match action {
                                    SloAction::StepDown { .. } => "down",
                                    _ => "up",
                                };
                                shared_s.logs.lock().push(format!(
                                    "slo: step {dir} to level {level} \
                                     (window p99 {:.1} ms vs target {target_ms:.1} ms, {:?})",
                                    controller.last_window_p99_ns() as f64 / 1e6,
                                    controller.settings(),
                                ));
                            }
                        }
                    })
                    .expect("spawn slo controller"),
            );
        }

        // --- Health layer: per-device heartbeat senders plus one monitor
        // that feeds the failure detector and bumps the fence epoch on a
        // confirmed device loss.
        if let Some(health) = config.heartbeats.clone() {
            let hb_inbox = hub.bind(&hb_chan(&pipeline))?;
            for d in &plan.devices {
                let shared_hb = Arc::clone(&shared);
                let device = d.name.clone();
                let channel = hb_chan(&pipeline);
                let interval = health.heartbeat_interval;
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("hb-{device}"))
                        .spawn(move || {
                            // Beat immediately, then once per interval; the
                            // gate wakes the full-interval park on teardown.
                            loop {
                                if !shared_hb.stop.load(Ordering::SeqCst)
                                    && !shared_hb.muted_heartbeats.lock().contains(&device)
                                {
                                    let _ = shared_hb.router.send_from(
                                        &device,
                                        WireMessage {
                                            kind: MessageKind::Control,
                                            channel: channel.clone(),
                                            reply_to: String::new(),
                                            corr_id: 0,
                                            seq: 0,
                                            timestamp_ns: shared_hb.now_ns(),
                                            epoch: 0,
                                            payload: bytes::Bytes::copy_from_slice(
                                                device.as_bytes(),
                                            ),
                                        },
                                    );
                                }
                                if shared_hb.gate.wait_shutdown(interval) {
                                    break;
                                }
                            }
                        })
                        .expect("spawn heartbeat sender"),
                );
            }
            let shared_mon = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("hb-monitor-{pipeline}"))
                    .spawn(move || {
                        let mut confirmed: HashSet<String> = HashSet::new();
                        while !shared_mon.stop.load(Ordering::SeqCst) {
                            if let Ok(msg) = hb_inbox.recv_timeout(POLL) {
                                if msg.kind == MessageKind::Control {
                                    if let Ok(device) = std::str::from_utf8(&msg.payload) {
                                        if let Some(d) = shared_mon.detector.lock().as_mut() {
                                            d.record_heartbeat(device, shared_mon.now_ns());
                                        }
                                    }
                                }
                            }
                            let now_ns = shared_mon.now_ns();
                            let dead = match shared_mon.detector.lock().as_ref() {
                                Some(d) => d.dead_devices(now_ns),
                                None => Vec::new(),
                            };
                            for device in dead {
                                if confirmed.insert(device.clone()) {
                                    let epoch =
                                        shared_mon.fence_epoch.fetch_add(1, Ordering::SeqCst) + 1;
                                    shared_mon.logs.lock().push(format!(
                                        "monitor: device {device} confirmed dead; fencing epoch {epoch}"
                                    ));
                                }
                            }
                        }
                    })
                    .expect("spawn heartbeat monitor"),
            );
        }

        // TCP ingress pumps: forward arriving wire messages to the local
        // in-process channel named by `msg.channel`.
        for listener in listeners {
            let shared_in = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("vp-tcp-ingress".into())
                    .spawn(move || {
                        while !shared_in.stop.load(Ordering::SeqCst) {
                            match listener.recv_timeout(POLL) {
                                Ok(msg) => {
                                    if let Ok(sender) = shared_in.hub.connect(&msg.channel) {
                                        let _ = sender.send(msg);
                                    }
                                }
                                Err(_) => continue,
                            }
                        }
                        listener.shutdown();
                    })
                    .expect("spawn tcp ingress"),
            );
        }

        // --- Service hosts: one executor pool per (device, service) that is
        // actually bound by some module.
        let mut hosted: Vec<(String, String)> = plan
            .service_bindings
            .iter()
            .map(|b| (b.device.clone(), b.service.clone()))
            .collect();
        hosted.sort();
        hosted.dedup();
        for (device, service) in hosted {
            let image = services.get(&service).ok_or_else(|| {
                PipelineError::Deploy(format!("service image {service:?} not registered"))
            })?;
            let dev_spec = plan
                .device(&device)
                .ok_or_else(|| PipelineError::Deploy(format!("unknown device {device:?}")))?;
            let executors = dev_spec.cores.max(1);
            // Each executor gets its own clone of the MPMC inbox: requests
            // are pulled straight off the shared queue with no mutex
            // hand-off, so executors never contend on a lock to dequeue.
            let inbox = hub.bind(&svc_chan(&device, &service))?;
            for ex in 0..executors {
                let inbox = inbox.clone();
                let image = Arc::clone(&image);
                let shared = Arc::clone(&shared);
                let device = device.clone();
                let speed = dev_spec.speed_factor.max(1e-6);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("svc-{device}-{}-{ex}", image.name()))
                        .spawn(move || service_executor_loop(shared, inbox, image, device, speed))
                        .expect("spawn service executor"),
                );
            }
        }

        // --- Modules.
        let source_names: Vec<String> = plan
            .pipeline
            .sources()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        let sink_names: Vec<String> = plan
            .pipeline
            .sinks()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        for m in &plan.pipeline.modules {
            let device = plan
                .placement
                .device_for(&m.name)
                .ok_or_else(|| PipelineError::Deploy(format!("module {:?} unplaced", m.name)))?
                .to_string();
            let mut nexts = HashMap::new();
            for edge in plan.edges.iter().filter(|e| e.from == m.name) {
                nexts.insert(
                    edge.to.clone(),
                    (mod_chan(&pipeline, &edge.to), edge.cross_device),
                );
            }
            let mut svc_map = HashMap::new();
            for b in plan.service_bindings.iter().filter(|b| b.module == m.name) {
                svc_map.insert(
                    b.service.clone(),
                    (svc_chan(&b.device, &b.service), b.remote),
                );
            }
            let wiring = Arc::new(ModuleWiring {
                name: m.name.clone(),
                device,
                nexts,
                services: svc_map,
                is_source: source_names.contains(&m.name),
                is_sink: sink_names.contains(&m.name),
            });
            let inbox = hub.bind(&mod_chan(&pipeline, &m.name))?;
            let reply_rx = hub.bind(&reply_chan(&pipeline, &m.name))?;
            let factory = modules.factory(&m.include)?;
            let mut instance = modules.instantiate(&m.include)?;
            let shared2 = Arc::clone(&shared);
            let pipeline2 = pipeline.clone();
            let mut ctx = LocalCtx {
                shared: Arc::clone(&shared),
                wiring: Arc::clone(&wiring),
                pipeline: pipeline.clone(),
                header: Header::default(),
                epoch: 0,
                corr: 0,
                reply_rx,
                lkg: HashMap::new(),
                jitter: SeededJitter::new(seed_for(config.resilience.seed, &m.name)),
            };
            instance.init(&mut ctx)?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mod-{}", m.name))
                    .spawn(move || {
                        module_loop(shared2, inbox, instance, ctx, pipeline2, wiring, factory)
                    })
                    .expect("spawn module thread"),
            );
        }

        // --- Telemetry publisher (paper §7 monitoring).
        if let Some(interval) = config.telemetry_interval {
            let shared_t = Arc::clone(&shared);
            let pipeline_t = pipeline.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("telemetry-{pipeline}"))
                    .spawn(move || {
                        // Full-interval park; the gate ends it on teardown.
                        while !shared_t.gate.wait_shutdown(interval) {
                            let mut snapshot = {
                                let metrics = shared_t.metrics.lock();
                                crate::telemetry::TelemetrySnapshot::from_metrics(
                                    &pipeline_t,
                                    shared_t.now_ns(),
                                    &metrics,
                                )
                            };
                            snapshot.slo_level =
                                shared_t.knobs.level.load(Ordering::Relaxed) as u64;
                            snapshot.publish(&shared_t.hub);
                        }
                    })
                    .expect("spawn telemetry"),
            );
        }

        // --- Pacer thread (flow control at the source).
        let fc_inbox = hub.bind(&fc_chan(&pipeline))?;
        let shared3 = Arc::clone(&shared);
        let pipeline3 = pipeline.clone();
        let sources = source_names.clone();
        let pacer_device = source_device.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("pacer-{pipeline}"))
                .spawn(move || {
                    pacer_loop(shared3, fc_inbox, pipeline3, sources, pacer_device, config)
                })
                .expect("spawn pacer"),
        );

        Ok(LocalRuntime {
            shared,
            threads,
            pipeline,
        })
    }

    /// The pipeline name.
    pub fn pipeline(&self) -> &str {
        &self.pipeline
    }

    /// Subscribes a telemetry monitor to this pipeline (snapshots flow only
    /// when [`RuntimeConfig::telemetry_interval`] is set).
    ///
    /// # Errors
    ///
    /// Propagates hub binding errors.
    pub fn monitor(&self) -> Result<crate::telemetry::TelemetryMonitor, PipelineError> {
        crate::telemetry::TelemetryMonitor::subscribe(&self.shared.hub, &self.pipeline)
    }

    /// Frames delivered so far.
    pub fn deliveries(&self) -> u64 {
        self.shared.deliveries.load(Ordering::Relaxed)
    }

    /// Module instances restarted by supervision so far.
    pub fn restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::Relaxed)
    }

    /// Frame-store counters for `device`, including the encode-cache
    /// hit/miss tallies (diagnostics and tests).
    pub fn frame_store_stats(&self, device: &str) -> Option<videopipe_media::FrameStoreStats> {
        self.shared.stores.get(device).map(|s| s.stats())
    }

    /// The failure detector's current view of `device` (`None` when
    /// heartbeats are disabled).
    pub fn device_status(&self, device: &str) -> Option<DeviceStatus> {
        let now_ns = self.shared.now_ns();
        self.shared
            .detector
            .lock()
            .as_ref()
            .map(|d| d.status(device, now_ns))
    }

    /// The current fence epoch (0 until a device loss is confirmed).
    pub fn fence_epoch(&self) -> u64 {
        self.shared.fence_epoch.load(Ordering::SeqCst)
    }

    /// The SLO controller's current lattice level (0 = baseline; always 0
    /// when [`RuntimeConfig::slo`] is unset).
    pub fn slo_level(&self) -> usize {
        self.shared.knobs.level.load(Ordering::Relaxed)
    }

    /// Chaos hook: silences `device`'s heartbeat sender, as if the device
    /// dropped off the network. The failure detector will walk it through
    /// suspicion to confirmed loss. Returns whether the device was newly
    /// muted.
    pub fn inject_heartbeat_loss(&self, device: &str) -> bool {
        self.shared
            .muted_heartbeats
            .lock()
            .insert(device.to_string())
    }

    /// The latest checkpoint taken for `module`, if any (diagnostics and
    /// tests).
    pub fn checkpoint(&self, module: &str) -> Option<Vec<u8>> {
        self.shared.checkpoints.lock().get(module).cloned()
    }

    /// Chaos hook: severs every cross-device TCP connection mid-stream, as
    /// if the Wi-Fi link blipped (`Tcp` transport only; a no-op in `Inproc`
    /// mode). Senders carry a reconnect policy, so traffic buffers and
    /// re-establishes transparently. Returns the number of connections
    /// severed.
    pub fn inject_tcp_disconnect(&self) -> usize {
        let mut severed = 0;
        for peer in self.shared.router.tcp_peers.values() {
            peer.inject_disconnect();
            severed += 1;
        }
        severed
    }

    /// Runs until `wall` elapses, then stops and reports.
    pub fn run_for(self, wall: Duration) -> RunReport {
        std::thread::sleep(wall);
        self.finish()
    }

    /// Runs until `n` frames are delivered or `max_wall` elapses.
    pub fn run_until_deliveries(self, n: u64, max_wall: Duration) -> RunReport {
        let deadline = Instant::now() + max_wall;
        while self.deliveries() < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.finish()
    }

    /// Stops all threads and collects the report.
    pub fn finish(self) -> RunReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake every interval-parked watcher so joins are O(ms) even with
        // multi-second heartbeat/SLO/telemetry intervals.
        self.shared.gate.trigger();
        for t in self.threads {
            let _ = t.join();
        }
        collect_report(&self.shared)
    }
}

/// Builds the end-of-run report from a pipeline's shared state (used by
/// both the threaded runtime and the reactor).
pub(crate) fn collect_report(shared: &Shared) -> RunReport {
    let run_duration_ns = shared.now_ns();
    let mut metrics = shared.metrics.lock().clone();
    metrics.run_duration_ns = run_duration_ns;
    let breakers = shared
        .breakers
        .lock()
        .iter()
        .map(|(name, b)| (name.clone(), b.snapshot()))
        .collect();
    let device_statuses = shared
        .detector
        .lock()
        .as_ref()
        .map(|d| d.statuses(run_duration_ns))
        .unwrap_or_default();
    RunReport {
        metrics,
        logs: std::mem::take(&mut *shared.logs.lock()),
        errors: std::mem::take(&mut *shared.errors.lock()),
        restarts: shared.restarts.load(Ordering::Relaxed),
        breakers,
        device_statuses,
        fence_epoch: shared.fence_epoch.load(Ordering::SeqCst),
        slo_level: shared.knobs.level.load(Ordering::Relaxed),
        slo_moves: shared.knobs.moves.load(Ordering::Relaxed),
        slo_flaps: shared.knobs.flaps.load(Ordering::Relaxed),
        scheduler: Vec::new(),
        checkpoints: shared.checkpoints.lock().clone(),
    }
}

impl std::fmt::Debug for LocalRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalRuntime")
            .field("pipeline", &self.pipeline)
            .field("threads", &self.threads.len())
            .finish()
    }
}

pub(crate) const POLL: Duration = Duration::from_millis(20);

fn service_executor_loop(
    shared: Arc<Shared>,
    inbox: videopipe_net::InprocReceiver,
    image: Arc<dyn crate::service::Service>,
    device: String,
    speed: f64,
) {
    let host = format!("{device}/{}", image.name());
    let batch = shared.config.batch_for(image.name());
    // Observed inter-arrival gap (EWMA, ns): drives the adaptive drain
    // deadline. Starts at one POLL so an idle executor never waits for a
    // second request that isn't coming.
    let mut ewma_gap_ns = POLL.as_nanos() as f64;
    let mut last_arrival: Option<Instant> = None;
    while !shared.stop.load(Ordering::SeqCst) {
        let msg = match inbox.recv_timeout(POLL) {
            Ok(m) => m,
            Err(_) => continue,
        };
        if msg.kind != MessageKind::Request {
            continue;
        }
        // Re-read per dispatch: the SLO controller may raise the batch
        // ceiling mid-run (one relaxed atomic load; the drain policy and
        // its adaptive wait are otherwise unchanged).
        let max_batch = shared.effective_max_batch(image.name());
        // Backlog behind this request, sampled BEFORE the drain below
        // empties the queue — `max_queue_depth` must keep reflecting true
        // pressure, not the post-drain emptiness.
        let queue_depth = inbox.pending() as u64;
        let now = Instant::now();
        if let Some(prev) = last_arrival {
            let gap = now.duration_since(prev).as_nanos() as f64;
            ewma_gap_ns = 0.8 * ewma_gap_ns + 0.2 * gap;
        }
        last_arrival = Some(now);

        let mut msgs = vec![msg];
        if max_batch > 1 {
            // Free drain: anything already queued joins the batch with zero
            // added latency.
            while msgs.len() < max_batch {
                match inbox.try_recv() {
                    Ok(m) if m.kind == MessageKind::Request => msgs.push(m),
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            // Adaptive wait: hold a partial batch open only under observed
            // pressure — a backlog existed at dequeue, or arrivals are
            // faster than the wait ceiling — for a deadline scaled by the
            // measured arrival rate. At low load this branch never runs, so
            // single-request p99 is untouched.
            let pressured = queue_depth > 0 || ewma_gap_ns < batch.max_wait.as_nanos() as f64;
            if msgs.len() < max_batch && pressured {
                let missing = (max_batch - msgs.len()) as f64;
                let deadline =
                    Duration::from_nanos((ewma_gap_ns * missing) as u64).min(batch.max_wait);
                let deadline_at = now + deadline;
                while msgs.len() < max_batch {
                    let remaining = deadline_at.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    match inbox.recv_timeout(remaining) {
                        Ok(m) if m.kind == MessageKind::Request => msgs.push(m),
                        Ok(_) => {}
                        Err(_) => break,
                    }
                }
            }
        }

        let started = Instant::now();
        let batch_len = msgs.len() as u64;
        let store = shared.stores.get(&device).expect("store");

        // Decode every request up front. A slot that fails here still gets
        // a typed error reply below — a caller must never wait out its full
        // deadline because the executor dropped its request on the floor.
        let mut slots: Vec<Result<ServiceRequest, PipelineError>> = msgs
            .iter()
            .map(|m| ServiceRequest::decode(&m.payload))
            .collect();
        // Cross-device frames arrive encoded; decode the whole batch in one
        // pass (shared scratch plane, per-shift LUT reuse) into the local
        // store so the service sees FrameRefs like any other request.
        let encoded: Vec<(usize, bytes::Bytes)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Ok(req) => match &req.payload {
                    Payload::EncodedFrame(bytes) => Some((i, bytes.clone())),
                    _ => None,
                },
                Err(_) => None,
            })
            .collect();
        if !encoded.is_empty() {
            let frames = codec::decode_batch(encoded.iter().map(|(_, b)| b.as_ref()));
            for ((i, _), result) in encoded.iter().zip(frames) {
                match result {
                    Ok(frame) => {
                        if let Ok(req) = &mut slots[*i] {
                            req.payload = Payload::FrameRef(store.insert(frame));
                        }
                    }
                    Err(e) => {
                        shared.errors.lock().push(format!(
                            "service {}: frame decode failed: {e}",
                            image.name()
                        ));
                        slots[*i] = Err(PipelineError::Service {
                            service: image.name().to_string(),
                            reason: format!("frame decode failed: {e}"),
                        });
                    }
                }
            }
        }

        // Emulate the modeled compute cost: one sleep for the whole batch.
        // The leading request pays its full base cost, followers pay the
        // amortised batched base.
        if shared.config.time_scale > 0.0 {
            let mut modeled = Duration::ZERO;
            let mut first = true;
            for (slot, m) in slots.iter().zip(&msgs) {
                if let Ok(req) = slot {
                    modeled += image.cost(req).for_batch_item(first, m.payload.len());
                    first = false;
                }
            }
            if !modeled.is_zero() {
                std::thread::sleep(modeled.mul_f64(shared.config.time_scale / speed.max(1e-6)));
            }
        }

        // Supervise the batch handler: a panicking service (a crashed
        // container) must not take the executor thread with it. A panic
        // fails every request of the batch with a typed error reply, so the
        // caller side records one breaker event per *request*, never one
        // per batch.
        let ready: Vec<ServiceRequest> = slots
            .iter()
            .filter_map(|slot| slot.as_ref().ok().cloned())
            .collect();
        let handled: Vec<Result<ServiceResponse, PipelineError>> = if ready.is_empty() {
            Vec::new()
        } else {
            match catch_unwind(AssertUnwindSafe(|| image.handle_batch(&ready, store))) {
                Ok(results) => results,
                Err(panic) => {
                    let reason = format!("panicked: {}", panic_message(panic.as_ref()));
                    (0..ready.len())
                        .map(|_| {
                            Err(PipelineError::Service {
                                service: image.name().to_string(),
                                reason: reason.clone(),
                            })
                        })
                        .collect()
                }
            }
        };
        let mut handled = handled.into_iter();
        for (m, slot) in msgs.iter().zip(slots) {
            let response = match slot {
                Ok(_) => handled.next().unwrap_or_else(|| {
                    // A handle_batch override returned too few results;
                    // surface that as a per-request error rather than
                    // misaligning replies.
                    Err(PipelineError::Service {
                        service: image.name().to_string(),
                        reason: "handle_batch returned too few results".to_string(),
                    })
                }),
                Err(e) => Err(e),
            };
            match response {
                Ok(resp) => {
                    let _ = shared
                        .router
                        .send_from(&device, WireMessage::response_to(m, resp.encode()));
                }
                Err(e) => {
                    // A handler failure is not yet a pipeline error: the
                    // typed error response below lets the caller retry, and
                    // only an *unrecovered* failure is recorded (by the
                    // module loop). Keep a log line for diagnostics.
                    shared
                        .logs
                        .lock()
                        .push(format!("service {}: {e}", image.name()));
                    // Reply with a typed error payload so the caller fails
                    // fast and can retry or degrade instead of timing out.
                    let _ = shared.router.send_from(
                        &device,
                        WireMessage::response_to(
                            m,
                            ServiceResponse::new(Payload::Error(e.to_string())).encode(),
                        ),
                    );
                }
            }
        }
        let busy_ns = started.elapsed().as_nanos() as u64;
        shared
            .metrics
            .lock()
            .record_dispatch_batch(&host, busy_ns, queue_depth, batch_len);
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn module_loop(
    shared: Arc<Shared>,
    inbox: videopipe_net::InprocReceiver,
    mut instance: Box<dyn Module>,
    mut ctx: LocalCtx,
    _pipeline: String,
    wiring: Arc<ModuleWiring>,
    factory: ModuleFactory,
) {
    let checkpoint_period = shared.config.checkpoint_period;
    let mut last_checkpoint = Instant::now();
    while !shared.stop.load(Ordering::SeqCst) {
        // Periodic checkpoint: persist the instance's recoverable state so
        // a restarted replacement resumes near where this one died.
        if let Some(period) = checkpoint_period {
            if last_checkpoint.elapsed() >= period {
                last_checkpoint = Instant::now();
                if let Some(snap) = instance.snapshot() {
                    shared.checkpoints.lock().insert(wiring.name.clone(), snap);
                }
            }
        }
        let msg = match inbox.recv_timeout(POLL) {
            Ok(m) => m,
            Err(_) => continue,
        };
        ctx.epoch = msg.epoch;
        let event = match msg.kind {
            MessageKind::Signal if wiring.is_source => {
                ctx.set_header(Header {
                    frame_seq: msg.seq,
                    capture_ts_ns: msg.timestamp_ns,
                });
                Event::FrameTick {
                    t_ns: msg.timestamp_ns,
                }
            }
            MessageKind::Data => {
                let payload = match Payload::decode(&msg.payload) {
                    Ok(Payload::EncodedFrame(bytes)) => match codec::decode(&bytes) {
                        Ok(frame) => Payload::FrameRef(ctx.store().insert(frame)),
                        Err(e) => {
                            shared
                                .errors
                                .lock()
                                .push(format!("{}: frame decode failed: {e}", wiring.name));
                            continue;
                        }
                    },
                    Ok(p) => p,
                    Err(e) => {
                        shared
                            .errors
                            .lock()
                            .push(format!("{}: payload decode failed: {e}", wiring.name));
                        continue;
                    }
                };
                ctx.set_header(Header {
                    frame_seq: msg.seq,
                    capture_ts_ns: msg.timestamp_ns,
                });
                Event::Message(Message::new(ctx.header(), payload))
            }
            _ => continue,
        };

        let start = Instant::now();
        let result = match catch_unwind(AssertUnwindSafe(|| instance.on_event(event, &mut ctx))) {
            Ok(result) => result,
            Err(panic) => {
                // Supervision: the instance may hold poisoned state, so
                // replace it with a fresh one and keep the thread alive.
                // The in-flight frame dies and returns its credit through
                // the error path below.
                instance = factory();
                let _ = catch_unwind(AssertUnwindSafe(|| instance.init(&mut ctx)));
                // Checkpointed restart: hand the replacement the latest
                // snapshot so stateful modules resume rather than reset.
                if let Some(snap) = shared.checkpoints.lock().get(&wiring.name).cloned() {
                    instance.restore(&snap);
                }
                shared.restarts.fetch_add(1, Ordering::Relaxed);
                Err(PipelineError::Module {
                    module: wiring.name.clone(),
                    reason: format!("panicked: {}", panic_message(panic.as_ref())),
                })
            }
        };
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        {
            let mut metrics = shared.metrics.lock();
            metrics.record_stage(&wiring.name, elapsed_ns);
        }
        match result {
            Ok(()) => {
                if wiring.is_sink {
                    // End-to-end accounting happens at the pacer on the
                    // completion signal; sinks that forget to signal stall
                    // the pipeline, so signal on their behalf if they have
                    // no explicit flow-control role.
                }
            }
            Err(e) => {
                // Errors caused by the runtime tearing down (peers already
                // gone) are shutdown artifacts, not pipeline failures.
                if shared.stop.load(Ordering::SeqCst) {
                    continue;
                }
                shared.errors.lock().push(format!("{}: {e}", wiring.name));
                // The frame died here: return its credit so the pipeline
                // keeps flowing. A Control-kind message distinguishes this
                // from a real completion so it is not counted as delivered.
                let _ = shared.router.send_from(
                    &wiring.device,
                    WireMessage {
                        kind: MessageKind::Control,
                        channel: fc_chan(&ctx.pipeline),
                        reply_to: String::new(),
                        corr_id: 0,
                        seq: ctx.header.frame_seq,
                        timestamp_ns: ctx.header.capture_ts_ns,
                        epoch: ctx.epoch,
                        payload: bytes::Bytes::new(),
                    },
                );
            }
        }
    }
    // Final checkpoint at teardown: a graceful shutdown (SIGTERM, drain)
    // should hand off the freshest recoverable state, not whatever the
    // last periodic tick happened to capture.
    if checkpoint_period.is_some() {
        if let Some(snap) = instance.snapshot() {
            shared.checkpoints.lock().insert(wiring.name.clone(), snap);
        }
    }
}

fn pacer_loop(
    shared: Arc<Shared>,
    fc_inbox: videopipe_net::InprocReceiver,
    pipeline: String,
    sources: Vec<String>,
    source_device: String,
    config: RuntimeConfig,
) {
    let mut pacer = SourcePacer::new(config.fps);
    let mut controller = CreditController::new(config.credits);
    let interval = Duration::from_nanos(pacer.interval_ns());
    let epoch = Instant::now();
    let lease = config.resilience.credit_timeout;
    // Outstanding admissions are tracked by frame seq for credit-lease
    // expiry and for epoch fencing (either feature needs the set).
    let track_outstanding = lease.is_some() || config.heartbeats.is_some();
    let mut outstanding: HashMap<u64, Instant> = HashMap::new();
    // Fence epoch this pacer is admitting under. A bump (confirmed device
    // loss) fences everything in flight: those frames may be lost, half
    // delivered, or redelivered — their credits come back here and any
    // late signal they still produce is ignored.
    let mut current_epoch = shared.fence_epoch.load(Ordering::SeqCst);
    // Recently delivered frame seqs, for redelivery dedup (at-least-once
    // delivery must not double-count).
    let dedup_window = config.dedup_window;
    let mut dedup_order: VecDeque<u64> = VecDeque::with_capacity(dedup_window);
    let mut dedup_set: HashSet<u64> = HashSet::with_capacity(dedup_window);
    // Align pacer ticks to wall time.
    let mut next_tick = epoch;
    'run: while !shared.stop.load(Ordering::SeqCst) {
        // Drain completion signals until the next tick.
        loop {
            let now = Instant::now();
            if now >= next_tick {
                break;
            }
            // Epoch bump: proactively fault every outstanding admission so
            // the source regains its credits immediately instead of waiting
            // out a lease on frames the dead device will never finish.
            let fence = shared.fence_epoch.load(Ordering::SeqCst);
            if fence != current_epoch {
                current_epoch = fence;
                let fenced = outstanding.len() as u64;
                for _ in outstanding.drain() {
                    controller.fault();
                }
                if fenced > 0 {
                    shared.logs.lock().push(format!(
                        "pacer: fenced {fenced} in-flight frame(s) at epoch {current_epoch}"
                    ));
                }
            }
            let wait = (next_tick - now).min(POLL);
            if let Ok(msg) = fc_inbox.recv_timeout(wait) {
                // Redelivered frame already counted: drop the signal whole —
                // its credit was settled the first time around.
                if dedup_window > 0
                    && msg.kind == MessageKind::Signal
                    && dedup_set.contains(&msg.seq)
                {
                    continue;
                }
                // When admissions are tracked, only outstanding frames may
                // return a credit: anything else is a late echo of an
                // already expired lease or a fenced epoch, and honouring it
                // would free a credit that belongs to a different frame.
                let known = !track_outstanding || outstanding.remove(&msg.seq).is_some();
                // Signals from a dead epoch are fenced: the credit (if
                // still held) is reclaimed through the fault path, and the
                // delivery is NOT counted.
                let fenced = msg.epoch != current_epoch;
                match msg.kind {
                    MessageKind::Signal if known && !fenced => {
                        controller.complete();
                        if dedup_window > 0 {
                            if dedup_order.len() == dedup_window {
                                if let Some(old) = dedup_order.pop_front() {
                                    dedup_set.remove(&old);
                                }
                            }
                            dedup_order.push_back(msg.seq);
                            dedup_set.insert(msg.seq);
                        }
                        let now_ns = shared.now_ns();
                        let latency = now_ns.saturating_sub(msg.timestamp_ns);
                        let mut metrics = shared.metrics.lock();
                        metrics.record_delivery(now_ns, latency);
                        drop(metrics);
                        shared.deliveries.fetch_add(1, Ordering::Relaxed);
                    }
                    MessageKind::Signal if known => controller.fault(),
                    // Error-path credit return: the frame died mid-pipeline.
                    MessageKind::Control if known => controller.fault(),
                    _ => {}
                }
            }
            if shared.stop.load(Ordering::SeqCst) {
                break 'run;
            }
        }
        // Expire credit leases: a frame that produced no signal within the
        // timeout (lost across a dead link, wedged beyond every deadline)
        // has its credit reclaimed so the source cannot stall forever.
        if let Some(timeout) = lease {
            let now = Instant::now();
            let expired: Vec<u64> = outstanding
                .iter()
                .filter(|(_, admitted_at)| now.duration_since(**admitted_at) > timeout)
                .map(|(seq, _)| *seq)
                .collect();
            for seq in expired {
                outstanding.remove(&seq);
                controller.fault();
                shared
                    .errors
                    .lock()
                    .push(format!("pacer: credit lease expired for frame {seq}"));
            }
        }
        // Camera tick. The SLO controller's sampling/shedding knobs thin
        // admission here, before a credit is spent: with a stride of N only
        // every N-th camera tick competes for a credit at all, and the
        // skipped ticks are accounted as source drops.
        pacer.advance();
        next_tick += interval;
        let stride = shared.knobs.admit_stride();
        let sampled_out = stride > 1 && !pacer.ticks().is_multiple_of(stride);
        let admitted = !sampled_out && controller.try_admit();
        {
            let mut metrics = shared.metrics.lock();
            metrics.frames_offered = metrics.frames_offered.saturating_add(1);
            if !admitted {
                metrics.frames_dropped = metrics.frames_dropped.saturating_add(1);
            }
        }
        if admitted {
            if track_outstanding {
                outstanding.insert(pacer.ticks(), Instant::now());
            }
            let t_ns = shared.now_ns();
            for source in &sources {
                let _ = shared.router.send_from(
                    &source_device,
                    WireMessage {
                        kind: MessageKind::Signal,
                        channel: mod_chan(&pipeline, source),
                        reply_to: String::new(),
                        corr_id: 0,
                        seq: pacer.ticks(),
                        timestamp_ns: t_ns,
                        epoch: current_epoch,
                        payload: bytes::Bytes::new(),
                    },
                );
            }
        }
    }
    // Final credit accounting: lets reports prove no credit leaked
    // (admitted == delivered + faulted + in_flight).
    let mut metrics = shared.metrics.lock();
    metrics.frames_admitted = controller.admitted();
    metrics.frames_faulted = controller.faulted();
    metrics.in_flight_at_end = controller.in_flight();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{plan, DeviceSpec, Placement};
    use crate::service::{Service, ServiceCost};
    use crate::spec::{ModuleSpec, PipelineSpec};
    use videopipe_media::{Frame, FrameBuf};

    /// Source: mints a tiny frame per tick and forwards the reference.
    struct TestSource;
    impl Module for TestSource {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::FrameTick { t_ns } = event {
                let frame: Frame = FrameBuf::new(16, 16).freeze(ctx.header().frame_seq, t_ns);
                let id = ctx.frame_store().insert(frame);
                ctx.call_module("mid", Payload::FrameRef(id))?;
            }
            Ok(())
        }
    }

    /// Middle: calls the doubling service on a count derived from the frame.
    struct TestMid;
    impl Module for TestMid {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(msg) = event {
                let Payload::FrameRef(id) = msg.payload else {
                    return Err(PipelineError::BadPayload("expected frame"));
                };
                let frame = ctx.frame_store().get(id)?;
                let resp = ctx.call_service(
                    "doubler",
                    ServiceRequest::new("double", Payload::Count(frame.seq())),
                )?;
                ctx.frame_store().release(id);
                ctx.call_module("sink", resp.payload)?;
            }
            Ok(())
        }
    }

    /// Sink: records the count and signals the source.
    struct TestSink;
    impl Module for TestSink {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(msg) = event {
                if let Payload::Count(n) = msg.payload {
                    ctx.log(&format!("got {n}"));
                }
                ctx.signal_source()?;
            }
            Ok(())
        }
    }

    struct Doubler;
    impl Service for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn handle(
            &self,
            request: &ServiceRequest,
            _store: &FrameStore,
        ) -> Result<ServiceResponse, PipelineError> {
            match request.payload {
                Payload::Count(n) => Ok(ServiceResponse::new(Payload::Count(n * 2))),
                ref other => Err(crate::service::wrong_payload("doubler", "count", other)),
            }
        }
        fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
            ServiceCost::flat(Duration::from_millis(1))
        }
    }

    fn test_spec() -> PipelineSpec {
        PipelineSpec::new("test")
            .with_module(ModuleSpec::new("src", "TestSource").with_next("mid"))
            .with_module(
                ModuleSpec::new("mid", "TestMid")
                    .with_service("doubler")
                    .with_next("sink"),
            )
            .with_module(ModuleSpec::new("sink", "TestSink"))
    }

    fn registries() -> (ModuleRegistry, ServiceRegistry) {
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(TestMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(Doubler));
        (modules, services)
    }

    fn run_pipeline(devices: Vec<DeviceSpec>, placement: Placement) -> RunReport {
        let spec = test_spec();
        let plan = plan(&spec, &devices, &placement).unwrap();
        let (modules, services) = registries();
        let config = RuntimeConfig {
            fps: 200.0,
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        runtime.run_until_deliveries(10, Duration::from_secs(10))
    }

    #[test]
    fn single_device_pipeline_delivers_frames() {
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(2)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let report = run_pipeline(devices, placement);
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert!(report.logs.iter().any(|l| l.starts_with("sink: got")));
        // Stage metrics exist for all three modules.
        assert!(report.metrics.stages.contains_key("src"));
        assert!(report.metrics.stages.contains_key("mid"));
        assert!(report.metrics.stages.contains_key("sink"));
        assert!(report.metrics.fps() > 0.0);
        // Executor dispatch counters flowed into the report.
        let dispatch = report
            .metrics
            .dispatch
            .get("one/doubler")
            .expect("dispatch stats for the doubler host");
        assert!(dispatch.requests >= 10, "{dispatch:?}");
        assert!(dispatch.busy_ns > 0, "{dispatch:?}");
    }

    #[test]
    fn cross_device_pipeline_transcodes_frames() {
        let devices = vec![
            DeviceSpec::new("phone", 1.0),
            DeviceSpec::new("desktop", 1.0)
                .with_containers(2)
                .with_service("doubler"),
        ];
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "desktop")
            .assign("sink", "phone");
        let report = run_pipeline(devices, placement);
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
    }

    #[test]
    fn tcp_transport_runs_the_cross_device_pipeline() {
        // Same topology as `cross_device_pipeline_transcodes_frames`, but
        // every cross-device message travels over real loopback TCP.
        let devices = vec![
            DeviceSpec::new("phone", 1.0),
            DeviceSpec::new("desktop", 1.0)
                .with_containers(2)
                .with_service("doubler"),
        ];
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "desktop")
            .assign("sink", "phone");
        let spec = test_spec();
        let plan = plan(&spec, &devices, &placement).unwrap();
        let (modules, services) = registries();
        let config = RuntimeConfig {
            fps: 200.0,
            transport: EdgeTransport::Tcp,
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_until_deliveries(10, Duration::from_secs(15));
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
    }

    /// Middle module that sends the *same frame* to the remote service
    /// twice per tick — the fan-out pattern the encode cache exists for.
    struct FanoutMid;
    impl Module for FanoutMid {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(msg) = event {
                let Payload::FrameRef(id) = msg.payload else {
                    return Err(PipelineError::BadPayload("expected frame"));
                };
                for _ in 0..2 {
                    ctx.call_service("doubler", ServiceRequest::new("eat", Payload::FrameRef(id)))?;
                }
                ctx.frame_store().release(id);
                ctx.call_module("sink", Payload::Count(1))?;
            }
            Ok(())
        }
    }

    /// Service that accepts any payload (frames included) and answers with
    /// a count.
    struct FrameEater;
    impl Service for FrameEater {
        fn name(&self) -> &str {
            "doubler"
        }
        fn handle(
            &self,
            request: &ServiceRequest,
            store: &FrameStore,
        ) -> Result<ServiceResponse, PipelineError> {
            if let Payload::FrameRef(id) = request.payload {
                store.release(id);
            }
            Ok(ServiceResponse::new(Payload::Count(1)))
        }
        fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
            ServiceCost::flat(Duration::from_millis(1))
        }
    }

    #[test]
    fn remote_fan_out_hits_the_encode_cache() {
        let devices = vec![
            DeviceSpec::new("phone", 1.0),
            DeviceSpec::new("desktop", 1.0)
                .with_containers(2)
                .with_service("doubler"),
        ];
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "phone")
            .assign("sink", "phone");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(FanoutMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(FrameEater));
        let config = RuntimeConfig {
            fps: 200.0,
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while runtime.deliveries() < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = runtime
            .frame_store_stats("phone")
            .expect("phone frame store");
        let report = runtime.finish();
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        // Two remote calls per frame, one codec run per frame: the second
        // call must hit the cache.
        assert!(
            stats.encode_hits >= 10,
            "expected >=10 encode-cache hits, got {stats:?}"
        );
        assert!(
            stats.encode_misses <= stats.inserted,
            "at most one encode per frame: {stats:?}"
        );
    }

    #[test]
    fn remote_service_binding_works() {
        // Baseline topology: module on phone, service on desktop.
        let devices = vec![
            DeviceSpec::new("phone", 1.0),
            DeviceSpec::new("desktop", 1.0)
                .with_containers(2)
                .with_service("doubler"),
        ];
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "phone")
            .assign("sink", "phone");
        let report = run_pipeline(devices, placement);
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
    }

    #[test]
    fn flow_control_limits_in_flight_frames() {
        // With one credit and a fast camera, drops must occur while
        // deliveries continue.
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(1)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let spec = test_spec();
        let plan = plan(&spec, &devices, &placement).unwrap();
        let (modules, services) = registries();
        let config = RuntimeConfig {
            fps: 2000.0,
            credits: 1,
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_for(Duration::from_millis(500));
        assert!(report.metrics.frames_delivered > 0);
        assert!(report.metrics.frames_offered > report.metrics.frames_delivered);
    }

    #[test]
    fn telemetry_monitor_receives_snapshots() {
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(2)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let (modules, services) = registries();
        let config = RuntimeConfig {
            fps: 200.0,
            telemetry_interval: Some(Duration::from_millis(40)),
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let mut monitor = runtime.monitor().unwrap();
        let report = runtime.run_for(Duration::from_millis(400));
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let received = monitor.poll();
        assert!(received >= 2, "only {received} snapshots");
        let latest = monitor.latest().unwrap();
        assert_eq!(latest.pipeline, "test");
        assert!(latest.frames_delivered > 0);
        assert!(latest.stage_means_ms.contains_key("mid"));
        // Snapshots are monotone in time and delivered count.
        let history = monitor.history();
        for pair in history.windows(2) {
            assert!(pair[1].at_ns >= pair[0].at_ns);
            assert!(pair[1].frames_delivered >= pair[0].frames_delivered);
        }
    }

    #[test]
    fn deploy_rejects_missing_module_include() {
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(1)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let (_, services) = registries();
        let empty_modules = ModuleRegistry::new();
        let result =
            LocalRuntime::deploy(&plan, &empty_modules, &services, RuntimeConfig::default());
        assert!(result.is_err());
    }

    #[test]
    fn deploy_rejects_missing_service_image() {
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(1)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let (modules, _) = registries();
        let empty_services = ServiceRegistry::new();
        let result =
            LocalRuntime::deploy(&plan, &modules, &empty_services, RuntimeConfig::default());
        assert!(result.is_err());
    }

    #[test]
    fn deploy_validates_config_with_typed_errors() {
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(1)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let (modules, services) = registries();
        let expect_invalid = |config: RuntimeConfig, field: &str| match LocalRuntime::deploy(
            &plan, &modules, &services, config,
        ) {
            Err(PipelineError::InvalidConfig { field: f, .. }) => {
                assert_eq!(f, field, "wrong field reported")
            }
            other => panic!("expected InvalidConfig({field}), got {other:?}"),
        };
        expect_invalid(
            RuntimeConfig {
                fps: 0.0,
                ..RuntimeConfig::default()
            },
            "fps",
        );
        expect_invalid(
            RuntimeConfig {
                fps: f64::NAN,
                ..RuntimeConfig::default()
            },
            "fps",
        );
        expect_invalid(
            RuntimeConfig {
                credits: 0,
                ..RuntimeConfig::default()
            },
            "credits",
        );
        expect_invalid(
            RuntimeConfig {
                batch: BatchConfig {
                    max_batch: 0,
                    max_wait: Duration::from_millis(2),
                },
                ..RuntimeConfig::default()
            },
            "batch.max_batch",
        );
        expect_invalid(
            RuntimeConfig::default().with_service_batch(
                "doubler",
                BatchConfig {
                    max_batch: 0,
                    max_wait: Duration::from_millis(2),
                },
            ),
            "service_batch",
        );
        // Inverted SLO bounds: p50 above p99.
        let mut slo = crate::slo::SloConfig::p99(Duration::from_millis(50));
        slo.slo.p50 = Some(Duration::from_millis(80));
        expect_invalid(RuntimeConfig::default().with_slo(slo), "slo");
        // Inverted hysteresis band.
        let mut slo = crate::slo::SloConfig::p99(Duration::from_millis(50));
        slo.relax_headroom = 2.0;
        expect_invalid(RuntimeConfig::default().with_slo(slo), "slo");
        // The typed error renders the field name for operators.
        let err = RuntimeConfig {
            credits: 0,
            ..RuntimeConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("credits"), "{err}");
    }

    #[test]
    fn slo_controller_degrades_overloaded_pipeline_and_logs_moves() {
        // 100 fps offered into a ~30 ms service with 4 credits: queueing
        // drives end-to-end p99 way past the 5 ms target, so the controller
        // must walk down its lattice and thin admission.
        let (devices, placement) = one_device();
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(TestMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(Sleepy2));
        let mut slo = crate::slo::SloConfig::p99(Duration::from_millis(5))
            .with_interval(Duration::from_millis(120))
            .with_dwell(Duration::from_millis(120))
            .with_lattice(vec![
                crate::slo::Knob::CodecQuality { shift: 6 },
                crate::slo::Knob::SampleRate { divisor: 2 },
                crate::slo::Knob::SampleRate { divisor: 4 },
            ]);
        // The overloaded pipeline only delivers ~30 fps, so a 120 ms window
        // holds only a few frames; judge on 2+.
        slo.min_window = 2;
        let config = RuntimeConfig {
            fps: 100.0,
            credits: 4,
            slo: Some(slo),
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_for(Duration::from_millis(900));
        assert!(
            report.slo_level > 0,
            "controller never engaged: {:?}",
            report.logs
        );
        assert!(report.slo_moves >= 1);
        assert!(
            report.logs.iter().any(|l| l.starts_with("slo: step down")),
            "no controller log line: {:?}",
            report.logs
        );
        // Dwell 60 ms over a 900 ms run bounds the move rate.
        assert!(
            report.slo_moves <= 15,
            "dwell violated: {} moves",
            report.slo_moves
        );
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    /// A service slow enough (~30 ms) to overload a 100 fps source.
    struct Sleepy2;
    impl Service for Sleepy2 {
        fn name(&self) -> &str {
            "doubler"
        }
        fn handle(
            &self,
            request: &ServiceRequest,
            _store: &FrameStore,
        ) -> Result<ServiceResponse, PipelineError> {
            std::thread::sleep(Duration::from_millis(30));
            let n = match request.payload {
                Payload::Count(n) => n,
                _ => 0,
            };
            Ok(ServiceResponse::new(Payload::Count(n * 2)))
        }
        fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
            ServiceCost::flat(Duration::from_millis(1))
        }
    }

    #[test]
    fn handler_errors_are_reported_not_fatal() {
        struct FailingMid;
        impl Module for FailingMid {
            fn on_event(
                &mut self,
                event: Event,
                _ctx: &mut dyn ModuleCtx,
            ) -> Result<(), PipelineError> {
                if matches!(event, Event::Message(_)) {
                    return Err(PipelineError::Module {
                        module: "mid".into(),
                        reason: "boom".into(),
                    });
                }
                Ok(())
            }
        }
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(1)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(FailingMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(Doubler));
        let runtime = LocalRuntime::deploy(
            &plan,
            &modules,
            &services,
            RuntimeConfig {
                fps: 100.0,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let report = runtime.run_for(Duration::from_millis(300));
        assert!(!report.errors.is_empty());
        // The pipeline did not stall: multiple frames flowed (and errored).
        assert!(report.metrics.stages["mid"].count() > 1);
    }

    /// A service that sleeps longer than any reasonable test deadline.
    struct Sleepy;
    impl Service for Sleepy {
        fn name(&self) -> &str {
            "doubler"
        }
        fn handle(
            &self,
            _request: &ServiceRequest,
            _store: &FrameStore,
        ) -> Result<ServiceResponse, PipelineError> {
            std::thread::sleep(Duration::from_millis(80));
            Ok(ServiceResponse::new(Payload::Count(0)))
        }
        fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
            ServiceCost::flat(Duration::from_millis(1))
        }
    }

    fn one_device() -> (Vec<DeviceSpec>, Placement) {
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(2)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        (devices, placement)
    }

    #[test]
    fn service_call_deadline_is_configurable_and_typed() {
        let (devices, placement) = one_device();
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(TestMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(Sleepy));
        let config = RuntimeConfig {
            fps: 50.0,
            resilience: ResilienceConfig {
                service_call_timeout: Duration::from_millis(10),
                ..ResilienceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_for(Duration::from_millis(400));
        assert!(
            report.errors.iter().any(|e| e.contains("timed out")),
            "expected a typed timeout in {:?}",
            report.errors
        );
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    #[test]
    fn retries_recover_transient_service_faults() {
        let (devices, placement) = one_device();
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(TestMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        // Every second request fails; one retry always succeeds.
        services.install(Arc::new(crate::service::ChaosService::new(
            Arc::new(Doubler),
            2,
        )));
        let config = RuntimeConfig {
            fps: 200.0,
            resilience: ResilienceConfig {
                retry: crate::resilience::RetryPolicy::exponential(
                    3,
                    Duration::from_millis(1),
                    Duration::from_millis(5),
                ),
                ..ResilienceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_until_deliveries(10, Duration::from_secs(10));
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    #[test]
    fn panicked_module_is_restarted_and_pipeline_survives() {
        struct PanickyMid {
            calls: u64,
        }
        impl Module for PanickyMid {
            fn on_event(
                &mut self,
                event: Event,
                ctx: &mut dyn ModuleCtx,
            ) -> Result<(), PipelineError> {
                if let Event::Message(msg) = event {
                    self.calls += 1;
                    if self.calls % 3 == 0 {
                        panic!("injected module panic");
                    }
                    let Payload::FrameRef(id) = msg.payload else {
                        return Err(PipelineError::BadPayload("expected frame"));
                    };
                    ctx.frame_store().release(id);
                    ctx.call_module("sink", Payload::Count(1))?;
                }
                Ok(())
            }
        }
        let (devices, placement) = one_device();
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(PanickyMid { calls: 0 }));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(Doubler));
        let config = RuntimeConfig {
            fps: 200.0,
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_until_deliveries(10, Duration::from_secs(10));
        assert!(report.restarts >= 1, "no restarts recorded");
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(
            report.errors.iter().any(|e| e.contains("panicked")),
            "{:?}",
            report.errors
        );
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    /// Middle module that fires a burst of uniquely-tagged requests per
    /// frame at the shared executor pool.
    struct BurstMid;
    impl Module for BurstMid {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(msg) = event {
                let Payload::FrameRef(id) = msg.payload else {
                    return Err(PipelineError::BadPayload("expected frame"));
                };
                let base = ctx.frame_store().get(id)?.seq() * 100;
                for i in 0..6 {
                    let resp = ctx.call_service(
                        "doubler",
                        ServiceRequest::new("tag", Payload::Count(base + i)),
                    )?;
                    // The executor must answer *this* request, not a
                    // neighbour's.
                    assert!(matches!(resp.payload, Payload::Count(n) if n == base + i));
                }
                ctx.frame_store().release(id);
                ctx.call_module("sink", Payload::Count(1))?;
            }
            Ok(())
        }
    }

    /// Echo service that records every tag it executes.
    struct RecordingService {
        seen: Arc<Mutex<Vec<u64>>>,
    }
    impl Service for RecordingService {
        fn name(&self) -> &str {
            "doubler"
        }
        fn handle(
            &self,
            request: &ServiceRequest,
            _store: &FrameStore,
        ) -> Result<ServiceResponse, PipelineError> {
            match request.payload {
                Payload::Count(n) => {
                    self.seen.lock().push(n);
                    Ok(ServiceResponse::new(Payload::Count(n)))
                }
                ref other => Err(crate::service::wrong_payload("doubler", "count", other)),
            }
        }
        fn cost(&self, _request: &ServiceRequest) -> ServiceCost {
            ServiceCost::flat(Duration::from_millis(1))
        }
    }

    #[test]
    fn executor_pool_drains_bursts_exactly_once() {
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(4)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(BurstMid));
        modules.register("TestSink", || Box::new(TestSink));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(RecordingService {
            seen: Arc::clone(&seen),
        }));
        let config = RuntimeConfig {
            fps: 200.0,
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_until_deliveries(12, Duration::from_secs(10));
        assert!(
            report.metrics.frames_delivered >= 12,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let mut tags = seen.lock().clone();
        assert!(tags.len() >= 6 * 12, "only {} executions", tags.len());
        let executed = tags.len();
        tags.sort_unstable();
        tags.dedup();
        // No tag executed twice: four competing executors on one MPMC
        // queue must not double-deliver...
        assert_eq!(tags.len(), executed, "a request was executed twice");
        // ...and the load actually spread across more than one executor.
        let busy_hosts = report
            .metrics
            .dispatch
            .get("one/doubler")
            .expect("dispatch stats");
        assert!(busy_hosts.requests as usize >= executed);
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    #[test]
    fn executor_pool_survives_panicking_service() {
        // Every 5th request panics its executor's handler: supervision
        // converts the panic into a typed error, retries recover, and the
        // pool keeps draining — the chaos matrix extended to N competing
        // executors.
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(4)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(TestMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(crate::service::ChaosService::panicking(
            Arc::new(Doubler),
            5,
        )));
        let config = RuntimeConfig {
            fps: 200.0,
            resilience: ResilienceConfig {
                retry: crate::resilience::RetryPolicy::exponential(
                    4,
                    Duration::from_millis(1),
                    Duration::from_millis(5),
                ),
                ..ResilienceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_until_deliveries(10, Duration::from_secs(10));
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    #[test]
    fn breaker_opens_during_outage_and_recovers() {
        let (devices, placement) = one_device();
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(TestMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        // Healthy for 150ms, hard down for 200ms, healthy again.
        services.install(Arc::new(crate::service::ChaosService::outage(
            Arc::new(Doubler),
            Duration::from_millis(150),
            Duration::from_millis(200),
        )));
        let config = RuntimeConfig {
            fps: 200.0,
            resilience: ResilienceConfig {
                breaker_failure_threshold: 3,
                breaker_cooldown: Duration::from_millis(40),
                degradation: DegradationPolicy::LastKnownGood,
                ..ResilienceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_for(Duration::from_millis(700));
        let breaker = report
            .breakers
            .get("doubler")
            .expect("breaker snapshot for doubler");
        assert!(breaker.opened >= 1, "breaker never opened: {breaker:?}");
        assert!(
            breaker.reclosed >= 1,
            "breaker never recovered half-open -> closed: {breaker:?}"
        );
        assert!(report.metrics.frames_delivered > 0);
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    /// Middle module that sends a corrupt encoded frame to the service and
    /// expects a *fast typed* rejection, not a deadline timeout.
    struct CorruptFrameMid;
    impl Module for CorruptFrameMid {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(msg) = event {
                if let Payload::FrameRef(id) = msg.payload {
                    ctx.frame_store().release(id);
                }
                let result = ctx.call_service(
                    "doubler",
                    ServiceRequest::new(
                        "eat",
                        Payload::EncodedFrame(bytes::Bytes::from_static(b"not a frame")),
                    ),
                );
                match result {
                    Err(PipelineError::Service { reason, .. }) if reason.contains("decode") => {
                        ctx.log("corrupt frame rejected");
                    }
                    other => panic!("expected a typed decode error, got {other:?}"),
                }
                ctx.call_module("sink", Payload::Count(1))?;
            }
            Ok(())
        }
    }

    #[test]
    fn corrupt_encoded_frame_gets_a_typed_error_reply() {
        // Regression: the executor used to log the decode failure and
        // `continue`, leaving the caller to burn its full call deadline.
        // Now every undecodable slot answers with a typed error payload —
        // the pipeline below only makes progress if those replies arrive
        // promptly (the default call deadline is far beyond the test
        // budget).
        let (devices, placement) = one_device();
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(CorruptFrameMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(FrameEater));
        let config = RuntimeConfig {
            fps: 200.0,
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_until_deliveries(5, Duration::from_secs(10));
        assert!(
            report.metrics.frames_delivered >= 5,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(
            report
                .logs
                .iter()
                .any(|l| l.contains("corrupt frame rejected")),
            "{:?}",
            report.logs
        );
        // The executor still records the root cause for diagnostics.
        assert!(
            report
                .errors
                .iter()
                .any(|e| e.contains("frame decode failed")),
            "{:?}",
            report.errors
        );
    }

    #[test]
    fn heartbeat_loss_is_detected_and_fences_the_epoch() {
        let devices = vec![
            DeviceSpec::new("phone", 1.0)
                .with_containers(1)
                .with_service("doubler"),
            DeviceSpec::new("desktop", 2.0),
        ];
        // All modules and the service live on the phone: the desktop only
        // heartbeats, so losing it fences in-flight work without stalling
        // the new epoch's traffic.
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "phone")
            .assign("sink", "phone");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let (modules, services) = registries();
        let config = RuntimeConfig {
            fps: 200.0,
            heartbeats: Some(HealthConfig {
                heartbeat_interval: Duration::from_millis(20),
                lease: Duration::from_millis(60),
                suspicion_threshold: 1,
                confirmation_threshold: 2,
            }),
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while runtime.deliveries() < 5 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(runtime.device_status("desktop"), Some(DeviceStatus::Alive));
        assert_eq!(runtime.fence_epoch(), 0);
        assert!(runtime.inject_heartbeat_loss("desktop"));
        while runtime.fence_epoch() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(runtime.device_status("desktop"), Some(DeviceStatus::Dead));
        assert_eq!(runtime.device_status("phone"), Some(DeviceStatus::Alive));
        // New-epoch frames keep flowing after the fence.
        let before = runtime.deliveries();
        while runtime.deliveries() < before + 5 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let report = runtime.finish();
        assert_eq!(report.fence_epoch, 1);
        assert!(
            report
                .device_statuses
                .iter()
                .any(|(d, s)| d == "desktop" && *s == DeviceStatus::Dead),
            "{:?}",
            report.device_statuses
        );
        assert!(
            report.logs.iter().any(|l| l.contains("confirmed dead")),
            "{:?}",
            report.logs
        );
        assert!(
            report.metrics.frames_delivered >= before + 5,
            "post-fence deliveries stalled: {} vs {before}",
            report.metrics.frames_delivered
        );
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    /// Sink that tallies frames, checkpoints the tally, and panics once.
    struct CheckpointedTally {
        count: u64,
        resumed_from: Option<u64>,
        poisoned: Arc<AtomicBool>,
    }
    impl Module for CheckpointedTally {
        fn on_event(&mut self, event: Event, ctx: &mut dyn ModuleCtx) -> Result<(), PipelineError> {
            if let Event::Message(_) = event {
                if let Some(n) = self.resumed_from.take() {
                    ctx.log(&format!("resumed from {n}"));
                }
                self.count += 1;
                if self.count == 5 && !self.poisoned.swap(true, Ordering::SeqCst) {
                    panic!("tally poisoned at 5");
                }
                ctx.log(&format!("tally {}", self.count));
                ctx.signal_source()?;
            }
            Ok(())
        }
        fn snapshot(&self) -> Option<Vec<u8>> {
            Some(self.count.to_be_bytes().to_vec())
        }
        fn restore(&mut self, snapshot: &[u8]) {
            if let Ok(bytes) = <[u8; 8]>::try_from(snapshot) {
                self.count = u64::from_be_bytes(bytes);
                self.resumed_from = Some(self.count);
            }
        }
    }

    #[test]
    fn panicked_module_resumes_from_its_checkpoint() {
        let spec = PipelineSpec::new("ckpt")
            .with_module(ModuleSpec::new("src", "TestSource").with_next("mid"))
            .with_module(ModuleSpec::new("mid", "Tally"));
        let devices = vec![DeviceSpec::new("one", 1.0)];
        let placement = Placement::new().assign("src", "one").assign("mid", "one");
        let plan = plan(&spec, &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        let poisoned = Arc::new(AtomicBool::new(false));
        let poisoned2 = Arc::clone(&poisoned);
        modules.register("Tally", move || {
            Box::new(CheckpointedTally {
                count: 0,
                resumed_from: None,
                poisoned: Arc::clone(&poisoned2),
            })
        });
        let services = ServiceRegistry::new();
        let config = RuntimeConfig {
            fps: 100.0,
            checkpoint_period: Some(Duration::from_millis(20)),
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let report = runtime.run_until_deliveries(12, Duration::from_secs(10));
        assert_eq!(report.restarts, 1, "{:?}", report.errors);
        let resumed: u64 = report
            .logs
            .iter()
            .find_map(|l| {
                l.strip_prefix("mid: resumed from ")
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or_else(|| panic!("no resume log in {:?}", report.logs));
        assert!(
            resumed >= 1,
            "restored checkpoint should carry progress, got {resumed}"
        );
        let max_tally: u64 = report
            .logs
            .iter()
            .filter_map(|l| l.strip_prefix("mid: tally ").and_then(|n| n.parse().ok()))
            .max()
            .unwrap();
        assert!(
            max_tally > resumed,
            "tally did not advance past the restored value {resumed}"
        );
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    /// Drives `service_executor_loop` directly against a preloaded queue.
    fn bare_shared(config: RuntimeConfig) -> (Arc<Shared>, InprocHub) {
        let hub = InprocHub::new();
        let mut stores = HashMap::new();
        stores.insert("one".to_string(), Arc::new(FrameStore::new()));
        let shared = Arc::new(Shared {
            hub: hub.clone(),
            router: Router::inproc(hub.clone()),
            stores,
            metrics: Mutex::new(PipelineMetrics::new()),
            logs: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            epoch: Instant::now(),
            deliveries: AtomicU64::new(0),
            config,
            breakers: Mutex::new(HashMap::new()),
            restarts: AtomicU64::new(0),
            fence_epoch: AtomicU64::new(0),
            detector: Mutex::new(None),
            checkpoints: Mutex::new(HashMap::new()),
            muted_heartbeats: Mutex::new(HashSet::new()),
            knobs: KnobActuators::baseline(),
            gate: ShutdownGate::new(),
        });
        (shared, hub)
    }

    #[test]
    fn saturated_executor_batches_and_samples_depth_before_draining() {
        let config = RuntimeConfig {
            batch: BatchConfig::up_to(8),
            ..RuntimeConfig::default()
        };
        let (shared, hub) = bare_shared(config);
        let channel = svc_chan("one", "doubler");
        let inbox = hub.bind(&channel).unwrap();
        let reply_rx = hub.bind("rpl/test/driver").unwrap();
        // Preload a burst of six requests before the executor starts: the
        // whole burst must come back as one (or few) batches, and the
        // queue-depth gauge must see the backlog even though the drain
        // empties the queue immediately after.
        let tx = hub.connect(&channel).unwrap();
        for i in 0..6u64 {
            tx.send(WireMessage::request(
                channel.clone(),
                "rpl/test/driver".to_string(),
                i,
                ServiceRequest::new("double", Payload::Count(i)).encode(),
            ))
            .unwrap();
        }
        let loop_shared = Arc::clone(&shared);
        let executor = std::thread::spawn(move || {
            service_executor_loop(
                loop_shared,
                inbox,
                Arc::new(Doubler),
                "one".to_string(),
                1.0,
            )
        });
        let mut seen = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while seen.len() < 6 && Instant::now() < deadline {
            if let Ok(msg) = reply_rx.recv_timeout(POLL) {
                assert_eq!(msg.kind, MessageKind::Response);
                let resp = ServiceResponse::decode(&msg.payload).unwrap();
                assert_eq!(resp.payload, Payload::Count(msg.corr_id * 2));
                seen.push(msg.corr_id);
            }
        }
        shared.stop.store(true, Ordering::SeqCst);
        executor.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        let metrics = shared.metrics.lock();
        let dispatch = metrics.dispatch.get("one/doubler").expect("dispatch stats");
        assert_eq!(dispatch.requests, 6);
        assert!(
            dispatch.batches < dispatch.requests,
            "burst never batched: {dispatch:?}"
        );
        assert!(dispatch.max_batch >= 2, "{dispatch:?}");
        // Five requests were queued behind the leader when it was dequeued.
        assert!(
            dispatch.max_queue_depth >= 5,
            "depth sampled after the drain: {dispatch:?}"
        );
    }

    #[test]
    fn batching_keeps_the_remote_encode_cache_exact() {
        // Satellite of the batching PR: distinct frames fanned out to a
        // *remote* batched service must still hit the per-(frame, quality)
        // encode cache exactly once each — batching changes how requests
        // are drained, never how often the codec runs.
        let devices = vec![
            DeviceSpec::new("phone", 1.0),
            DeviceSpec::new("desktop", 1.0)
                .with_containers(2)
                .with_service("doubler"),
        ];
        let placement = Placement::new()
            .assign("src", "phone")
            .assign("mid", "phone")
            .assign("sink", "phone");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let mut modules = ModuleRegistry::new();
        modules.register("TestSource", || Box::new(TestSource));
        modules.register("TestMid", || Box::new(FanoutMid));
        modules.register("TestSink", || Box::new(TestSink));
        let mut services = ServiceRegistry::new();
        services.install(Arc::new(FrameEater));
        let config = RuntimeConfig {
            fps: 200.0,
            batch: BatchConfig::up_to(4),
            ..RuntimeConfig::default()
        }
        .with_service_batch("doubler", BatchConfig::up_to(4));
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while runtime.deliveries() < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = runtime
            .frame_store_stats("phone")
            .expect("phone frame store");
        let report = runtime.finish();
        assert!(
            report.metrics.frames_delivered >= 10,
            "delivered {} errors {:?}",
            report.metrics.frames_delivered,
            report.errors
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        // Two remote calls per frame, one codec run per frame.
        assert!(
            stats.encode_hits >= 10,
            "expected >=10 encode-cache hits, got {stats:?}"
        );
        assert!(
            stats.encode_misses <= stats.inserted,
            "at most one encode per frame: {stats:?}"
        );
        let dispatch = report
            .metrics
            .dispatch
            .get("desktop/doubler")
            .expect("dispatch stats");
        assert!(dispatch.batches >= 1 && dispatch.batches <= dispatch.requests);
        assert!(report.metrics.credits_balanced(), "{:?}", report.metrics);
    }

    #[test]
    fn teardown_wakes_interval_parked_watchers_promptly() {
        // Watchers park for their FULL interval on the shutdown gate. With
        // multi-second heartbeat/SLO/telemetry intervals, a teardown that
        // merely set the stop flag would block finish() for seconds; the
        // gate must wake them in milliseconds.
        let devices = vec![DeviceSpec::new("one", 1.0)
            .with_containers(2)
            .with_service("doubler")];
        let placement = Placement::new()
            .assign("src", "one")
            .assign("mid", "one")
            .assign("sink", "one");
        let plan = plan(&test_spec(), &devices, &placement).unwrap();
        let (modules, services) = registries();
        let long = Duration::from_secs(30);
        let config = RuntimeConfig {
            fps: 100.0,
            telemetry_interval: Some(long),
            heartbeats: Some(HealthConfig {
                heartbeat_interval: long,
                lease: long * 4,
                ..HealthConfig::default()
            }),
            slo: Some(crate::slo::SloConfig::p99(Duration::from_millis(100)).with_interval(long)),
            ..RuntimeConfig::default()
        };
        let runtime = LocalRuntime::deploy(&plan, &modules, &services, config).unwrap();
        // Let the pipeline actually move before tearing it down.
        let deadline = Instant::now() + Duration::from_secs(10);
        while runtime.deliveries() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let started = Instant::now();
        let report = runtime.finish();
        let teardown = started.elapsed();
        assert!(report.metrics.frames_delivered >= 3);
        assert!(
            teardown < Duration::from_secs(1),
            "teardown took {teardown:?} with 30 s watcher intervals"
        );
    }

    #[test]
    fn shutdown_gate_wakes_waiters_early() {
        let gate = Arc::new(ShutdownGate::new());
        let g = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            let started = Instant::now();
            assert!(g.wait_shutdown(Duration::from_secs(60)), "spurious expiry");
            started.elapsed()
        });
        std::thread::sleep(Duration::from_millis(30));
        gate.trigger();
        let waited = waiter.join().unwrap();
        assert!(waited < Duration::from_secs(1), "woke after {waited:?}");
        // Once triggered, later waits return immediately.
        let started = Instant::now();
        assert!(gate.wait_shutdown(Duration::from_secs(60)));
        assert!(started.elapsed() < Duration::from_millis(100));
    }
}
