//! Property tests for the ML substrate.

use proptest::prelude::*;
use videopipe_ml::kmeans::KMeans;
use videopipe_ml::knn::{KdTree, KnnClassifier};
use videopipe_ml::math::{
    axpy, axpy_scalar, distances_into, distances_into_scalar, dot, dot_scalar, iou, mean,
    mean_scalar, squared_distance, squared_distance_scalar,
};
use videopipe_ml::reps::{RepCounter, RepCounterModel};

fn arb_points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, dim), n)
}

/// NaN-free random vectors whose lengths straddle the 8-lane block size
/// (empty, single-element, and non-multiple-of-8 lengths all appear).
fn arb_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After training, every sample's predicted cluster is its nearest
    /// centroid (the defining k-means invariant).
    #[test]
    fn kmeans_assignment_is_nearest_centroid(samples in arb_points(3, 4..40), k in 1usize..4) {
        prop_assume!(samples.len() >= k);
        let model = KMeans::new(k).fit(&samples).unwrap();
        for s in &samples {
            let assigned = model.predict(s);
            let d_assigned = squared_distance(s, &model.centroids()[assigned]);
            for c in model.centroids() {
                prop_assert!(d_assigned <= squared_distance(s, c) + 1e-4);
            }
        }
    }

    /// k-means is deterministic for a fixed seed.
    #[test]
    fn kmeans_deterministic(samples in arb_points(2, 3..20), seed in any::<u64>()) {
        let a = KMeans::new(2).with_seed(seed).fit(&samples);
        let b = KMeans::new(2).with_seed(seed).fit(&samples);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert_eq!(a, b);
        }
    }

    /// The KD-tree returns neighbours at exactly the same distances as the
    /// brute-force scan.
    #[test]
    fn kdtree_matches_brute_force(samples in arb_points(3, 1..60), query in proptest::collection::vec(-100.0f32..100.0, 3), k in 1usize..6) {
        let tree = KdTree::build(&samples);
        let tree_hits = tree.nearest(&samples, &query, k);
        let labels = vec!["x".to_string(); samples.len()];
        let knn = KnnClassifier::fit(k, samples.clone(), labels).unwrap();
        let brute_hits = knn.brute_force(&query);
        let d = |idx: &usize| squared_distance(&query, &samples[*idx]);
        let mut td: Vec<f32> = tree_hits.iter().map(d).collect();
        let mut bd: Vec<f32> = brute_hits.iter().map(d).collect();
        td.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bd.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(td.len(), bd.len());
        for (a, b) in td.iter().zip(bd.iter()) {
            prop_assert!((a - b).abs() < 1e-3, "tree {a} vs brute {b}");
        }
    }

    /// IoU is symmetric, bounded in [0, 1], and 1 only for identical boxes.
    #[test]
    fn iou_properties(
        a in (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0),
        b in (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0),
    ) {
        let boxify = |(x0, y0, w, h): (f32, f32, f32, f32)| (x0, y0, x0 + w + 0.01, y0 + h + 0.01);
        let (ba, bb) = (boxify(a), boxify(b));
        let v = iou(ba, bb);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((v - iou(bb, ba)).abs() < 1e-6, "symmetry");
        prop_assert!((iou(ba, ba) - 1.0).abs() < 1e-5);
    }

    /// The rep counter can never count more reps than debounced transitions
    /// allow: with n observations, at most n / (2 * debounce) reps.
    #[test]
    fn rep_counter_bounded_by_observations(clusters in proptest::collection::vec(0usize..2, 0..200)) {
        let model = RepCounterModel::from_parts(vec![vec![0.0; 4], vec![1.0; 4]], 0);
        let mut counter = RepCounter::new(model);
        for &c in &clusters {
            counter.push_cluster(c);
        }
        let max_reps = clusters.len() as u32 / 8; // 2 transitions x 4-frame debounce
        prop_assert!(counter.reps() <= max_reps, "{} reps from {} observations", counter.reps(), clusters.len());
    }

    /// Pushing the initial cluster forever never counts a rep.
    #[test]
    fn rep_counter_idle_never_counts(n in 0usize..300) {
        let model = RepCounterModel::from_parts(vec![vec![0.0; 4], vec![1.0; 4]], 0);
        let mut counter = RepCounter::new(model);
        for _ in 0..n {
            prop_assert_eq!(counter.push_cluster(0), None);
        }
        prop_assert_eq!(counter.reps(), 0);
    }

    /// k-NN prediction always returns one of the training labels.
    #[test]
    fn knn_returns_known_label(samples in arb_points(2, 1..30), query in proptest::collection::vec(-100.0f32..100.0, 2), k in 1usize..5) {
        let labels: Vec<String> = (0..samples.len()).map(|i| format!("c{}", i % 3)).collect();
        let knn = KnnClassifier::fit(k, samples, labels.clone()).unwrap();
        let prediction = knn.predict(&query).unwrap();
        prop_assert!(labels.iter().any(|l| l == prediction));
    }

    /// Blocked squared-distance and dot kernels stay ε-close to their
    /// scalar oracles for any NaN-free vectors (only the reduction order
    /// differs, so the error is bounded by a few ULPs of the magnitudes).
    #[test]
    fn blocked_reductions_match_scalar_oracles(pair in arb_vec(40).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), proptest::collection::vec(-100.0f32..100.0, n))
    })) {
        let (a, b) = pair;
        let eps = 1e-3 * (1.0 + a.len() as f32 * 1e4);
        prop_assert!((squared_distance(&a, &b) - squared_distance_scalar(&a, &b)).abs() <= eps);
        prop_assert!((dot(&a, &b) - dot_scalar(&a, &b)).abs() <= eps);
    }

    /// Blocked axpy is bit-identical to its scalar oracle: the per-element
    /// operation is unchanged, only the loop is unrolled.
    #[test]
    fn blocked_axpy_is_bit_identical(pair in arb_vec(40).prop_flat_map(|x| {
        let n = x.len();
        (Just(x), proptest::collection::vec(-100.0f32..100.0, n))
    }), alpha in -10.0f32..10.0) {
        let (x, y0) = pair;
        let mut fast = y0.clone();
        let mut oracle = y0;
        axpy(alpha, &x, &mut fast);
        axpy_scalar(alpha, &x, &mut oracle);
        prop_assert_eq!(fast, oracle);
    }

    /// Blocked mean is bit-identical to its scalar oracle: each column is
    /// an independent f64 sum accumulated in the same vector order.
    #[test]
    fn blocked_mean_is_bit_identical(vectors in (0usize..30).prop_flat_map(|dim| {
        proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, dim), 0..10)
    })) {
        prop_assert_eq!(mean(&vectors), mean_scalar(&vectors));
    }

    /// The fused distance-matrix kernel obeys its documented ε policy
    /// against the direct per-pair scalar oracle:
    /// |d − d_scalar| ≤ 1e-3 · (1 + ‖a‖² + ‖b‖²), and never negative.
    #[test]
    fn distance_matrix_matches_scalar_within_policy(matrices in (1usize..20).prop_flat_map(|dim| {
        (
            proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, dim), 0..8),
            proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, dim), 1..8),
        )
    })) {
        let (queries, points) = matrices;
        let mut fast = Vec::new();
        let mut oracle = Vec::new();
        distances_into(&queries, &points, &mut fast);
        distances_into_scalar(&queries, &points, &mut oracle);
        prop_assert_eq!(fast.len(), oracle.len());
        for (qi, q) in queries.iter().enumerate() {
            for (pi, p) in points.iter().enumerate() {
                let i = qi * points.len() + pi;
                prop_assert!(fast[i] >= 0.0);
                let eps = 1e-3 * (1.0 + dot(q, q) + dot(p, p));
                prop_assert!((fast[i] - oracle[i]).abs() <= eps,
                    "pair ({}, {}): {} vs {}", qi, pi, fast[i], oracle[i]);
            }
        }
    }

    /// The leaf-bucketed KD-tree finds neighbours at the same distances as
    /// the scalar brute-force oracle, across datasets large enough to force
    /// several leaf splits (the leaf scan runs the blocked kernel, so this
    /// pins tree pruning AND the new distance kernel at once).
    #[test]
    fn kdtree_leaf_scan_matches_scalar_brute_force(samples in arb_points(4, 1..120), query in proptest::collection::vec(-100.0f32..100.0, 4), k in 1usize..6) {
        let labels = vec!["x".to_string(); samples.len()];
        let knn = KnnClassifier::fit(k, samples.clone(), labels).unwrap();
        prop_assert!(knn.uses_kdtree());
        let tree_hits = knn.neighbours(&query).unwrap();
        let brute_hits = knn.brute_force_scalar(&query);
        let d = |idx: &usize| squared_distance_scalar(&query, &samples[*idx]);
        let mut td: Vec<f32> = tree_hits.iter().map(d).collect();
        let mut bd: Vec<f32> = brute_hits.iter().map(d).collect();
        td.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bd.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(td.len(), bd.len());
        for (a, b) in td.iter().zip(bd.iter()) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + a.abs()), "tree {} vs brute {}", a, b);
        }
    }
}
