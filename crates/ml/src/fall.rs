//! Fall detection over pose streams (paper §4.3: "we also implement a fall
//! detection application pipeline with VideoPipe").
//!
//! The detector combines two signals over a short pose history:
//!
//! 1. **Aspect ratio** — a fallen body's bounding box is wide, a standing
//!    one is tall.
//! 2. **Descent velocity** — the hip centre must have dropped quickly in the
//!    recent past (distinguishes falling from lying down deliberately or
//!    from a pushup posture held from the start).

use videopipe_media::Pose;

/// Outcome of feeding one pose to the [`FallDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FallState {
    /// Person upright (or undetermined).
    Upright,
    /// Body horizontal but no rapid descent observed (e.g. exercising).
    Lying,
    /// A fall was detected: rapid descent ending horizontal.
    Fallen {
        /// Hip descent speed (scene units per second) that triggered it.
        descent_speed: f32,
    },
}

/// Sliding-window fall detector. Module-side state; the pure per-pose
/// geometry (`aspect`, hip height) is trivially recomputable by a stateless
/// service.
#[derive(Debug, Clone)]
pub struct FallDetector {
    /// `(timestamp_ns, hip_y)` history.
    history: Vec<(u64, f32)>,
    window_ns: u64,
    min_aspect: f32,
    min_descent_speed: f32,
    latched: bool,
}

impl FallDetector {
    /// Creates a detector with a 1.5 s descent window, aspect gate 1.2 and
    /// descent threshold 0.25 scene-units/second.
    pub fn new() -> Self {
        FallDetector {
            history: Vec::new(),
            window_ns: 1_500_000_000,
            min_aspect: 1.2,
            min_descent_speed: 0.25,
            latched: false,
        }
    }

    /// Sets the descent observation window (nanoseconds).
    pub fn with_window_ns(mut self, ns: u64) -> Self {
        self.window_ns = ns.max(1);
        self
    }

    /// Sets the minimum width/height ratio to call a body horizontal.
    pub fn with_min_aspect(mut self, aspect: f32) -> Self {
        self.min_aspect = aspect;
        self
    }

    /// Sets the minimum hip descent speed (scene units/second).
    pub fn with_min_descent_speed(mut self, speed: f32) -> Self {
        self.min_descent_speed = speed;
        self
    }

    /// Whether a fall has been detected and not yet cleared.
    pub fn is_latched(&self) -> bool {
        self.latched
    }

    /// Clears a latched fall (e.g. after the person stood back up and an
    /// operator acknowledged the alert).
    pub fn clear(&mut self) {
        self.latched = false;
        self.history.clear();
    }

    /// Feeds one timestamped pose.
    pub fn push(&mut self, pose: &Pose, timestamp_ns: u64) -> FallState {
        let hip_y = pose.hip_center().y;
        self.history.push((timestamp_ns, hip_y));
        let cutoff = timestamp_ns.saturating_sub(self.window_ns);
        self.history.retain(|&(t, _)| t >= cutoff);

        let (x0, y0, x1, y1) = pose.bbox();
        let w = x1 - x0;
        let h = y1 - y0;
        let horizontal = h > 1e-6 && w / h >= self.min_aspect;
        if !horizontal {
            if self.latched {
                // Person back upright: clear the latch automatically.
                self.latched = false;
            }
            return FallState::Upright;
        }

        // Max descent speed across the window.
        let mut max_speed = 0.0f32;
        if let Some(&(t_now, y_now)) = self.history.last() {
            for &(t, y) in &self.history {
                if t_now > t {
                    let dt_s = (t_now - t) as f32 / 1e9;
                    if dt_s > 0.05 {
                        let speed = (y_now - y) / dt_s;
                        max_speed = max_speed.max(speed);
                    }
                }
            }
        }

        if self.latched || max_speed >= self.min_descent_speed {
            self.latched = true;
            FallState::Fallen {
                descent_speed: max_speed,
            }
        } else {
            FallState::Lying
        }
    }
}

impl Default for FallDetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videopipe_media::motion::{ExerciseKind, MotionClip};

    fn feed_clip(
        detector: &mut FallDetector,
        kind: ExerciseKind,
        period_s: f64,
        duration_s: f64,
        fps: f64,
    ) -> Vec<FallState> {
        let clip = MotionClip::new(kind, period_s);
        let dt = (1e9 / fps) as u64;
        let n = (duration_s * fps) as u64;
        (0..n)
            .map(|i| {
                let t = i * dt;
                detector.push(&clip.pose_at(t), t)
            })
            .collect()
    }

    #[test]
    fn detects_a_fall() {
        let mut detector = FallDetector::new();
        let states = feed_clip(&mut detector, ExerciseKind::Fall, 1.0, 2.0, 15.0);
        assert!(
            states.iter().any(|s| matches!(s, FallState::Fallen { .. })),
            "fall not detected: {states:?}"
        );
        assert!(detector.is_latched());
    }

    #[test]
    fn squats_do_not_trigger() {
        let mut detector = FallDetector::new();
        let states = feed_clip(&mut detector, ExerciseKind::Squat, 2.0, 6.0, 15.0);
        assert!(
            states.iter().all(|s| *s == FallState::Upright),
            "false positive: {states:?}"
        );
    }

    #[test]
    fn pushups_read_lying_not_fallen() {
        let mut detector = FallDetector::new();
        let states = feed_clip(&mut detector, ExerciseKind::Pushup, 2.0, 4.0, 15.0);
        assert!(
            !states.iter().any(|s| matches!(s, FallState::Fallen { .. })),
            "pushup misread as fall"
        );
        assert!(states.contains(&FallState::Lying));
    }

    #[test]
    fn latch_clears_when_person_stands_up() {
        let mut detector = FallDetector::new();
        feed_clip(&mut detector, ExerciseKind::Fall, 1.0, 2.0, 15.0);
        assert!(detector.is_latched());
        // Standing poses afterwards clear the latch.
        let state = detector.push(&Pose::default(), 10_000_000_000);
        assert_eq!(state, FallState::Upright);
        assert!(!detector.is_latched());
    }

    #[test]
    fn manual_clear() {
        let mut detector = FallDetector::new();
        feed_clip(&mut detector, ExerciseKind::Fall, 1.0, 2.0, 15.0);
        detector.clear();
        assert!(!detector.is_latched());
    }

    #[test]
    fn slow_descent_reads_lying() {
        // A fall spread over 20 s is "lying down", not a fall.
        let mut detector = FallDetector::new();
        let states = feed_clip(&mut detector, ExerciseKind::Fall, 20.0, 22.0, 15.0);
        assert!(
            !states.iter().any(|s| matches!(s, FallState::Fallen { .. })),
            "slow descent misread as fall"
        );
        assert!(states.contains(&FallState::Lying));
    }
}
