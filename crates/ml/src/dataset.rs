//! Synthetic labelled datasets for training and evaluating the classifiers.
//!
//! Paper §4.1.2: "The algorithm is trained on all available labelled data
//! except for a withheld test set." This module generates that labelled
//! data: pose windows sampled from the motion generators with per-sample
//! random phase offsets, periods and jitter, then split train/test.

use crate::features::{window_features, WINDOW_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use videopipe_media::motion::{ExerciseKind, MotionClip};
use videopipe_media::Pose;

/// A labelled pose-window dataset.
#[derive(Debug, Clone, Default)]
pub struct WindowDataset {
    /// Feature vectors (`WINDOW_DIM` long).
    pub features: Vec<Vec<f32>>,
    /// Class label per feature vector.
    pub labels: Vec<String>,
}

impl WindowDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Splits into `(train, test)` with the given test fraction, shuffled
    /// deterministically by `seed`.
    pub fn split(mut self, test_fraction: f64, seed: u64) -> (WindowDataset, WindowDataset) {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "test fraction must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher-Yates shuffle of index order.
        let n = self.features.len();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            self.features.swap(i, j);
            self.labels.swap(i, j);
        }
        let test_n = (n as f64 * test_fraction).round() as usize;
        let test = WindowDataset {
            features: self.features.split_off(n - test_n),
            labels: self.labels.split_off(n - test_n),
        };
        (self, test)
    }
}

/// Configuration of the dataset generator.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Windows generated per class.
    pub windows_per_class: usize,
    /// Sampling rate of the virtual camera (frames per second).
    pub fps: f64,
    /// Range of repetition periods, seconds (uniformly sampled per window).
    pub period_range: (f64, f64),
    /// Per-joint Gaussian jitter (scene units).
    pub jitter: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            windows_per_class: 120,
            fps: 15.0,
            period_range: (1.6, 2.8),
            jitter: 0.006,
            seed: 0xDA7A,
        }
    }
}

/// Generates a labelled window dataset over `classes`.
pub fn generate_windows(classes: &[ExerciseKind], config: &DatasetConfig) -> WindowDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dt_ns = (1e9 / config.fps).round() as u64;
    let mut dataset = WindowDataset::default();
    for &class in classes {
        for _ in 0..config.windows_per_class {
            let period = rng.gen_range(config.period_range.0..config.period_range.1);
            let clip = MotionClip::new(class, period).with_jitter(config.jitter);
            // Random phase offset so windows cover the whole cycle.
            let start_ns = rng.gen_range(0..(period * 1e9) as u64);
            let poses = clip.sample_sequence(start_ns, dt_ns, WINDOW_LEN, &mut rng);
            let features = window_features(&poses).expect("window has WINDOW_LEN poses");
            dataset.features.push(features);
            dataset.labels.push(class.label().to_string());
        }
    }
    dataset
}

/// A labelled sequence of poses for rep-counting evaluation: the ground
/// truth is the number of completed repetitions.
#[derive(Debug, Clone)]
pub struct RepSequence {
    /// Poses sampled at the camera rate.
    pub poses: Vec<Pose>,
    /// Ground-truth completed repetitions.
    pub true_reps: u32,
    /// The exercise performed.
    pub kind: ExerciseKind,
}

/// Generates rep sequences: `reps` full cycles of `kind` sampled at `fps`,
/// with jitter.
pub fn generate_rep_sequence(
    kind: ExerciseKind,
    reps: u32,
    fps: f64,
    jitter: f32,
    seed: u64,
) -> RepSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let period = 2.0;
    let clip = MotionClip::new(kind, period).with_jitter(jitter);
    let dt_ns = (1e9 / fps).round() as u64;
    let total_ns = (f64::from(reps) * period * 1e9) as u64;
    let n = (total_ns / dt_ns) as usize + 1;
    let poses = clip.sample_sequence(0, dt_ns, n, &mut rng);
    RepSequence {
        poses,
        true_reps: reps,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::WINDOW_DIM;

    #[test]
    fn generates_requested_counts() {
        let config = DatasetConfig {
            windows_per_class: 10,
            ..DatasetConfig::default()
        };
        let ds = generate_windows(&ExerciseKind::FITNESS, &config);
        assert_eq!(ds.len(), 50);
        assert!(ds.features.iter().all(|f| f.len() == WINDOW_DIM));
        // Every class present.
        for kind in ExerciseKind::FITNESS {
            assert!(ds.labels.iter().any(|l| l == kind.label()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let config = DatasetConfig {
            windows_per_class: 5,
            ..DatasetConfig::default()
        };
        let a = generate_windows(&[ExerciseKind::Squat], &config);
        let b = generate_windows(&[ExerciseKind::Squat], &config);
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn split_preserves_totals_and_is_disjoint() {
        let config = DatasetConfig {
            windows_per_class: 20,
            ..DatasetConfig::default()
        };
        let ds = generate_windows(&[ExerciseKind::Squat, ExerciseKind::Wave], &config);
        let total = ds.len();
        let (train, test) = ds.split(0.25, 1);
        assert_eq!(train.len() + test.len(), total);
        assert_eq!(test.len(), 10);
        assert_eq!(train.features.len(), train.labels.len());
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn split_rejects_bad_fraction() {
        let ds = WindowDataset::default();
        let _ = ds.split(1.0, 0);
    }

    #[test]
    fn rep_sequence_covers_requested_reps() {
        let seq = generate_rep_sequence(ExerciseKind::Squat, 5, 15.0, 0.004, 3);
        assert_eq!(seq.true_reps, 5);
        // 5 reps at 2 s each, 15 fps → ~150 poses.
        assert!(seq.poses.len() >= 145 && seq.poses.len() <= 155);
        assert_eq!(seq.kind, ExerciseKind::Squat);
    }
}
