//! Face detection on the synthetic scenes.
//!
//! A face in the synthetic world is the head cluster: the nose/eyes/ears
//! joint blobs in close proximity. The detector finds nose-band pixels,
//! verifies that at least one eye-band blob lies within a head-sized
//! neighbourhood, and reports a square face box. This mirrors the structure
//! of cascade detectors (cheap candidate test + verification) at a scale the
//! synthetic scenes support.

use videopipe_media::scene::joint_for_intensity;
use videopipe_media::{Frame, Joint};

/// A detected face.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedFace {
    /// Face box `(min_x, min_y, max_x, max_y)` in scene coordinates.
    pub bbox: (f32, f32, f32, f32),
    /// Centre of the face (nose centroid).
    pub center: (f32, f32),
    /// Confidence: fraction of head landmarks (nose, eyes, ears) found.
    pub confidence: f32,
}

/// The face detector.
#[derive(Debug, Clone)]
pub struct FaceDetector {
    min_landmarks: usize,
}

impl FaceDetector {
    /// Default detector: requires at least 3 of the 5 head landmarks.
    pub fn new() -> Self {
        FaceDetector { min_landmarks: 3 }
    }

    /// Sets the minimum number of head landmarks (1–5).
    pub fn with_min_landmarks(mut self, n: usize) -> Self {
        self.min_landmarks = n.clamp(1, 5);
        self
    }

    /// Detects the (single) face in the frame, if present.
    pub fn detect(&self, frame: &Frame) -> Option<DetectedFace> {
        let width = frame.width() as usize;
        let height = frame.height() as usize;
        let pixels = frame.pixels();

        const HEAD_JOINTS: [Joint; 5] = [
            Joint::Nose,
            Joint::LeftEye,
            Joint::RightEye,
            Joint::LeftEar,
            Joint::RightEar,
        ];

        let mut sum = [(0f64, 0f64); 5];
        let mut count = [0usize; 5];
        for y in 0..height {
            let row = &pixels[y * width..(y + 1) * width];
            for (x, &p) in row.iter().enumerate() {
                if let Some(joint) = joint_for_intensity(p) {
                    if let Some(slot) = HEAD_JOINTS.iter().position(|&h| h == joint) {
                        sum[slot].0 += x as f64;
                        sum[slot].1 += y as f64;
                        count[slot] += 1;
                    }
                }
            }
        }

        let found = count.iter().filter(|&&c| c >= 2).count();
        if found < self.min_landmarks || count[0] < 2 {
            return None;
        }

        let centroid = |i: usize| {
            (
                (sum[i].0 / count[i] as f64) as f32 / width as f32,
                (sum[i].1 / count[i] as f64) as f32 / height as f32,
            )
        };
        let nose = centroid(0);

        // Face box spans the found landmarks, padded by the max landmark
        // spread (a head-sized margin).
        let mut min_x = f32::INFINITY;
        let mut min_y = f32::INFINITY;
        let mut max_x = f32::NEG_INFINITY;
        let mut max_y = f32::NEG_INFINITY;
        for (i, &n) in count.iter().enumerate() {
            if n >= 2 {
                let (x, y) = centroid(i);
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
            }
        }
        let pad = ((max_x - min_x).max(max_y - min_y)).max(0.02);
        Some(DetectedFace {
            bbox: (
                (min_x - pad).max(0.0),
                (min_y - pad).max(0.0),
                (max_x + pad).min(1.0),
                (max_y + pad).min(1.0),
            ),
            center: nose,
            confidence: found as f32 / 5.0,
        })
    }
}

impl Default for FaceDetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videopipe_media::motion::ExerciseKind;
    use videopipe_media::scene::SceneRenderer;
    use videopipe_media::{FrameBuf, Pose};

    #[test]
    fn detects_face_on_standing_pose() {
        let pose = Pose::default();
        let frame = SceneRenderer::new(320, 240).render(&pose, 0, 0);
        let face = FaceDetector::new().detect(&frame).expect("face present");
        let nose = pose.joint(Joint::Nose);
        assert!((face.center.0 - nose.x).abs() < 0.02);
        assert!((face.center.1 - nose.y).abs() < 0.02);
        assert!(face.confidence >= 0.6);
        // Box contains the nose.
        let (x0, y0, x1, y1) = face.bbox;
        assert!(nose.x > x0 && nose.x < x1 && nose.y > y0 && nose.y < y1);
    }

    #[test]
    fn no_face_in_empty_frame() {
        let frame = FrameBuf::new(320, 240).freeze(0, 0);
        assert!(FaceDetector::new().detect(&frame).is_none());
    }

    #[test]
    fn face_follows_fallen_pose() {
        let pose = ExerciseKind::Fall.pose_at_phase(1.0);
        let frame = SceneRenderer::new(320, 240).render(&pose, 0, 0);
        if let Some(face) = FaceDetector::new().detect(&frame) {
            let nose = pose.joint(Joint::Nose);
            assert!((face.center.0 - nose.x).abs() < 0.05);
            assert!((face.center.1 - nose.y).abs() < 0.05);
        }
        // (Off-frame heads may legitimately be undetected.)
    }

    #[test]
    fn strict_landmark_requirement() {
        let pose = Pose::default();
        let frame = SceneRenderer::new(320, 240).render(&pose, 0, 0);
        // All five landmarks render on a full standing figure.
        assert!(FaceDetector::new()
            .with_min_landmarks(5)
            .detect(&frame)
            .is_some());
    }
}
