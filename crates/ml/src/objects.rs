//! Object detection by connected-component analysis.
//!
//! The paper lists object detection among its container services. On the
//! synthetic scenes, objects are bright regions well above the skeleton
//! intensities; this detector thresholds, labels connected components
//! (4-connectivity, union-find), and reports bounding boxes with simple
//! shape classification (box vs disc by fill ratio).
//!
//! The production path ([`ObjectDetector::detect`]) thresholds with the
//! word-wide scan from [`videopipe_media::scan`] (8 pixels per load,
//! background words skipped with one compare) and remembers the foreground
//! indices it finds, so the statistics pass walks only foreground pixels
//! instead of re-scanning the whole grid. The pre-kernel per-pixel
//! implementation stays available as the [`ObjectDetector::detect_scalar`]
//! oracle; both produce the same set of objects (the unit tests pin it).

use crate::math::FORCE_SCALAR;
use videopipe_media::scan::scan_at_least;
use videopipe_media::Frame;

/// Default intensity threshold separating objects from the skeleton
/// (joint bands end at 80 + 16·9 + 3 = 227).
pub const DEFAULT_THRESHOLD: u8 = 235;

/// A detected object.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedObject {
    /// Bounding box `(min_x, min_y, max_x, max_y)` in scene coordinates.
    pub bbox: (f32, f32, f32, f32),
    /// Blob area in pixels.
    pub area: usize,
    /// Mean intensity of the blob.
    pub mean_intensity: f32,
    /// Shape guess from the fill ratio.
    pub shape: ObjectShape,
}

/// Shape classification of a blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectShape {
    /// Fill ratio ≥ 0.9 of the bounding box: rectangle.
    Rectangle,
    /// Fill ratio in `[0.6, 0.9)`: disc.
    Disc,
    /// Anything sparser.
    Irregular,
}

/// Connected-component object detector.
#[derive(Debug, Clone)]
pub struct ObjectDetector {
    threshold: u8,
    min_area: usize,
}

impl ObjectDetector {
    /// Detector with [`DEFAULT_THRESHOLD`] and a 12-pixel minimum area.
    pub fn new() -> Self {
        ObjectDetector {
            threshold: DEFAULT_THRESHOLD,
            min_area: 12,
        }
    }

    /// Sets the intensity threshold.
    pub fn with_threshold(mut self, threshold: u8) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the minimum blob area in pixels.
    pub fn with_min_area(mut self, min_area: usize) -> Self {
        self.min_area = min_area.max(1);
        self
    }

    /// Detects all objects in the frame, largest first.
    ///
    /// Word-wide path: the thresholding pass runs 8 pixels per `u64` load
    /// and records the foreground indices, so the statistics pass walks the
    /// (sparse) foreground list instead of re-scanning the whole grid.
    pub fn detect(&self, frame: &Frame) -> Vec<DetectedObject> {
        if FORCE_SCALAR {
            return self.detect_scalar(frame);
        }
        let width = frame.width() as usize;
        let height = frame.height() as usize;
        let pixels = frame.pixels();

        // Union-find over foreground pixels, remembering which pixels were
        // foreground (row-major, same order the scalar oracle unions in).
        let mut parent: Vec<u32> = vec![u32::MAX; width * height];
        let mut foreground: Vec<u32> = Vec::new();
        for y in 0..height {
            let row = &pixels[y * width..(y + 1) * width];
            scan_at_least(row, self.threshold, |x, _| {
                let idx = y * width + x;
                parent[idx] = idx as u32;
                foreground.push(idx as u32);
                // Union with left and top foreground neighbours.
                if x > 0 && parent[idx - 1] != u32::MAX {
                    let a = find(&mut parent, idx as u32);
                    let b = find(&mut parent, (idx - 1) as u32);
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
                if y > 0 && parent[idx - width] != u32::MAX {
                    let a = find(&mut parent, idx as u32);
                    let b = find(&mut parent, (idx - width) as u32);
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
            });
        }

        // Accumulate per-root statistics over foreground pixels only.
        let mut blobs: HashMap<u32, Acc> = HashMap::new();
        for &fg in &foreground {
            let idx = fg as usize;
            let (x, y) = (idx % width, idx / width);
            let root = find(&mut parent, fg);
            accumulate(&mut blobs, root, x, y, pixels[idx]);
        }

        self.summarise(blobs, width, height)
    }

    /// Scalar reference oracle for [`detect`](Self::detect): per-pixel
    /// threshold branch and a second full-grid statistics pass, exactly the
    /// pre-kernel implementation.
    pub fn detect_scalar(&self, frame: &Frame) -> Vec<DetectedObject> {
        let width = frame.width() as usize;
        let height = frame.height() as usize;
        let pixels = frame.pixels();

        // Union-find over foreground pixels.
        let mut parent: Vec<u32> = vec![u32::MAX; width * height];
        for y in 0..height {
            for x in 0..width {
                let idx = y * width + x;
                if pixels[idx] < self.threshold {
                    continue;
                }
                parent[idx] = idx as u32;
                // Union with left and top foreground neighbours.
                if x > 0 && parent[idx - 1] != u32::MAX {
                    let a = find(&mut parent, idx as u32);
                    let b = find(&mut parent, (idx - 1) as u32);
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
                if y > 0 && parent[idx - width] != u32::MAX {
                    let a = find(&mut parent, idx as u32);
                    let b = find(&mut parent, (idx - width) as u32);
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
            }
        }

        // Accumulate per-root statistics.
        let mut blobs: HashMap<u32, Acc> = HashMap::new();
        for y in 0..height {
            for x in 0..width {
                let idx = y * width + x;
                if parent[idx] == u32::MAX {
                    continue;
                }
                let root = find(&mut parent, idx as u32);
                accumulate(&mut blobs, root, x, y, pixels[idx]);
            }
        }

        self.summarise(blobs, width, height)
    }

    /// Blob statistics → reported objects (shared by both detect paths so
    /// filtering, shape classification, and ordering stay identical).
    fn summarise(
        &self,
        blobs: HashMap<u32, Acc>,
        width: usize,
        height: usize,
    ) -> Vec<DetectedObject> {
        let mut out: Vec<DetectedObject> = blobs
            .into_values()
            .filter(|acc| acc.area >= self.min_area)
            .map(|acc| {
                let bbox_w = acc.max_x - acc.min_x + 1;
                let bbox_h = acc.max_y - acc.min_y + 1;
                let fill = acc.area as f32 / (bbox_w * bbox_h) as f32;
                let shape = if fill >= 0.9 {
                    ObjectShape::Rectangle
                } else if fill >= 0.6 {
                    ObjectShape::Disc
                } else {
                    ObjectShape::Irregular
                };
                DetectedObject {
                    bbox: (
                        acc.min_x as f32 / width as f32,
                        acc.min_y as f32 / height as f32,
                        (acc.max_x + 1) as f32 / width as f32,
                        (acc.max_y + 1) as f32 / height as f32,
                    ),
                    area: acc.area,
                    mean_intensity: acc.intensity as f32 / acc.area as f32,
                    shape,
                }
            })
            .collect();
        // Sort by area, then bbox, so the output order is deterministic
        // regardless of hash-map iteration order.
        out.sort_by(|a, b| {
            b.area.cmp(&a.area).then_with(|| {
                a.bbox
                    .partial_cmp(&b.bbox)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        });
        out
    }
}

use std::collections::HashMap;

/// Per-blob accumulator for the statistics pass.
struct Acc {
    min_x: usize,
    min_y: usize,
    max_x: usize,
    max_y: usize,
    area: usize,
    intensity: u64,
}

fn accumulate(blobs: &mut HashMap<u32, Acc>, root: u32, x: usize, y: usize, pixel: u8) {
    let acc = blobs.entry(root).or_insert(Acc {
        min_x: x,
        min_y: y,
        max_x: x,
        max_y: y,
        area: 0,
        intensity: 0,
    });
    acc.min_x = acc.min_x.min(x);
    acc.min_y = acc.min_y.min(y);
    acc.max_x = acc.max_x.max(x);
    acc.max_y = acc.max_y.max(y);
    acc.area += 1;
    acc.intensity += u64::from(pixel);
}

/// Union-find root lookup with path halving.
fn find(parent: &mut [u32], mut i: u32) -> u32 {
    while parent[i as usize] != i {
        let p = parent[i as usize];
        parent[i as usize] = parent[p as usize];
        i = parent[i as usize];
    }
    i
}

impl Default for ObjectDetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videopipe_media::scene::{SceneObject, SceneRenderer};
    use videopipe_media::{FrameBuf, Pose};

    fn render_objects(objects: &[SceneObject]) -> Frame {
        SceneRenderer::new(160, 120).render_scene(&Pose::default(), objects, 0, 0)
    }

    #[test]
    fn detects_rectangle_with_shape() {
        let frame = render_objects(&[SceneObject::Rect {
            x: 0.1,
            y: 0.1,
            w: 0.2,
            h: 0.15,
            intensity: 250,
        }]);
        let objs = ObjectDetector::new().detect(&frame);
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].shape, ObjectShape::Rectangle);
        let (x0, y0, x1, y1) = objs[0].bbox;
        assert!((x0 - 0.1).abs() < 0.02 && (y0 - 0.1).abs() < 0.02);
        assert!((x1 - 0.3).abs() < 0.02 && (y1 - 0.25).abs() < 0.02);
        assert!((objs[0].mean_intensity - 250.0).abs() < 1.0);
    }

    #[test]
    fn detects_disc_shape() {
        let frame = render_objects(&[SceneObject::Disc {
            cx: 0.7,
            cy: 0.3,
            r: 0.08,
            intensity: 240,
        }]);
        let objs = ObjectDetector::new().detect(&frame);
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].shape, ObjectShape::Disc);
    }

    #[test]
    fn separates_multiple_objects_sorted_by_area() {
        let frame = render_objects(&[
            SceneObject::Rect {
                x: 0.05,
                y: 0.05,
                w: 0.25,
                h: 0.2,
                intensity: 250,
            },
            SceneObject::Rect {
                x: 0.7,
                y: 0.7,
                w: 0.1,
                h: 0.1,
                intensity: 245,
            },
        ]);
        let objs = ObjectDetector::new().detect(&frame);
        assert_eq!(objs.len(), 2);
        assert!(objs[0].area > objs[1].area);
    }

    #[test]
    fn skeleton_is_not_detected_as_object() {
        let frame = SceneRenderer::new(160, 120).render(&Pose::default(), 0, 0);
        assert!(ObjectDetector::new().detect(&frame).is_empty());
    }

    #[test]
    fn min_area_filters_specks() {
        let mut buf = FrameBuf::new(64, 64);
        buf.put(5, 5, 255);
        buf.put(6, 5, 255);
        let frame = buf.freeze(0, 0);
        assert!(ObjectDetector::new().detect(&frame).is_empty());
        let lenient = ObjectDetector::new().with_min_area(1);
        assert_eq!(lenient.detect(&frame).len(), 1);
    }

    #[test]
    fn touching_objects_merge_into_one_component() {
        let frame = render_objects(&[
            SceneObject::Rect {
                x: 0.1,
                y: 0.1,
                w: 0.1,
                h: 0.1,
                intensity: 250,
            },
            SceneObject::Rect {
                x: 0.2,
                y: 0.1,
                w: 0.1,
                h: 0.1,
                intensity: 250,
            },
        ]);
        let objs = ObjectDetector::new().detect(&frame);
        assert_eq!(objs.len(), 1, "adjacent rects should merge");
        assert_eq!(objs[0].shape, ObjectShape::Rectangle);
    }

    #[test]
    fn empty_frame_detects_nothing() {
        let frame = FrameBuf::new(32, 32).freeze(0, 0);
        assert!(ObjectDetector::new().detect(&frame).is_empty());
    }

    #[test]
    fn word_detect_matches_scalar_oracle() {
        // Scenes covering shapes, touching blobs, specks below min_area,
        // a skeleton-only frame, and a non-multiple-of-8 width so the word
        // scan's remainder path runs.
        let scenes: Vec<Frame> = vec![
            render_objects(&[
                SceneObject::Rect {
                    x: 0.05,
                    y: 0.05,
                    w: 0.25,
                    h: 0.2,
                    intensity: 250,
                },
                SceneObject::Disc {
                    cx: 0.7,
                    cy: 0.3,
                    r: 0.08,
                    intensity: 240,
                },
                SceneObject::Rect {
                    x: 0.7,
                    y: 0.7,
                    w: 0.1,
                    h: 0.1,
                    intensity: 245,
                },
            ]),
            SceneRenderer::new(157, 113).render_scene(
                &Pose::default(),
                &[SceneObject::Disc {
                    cx: 0.5,
                    cy: 0.5,
                    r: 0.2,
                    intensity: 255,
                }],
                0,
                0,
            ),
            SceneRenderer::new(160, 120).render(&Pose::default(), 0, 0),
            FrameBuf::new(32, 32).freeze(0, 0),
        ];
        let detector = ObjectDetector::new();
        for frame in &scenes {
            assert_eq!(
                detector.detect(frame),
                detector.detect_scalar(frame),
                "{}x{} scene diverged",
                frame.width(),
                frame.height()
            );
        }
    }
}
