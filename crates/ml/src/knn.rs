//! k-nearest-neighbour classification, with both a brute-force path and a
//! KD-tree index.
//!
//! The activity recogniser (paper §4.1.2) "utilizes nearest neighbor on pose
//! sequences". Pose-window features are ~500-dimensional, where KD-trees
//! degrade towards linear scans, so [`KnnClassifier`] picks the brute-force
//! path for high dimensions and the KD-tree for low ones; both are exposed
//! for benchmarking.
//!
//! Both paths run on the blocked kernels from [`crate::math`]: the KD-tree
//! buckets points into leaves of [`KDTREE_LEAF_SIZE`] and scans each leaf
//! with the blocked [`squared_distance`], while [`KnnClassifier::predict_batch`]
//! feeds whole query tiles through the fused
//! [`distances_with_norms_into`](crate::math::distances_with_norms_into)
//! distance-matrix kernel against sample norms cached at fit time.
//! [`KnnClassifier::brute_force_scalar`] keeps the pre-kernel scan as the
//! reference oracle.

use crate::math::{distances_with_norms_into, squared_distance, squared_distance_scalar};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from k-NN training and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KnnError {
    /// No training samples were provided.
    EmptyTrainingSet,
    /// Samples and labels have different lengths.
    LabelCountMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Samples have inconsistent dimensionality.
    DimensionMismatch {
        /// Dimension of the first sample.
        expected: usize,
        /// Dimension of the offending sample or query.
        actual: usize,
    },
    /// `k` was zero.
    ZeroK,
}

impl fmt::Display for KnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnnError::EmptyTrainingSet => write!(f, "k-NN training set is empty"),
            KnnError::LabelCountMismatch { samples, labels } => {
                write!(f, "{samples} samples but {labels} labels")
            }
            KnnError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension {actual} does not match training dimension {expected}"
                )
            }
            KnnError::ZeroK => write!(f, "k must be at least 1"),
        }
    }
}

impl Error for KnnError {}

/// Dimensionality above which the KD-tree is skipped in favour of the
/// brute-force scan (the curse of dimensionality makes the tree useless).
pub const KDTREE_MAX_DIM: usize = 16;

/// Maximum points per KD-tree leaf. Leaves are scanned with the blocked
/// distance kernel, so bucketing trades a few extra distance evaluations
/// for far fewer pointer-chasing splits — the classic cache-friendly
/// KD-tree layout.
pub const KDTREE_LEAF_SIZE: usize = 16;

/// Queries per tile in [`KnnClassifier::predict_batch`]; bounds the reused
/// distance-matrix buffer at `KNN_BATCH_TILE × samples` floats.
const KNN_BATCH_TILE: usize = 64;

#[derive(Debug, Clone)]
enum KdNode {
    Split {
        axis: usize,
        /// Splitting coordinate: left subtree holds points with
        /// `point[axis] <= value`, right subtree the rest.
        value: f32,
        left: Box<KdNode>,
        right: Box<KdNode>,
    },
    /// Bucket of sample indices, scanned linearly with the blocked kernel.
    Leaf(Vec<usize>),
}

/// A KD-tree over row indices of a sample matrix.
#[derive(Debug, Clone)]
pub struct KdTree {
    root: Option<KdNode>,
    dim: usize,
}

impl KdTree {
    /// Builds a balanced KD-tree over `samples` (median splits, points
    /// bucketed into leaves of at most [`KDTREE_LEAF_SIZE`]).
    ///
    /// # Panics
    ///
    /// Panics if samples have inconsistent dimensions.
    pub fn build(samples: &[Vec<f32>]) -> Self {
        if samples.is_empty() {
            return KdTree { root: None, dim: 0 };
        }
        let dim = samples[0].len();
        assert!(
            samples.iter().all(|s| s.len() == dim),
            "inconsistent sample dimensions"
        );
        let mut indices: Vec<usize> = (0..samples.len()).collect();
        let root = Some(Self::build_node(samples, &mut indices, 0, dim));
        KdTree { root, dim }
    }

    fn build_node(samples: &[Vec<f32>], indices: &mut [usize], depth: usize, dim: usize) -> KdNode {
        if indices.len() <= KDTREE_LEAF_SIZE {
            return KdNode::Leaf(indices.to_vec());
        }
        let axis = depth % dim;
        indices.sort_by(|&a, &b| {
            samples[a][axis]
                .partial_cmp(&samples[b][axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // len > LEAF_SIZE >= 1, so both halves are non-empty and recursion
        // strictly shrinks.
        let mid = indices.len() / 2;
        let value = samples[indices[mid - 1]][axis];
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        KdNode::Split {
            axis,
            value,
            left: Box::new(Self::build_node(samples, left_idx, depth + 1, dim)),
            right: Box::new(Self::build_node(samples, right_idx, depth + 1, dim)),
        }
    }

    /// Returns the indices of the `k` nearest samples to `query`, closest
    /// first.
    pub fn nearest(&self, samples: &[Vec<f32>], query: &[f32], k: usize) -> Vec<usize> {
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        if let Some(root) = &self.root {
            Self::search(root, samples, query, k, &mut best);
        }
        best.into_iter().map(|(_, i)| i).collect()
    }

    fn search(
        node: &KdNode,
        samples: &[Vec<f32>],
        query: &[f32],
        k: usize,
        best: &mut Vec<(f32, usize)>,
    ) {
        match node {
            KdNode::Leaf(indices) => {
                for &i in indices {
                    insert_candidate(best, k, squared_distance(query, &samples[i]), i);
                }
            }
            KdNode::Split {
                axis,
                value,
                left,
                right,
            } => {
                let diff = query[*axis] - value;
                let (near, far) = if diff <= 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                Self::search(near, samples, query, k, best);
                // Only descend the far side if the splitting plane is closer
                // than the current k-th best.
                let worst = best.last().map(|(d, _)| *d).unwrap_or(f32::INFINITY);
                if best.len() < k || diff * diff < worst {
                    Self::search(far, samples, query, k, best);
                }
            }
        }
    }

    /// Feature dimensionality the tree was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

fn insert_candidate(best: &mut Vec<(f32, usize)>, k: usize, d: f32, idx: usize) {
    let pos = best
        .binary_search_by(|(bd, _)| bd.partial_cmp(&d).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap_or_else(|p| p);
    best.insert(pos, (d, idx));
    if best.len() > k {
        best.pop();
    }
}

/// A k-NN classifier over string labels.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    samples: Vec<Vec<f32>>,
    labels: Vec<String>,
    /// Cached `‖sample‖²` per sample, so batched prediction can use the
    /// norm-decomposition distance matrix without a per-call norm pass.
    norms: Vec<f32>,
    tree: Option<KdTree>,
}

impl KnnClassifier {
    /// Trains ("memorises") the classifier.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError`] on an empty training set, mismatched label
    /// counts, inconsistent dimensions, or `k == 0`.
    pub fn fit(k: usize, samples: Vec<Vec<f32>>, labels: Vec<String>) -> Result<Self, KnnError> {
        if k == 0 {
            return Err(KnnError::ZeroK);
        }
        if samples.is_empty() {
            return Err(KnnError::EmptyTrainingSet);
        }
        if samples.len() != labels.len() {
            return Err(KnnError::LabelCountMismatch {
                samples: samples.len(),
                labels: labels.len(),
            });
        }
        let dim = samples[0].len();
        for s in &samples {
            if s.len() != dim {
                return Err(KnnError::DimensionMismatch {
                    expected: dim,
                    actual: s.len(),
                });
            }
        }
        let tree = if dim <= KDTREE_MAX_DIM {
            Some(KdTree::build(&samples))
        } else {
            None
        };
        let norms = crate::math::squared_norms(&samples);
        Ok(KnnClassifier {
            k,
            samples,
            labels,
            norms,
            tree,
        })
    }

    /// Number of neighbours consulted per prediction.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of memorised samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the training set is empty (never true for a constructed
    /// classifier; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.samples[0].len()
    }

    /// Whether predictions go through the KD-tree index.
    pub fn uses_kdtree(&self) -> bool {
        self.tree.is_some()
    }

    /// Predicts the majority label among the `k` nearest neighbours
    /// (ties broken by the nearest neighbour among tied labels).
    ///
    /// # Errors
    ///
    /// Returns [`KnnError::DimensionMismatch`] if the query has the wrong
    /// dimension.
    pub fn predict(&self, query: &[f32]) -> Result<&str, KnnError> {
        let neighbours = self.neighbours(query)?;
        Ok(self.vote(&neighbours))
    }

    /// Predicts a whole batch of queries.
    ///
    /// On the brute-force path (high-dimensional features) this runs the
    /// fused norm-decomposition distance-matrix kernel over query tiles,
    /// reusing one distance buffer and the sample norms cached at fit time;
    /// on the KD-tree path it falls back to per-query search (tree pruning
    /// already skips most distance work there).
    ///
    /// # Errors
    ///
    /// Returns [`KnnError::DimensionMismatch`] on the first wrong-sized
    /// query.
    pub fn predict_batch<Q: AsRef<[f32]>>(&self, queries: &[Q]) -> Result<Vec<&str>, KnnError> {
        for q in queries {
            if q.as_ref().len() != self.dim() {
                return Err(KnnError::DimensionMismatch {
                    expected: self.dim(),
                    actual: q.as_ref().len(),
                });
            }
        }
        if self.tree.is_some() {
            return queries.iter().map(|q| self.predict(q.as_ref())).collect();
        }
        let mut out = Vec::with_capacity(queries.len());
        let mut dists: Vec<f32> = Vec::new();
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(self.k + 1);
        for tile in queries.chunks(KNN_BATCH_TILE) {
            distances_with_norms_into(tile, &self.samples, &self.norms, &mut dists);
            for row in dists.chunks_exact(self.samples.len()) {
                best.clear();
                for (i, &d) in row.iter().enumerate() {
                    insert_candidate(&mut best, self.k, d, i);
                }
                let neighbours: Vec<usize> = best.iter().map(|&(_, i)| i).collect();
                out.push(self.vote(&neighbours));
            }
        }
        Ok(out)
    }

    /// Majority vote among neighbour indices (closest-first), ties broken
    /// by the nearest neighbour among tied labels.
    fn vote(&self, neighbours: &[usize]) -> &str {
        let mut votes: HashMap<&str, usize> = HashMap::new();
        for &i in neighbours {
            *votes.entry(self.labels[i].as_str()).or_insert(0) += 1;
        }
        let max_votes = *votes.values().max().expect("at least one neighbour");
        neighbours
            .iter()
            .map(|&i| self.labels[i].as_str())
            .find(|l| votes[l] == max_votes)
            .expect("at least one neighbour")
    }

    /// Indices of the `k` nearest training samples, closest first.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError::DimensionMismatch`] on a wrong-sized query.
    pub fn neighbours(&self, query: &[f32]) -> Result<Vec<usize>, KnnError> {
        if query.len() != self.dim() {
            return Err(KnnError::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        Ok(match &self.tree {
            Some(tree) => tree.nearest(&self.samples, query, self.k),
            None => self.brute_force(query),
        })
    }

    /// Brute-force nearest neighbours on the blocked distance kernel (also
    /// used by benchmarks to compare against the KD-tree).
    pub fn brute_force(&self, query: &[f32]) -> Vec<usize> {
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(self.k + 1);
        for (i, s) in self.samples.iter().enumerate() {
            insert_candidate(&mut best, self.k, squared_distance(query, s), i);
        }
        best.into_iter().map(|(_, i)| i).collect()
    }

    /// Scalar oracle for [`brute_force`](Self::brute_force): the pre-kernel
    /// per-element scan, kept for equivalence tests and `force-scalar`
    /// benchmarking.
    pub fn brute_force_scalar(&self, query: &[f32]) -> Vec<usize> {
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(self.k + 1);
        for (i, s) in self.samples.iter().enumerate() {
            insert_candidate(&mut best, self.k, squared_distance_scalar(query, s), i);
        }
        best.into_iter().map(|(_, i)| i).collect()
    }

    /// Fraction of `(sample, label)` pairs classified correctly.
    pub fn accuracy(&self, samples: &[Vec<f32>], labels: &[String]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .zip(labels.iter())
            .filter(|(s, l)| self.predict(s).map(|p| p == l.as_str()).unwrap_or(false))
            .count();
        correct as f32 / samples.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_data() -> (Vec<Vec<f32>>, Vec<String>) {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let j = i as f32 * 0.05;
            samples.push(vec![j, j]);
            labels.push("low".to_string());
            samples.push(vec![5.0 + j, 5.0 + j]);
            labels.push("high".to_string());
        }
        (samples, labels)
    }

    #[test]
    fn classifies_separable_data() {
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(3, s, l).unwrap();
        assert_eq!(knn.predict(&[0.1, 0.1]).unwrap(), "low");
        assert_eq!(knn.predict(&[5.2, 5.2]).unwrap(), "high");
    }

    #[test]
    fn k1_returns_exact_nearest() {
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(1, s.clone(), l).unwrap();
        let n = knn.neighbours(&s[4]).unwrap();
        assert_eq!(n, vec![4]);
    }

    #[test]
    fn kdtree_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<Vec<f32>> = (0..200)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let labels: Vec<String> = (0..200).map(|i| format!("l{}", i % 4)).collect();
        let knn = KnnClassifier::fit(5, samples.clone(), labels).unwrap();
        assert!(knn.uses_kdtree());
        for _ in 0..50 {
            let q: Vec<f32> = (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let a = knn.neighbours(&q).unwrap();
            let b = knn.brute_force(&q);
            // Distances must agree (indices may differ on exact ties).
            let da: Vec<f32> = a
                .iter()
                .map(|&i| squared_distance(&q, &samples[i]))
                .collect();
            let db: Vec<f32> = b
                .iter()
                .map(|&i| squared_distance(&q, &samples[i]))
                .collect();
            for (x, y) in da.iter().zip(db.iter()) {
                assert!((x - y).abs() < 1e-6, "kdtree {da:?} != brute {db:?}");
            }
        }
    }

    #[test]
    fn blocked_brute_force_matches_scalar_oracle() {
        let mut rng = StdRng::seed_from_u64(23);
        // High-dimensional so the blocked kernel exercises whole 8-lane
        // blocks plus a remainder.
        let samples: Vec<Vec<f32>> = (0..60)
            .map(|_| (0..37).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let labels: Vec<String> = (0..60).map(|i| format!("l{}", i % 3)).collect();
        let knn = KnnClassifier::fit(5, samples.clone(), labels).unwrap();
        for _ in 0..20 {
            let q: Vec<f32> = (0..37).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let fast = knn.brute_force(&q);
            let oracle = knn.brute_force_scalar(&q);
            for (&a, &b) in fast.iter().zip(oracle.iter()) {
                let da = squared_distance_scalar(&q, &samples[a]);
                let db = squared_distance_scalar(&q, &samples[b]);
                assert!(
                    (da - db).abs() < 1e-4,
                    "blocked {fast:?} != scalar {oracle:?}"
                );
            }
        }
    }

    #[test]
    fn predict_batch_matches_per_query_predict() {
        // Brute-force path: high-dimensional separable clusters.
        let mut rng = StdRng::seed_from_u64(7);
        let dim = 34;
        let mut samples = Vec::new();
        let mut labels: Vec<String> = Vec::new();
        for i in 0..40 {
            let centre = if i % 2 == 0 { 0.0 } else { 4.0 };
            samples.push(
                (0..dim)
                    .map(|_| centre + rng.gen_range(-0.5f32..0.5))
                    .collect::<Vec<f32>>(),
            );
            labels.push(if i % 2 == 0 { "a".into() } else { "b".into() });
        }
        let knn = KnnClassifier::fit(5, samples.clone(), labels).unwrap();
        assert!(!knn.uses_kdtree());
        let queries: Vec<Vec<f32>> = (0..9)
            .map(|i| {
                let centre = if i % 2 == 0 { 0.0 } else { 4.0 };
                (0..dim)
                    .map(|_| centre + rng.gen_range(-0.5f32..0.5))
                    .collect()
            })
            .collect();
        let batch = knn.predict_batch(&queries).unwrap();
        for (q, &b) in queries.iter().zip(batch.iter()) {
            assert_eq!(b, knn.predict(q).unwrap());
        }
        // KD-tree path delegates to per-query predict.
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(3, s.clone(), l).unwrap();
        assert!(knn.uses_kdtree());
        let batch = knn.predict_batch(&s).unwrap();
        for (q, &b) in s.iter().zip(batch.iter()) {
            assert_eq!(b, knn.predict(q).unwrap());
        }
        // Dimension errors surface, batch of none is fine.
        assert!(knn.predict_batch(&[vec![0.0]]).is_err());
        assert!(knn.predict_batch::<Vec<f32>>(&[]).unwrap().is_empty());
    }

    #[test]
    fn high_dimensional_data_skips_kdtree() {
        let samples = vec![vec![0.0; 64], vec![1.0; 64]];
        let labels = vec!["a".into(), "b".into()];
        let knn = KnnClassifier::fit(1, samples, labels).unwrap();
        assert!(!knn.uses_kdtree());
        assert_eq!(knn.predict(&vec![0.9; 64]).unwrap(), "b");
    }

    #[test]
    fn fit_errors() {
        assert!(matches!(
            KnnClassifier::fit(0, vec![vec![0.0]], vec!["a".into()]),
            Err(KnnError::ZeroK)
        ));
        assert!(matches!(
            KnnClassifier::fit(1, vec![], vec![]),
            Err(KnnError::EmptyTrainingSet)
        ));
        assert!(matches!(
            KnnClassifier::fit(1, vec![vec![0.0]], vec![]),
            Err(KnnError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            KnnClassifier::fit(
                1,
                vec![vec![0.0], vec![0.0, 1.0]],
                vec!["a".into(), "b".into()]
            ),
            Err(KnnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn predict_rejects_wrong_dimension() {
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(1, s, l).unwrap();
        assert!(matches!(
            knn.predict(&[0.0]),
            Err(KnnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn k_larger_than_dataset_uses_all_points() {
        let samples = vec![vec![0.0], vec![1.0], vec![2.0]];
        let labels = vec!["a".into(), "a".into(), "b".into()];
        let knn = KnnClassifier::fit(10, samples, labels).unwrap();
        assert_eq!(knn.predict(&[5.0]).unwrap(), "a"); // majority of all 3
    }

    #[test]
    fn accuracy_on_training_set_is_high() {
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(3, s.clone(), l.clone()).unwrap();
        assert!(knn.accuracy(&s, &l) > 0.99);
    }

    #[test]
    fn neighbours_sorted_by_distance() {
        let samples = vec![vec![0.0], vec![10.0], vec![1.0], vec![5.0]];
        let labels = vec!["a".into(); 4];
        let knn = KnnClassifier::fit(4, samples.clone(), labels).unwrap();
        let n = knn.neighbours(&[0.2]).unwrap();
        let dists: Vec<f32> = n.iter().map(|&i| (samples[i][0] - 0.2).abs()).collect();
        let mut sorted = dists.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(dists, sorted);
    }

    #[test]
    fn empty_kdtree_is_valid() {
        let tree = KdTree::build(&[]);
        assert!(tree.nearest(&[], &[0.0], 3).is_empty());
    }

    #[test]
    fn leaf_bucketed_tree_splits_above_leaf_size() {
        // More points than one leaf on a line: the tree must still return
        // exact nearest neighbours across leaf boundaries.
        let samples: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let tree = KdTree::build(&samples);
        for q in [0.0f32, 16.2, 49.9, 99.0] {
            let n = tree.nearest(&samples, &[q], 3);
            let mut brute: Vec<usize> = (0..samples.len()).collect();
            brute.sort_by(|&a, &b| {
                (samples[a][0] - q)
                    .abs()
                    .partial_cmp(&(samples[b][0] - q).abs())
                    .unwrap()
            });
            assert_eq!(n, brute[..3].to_vec(), "query {q}");
        }
    }
}
