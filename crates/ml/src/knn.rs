//! k-nearest-neighbour classification, with both a brute-force path and a
//! KD-tree index.
//!
//! The activity recogniser (paper §4.1.2) "utilizes nearest neighbor on pose
//! sequences". Pose-window features are ~500-dimensional, where KD-trees
//! degrade towards linear scans, so [`KnnClassifier`] picks the brute-force
//! path for high dimensions and the KD-tree for low ones; both are exposed
//! for benchmarking.

use crate::math::squared_distance;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from k-NN training and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KnnError {
    /// No training samples were provided.
    EmptyTrainingSet,
    /// Samples and labels have different lengths.
    LabelCountMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Samples have inconsistent dimensionality.
    DimensionMismatch {
        /// Dimension of the first sample.
        expected: usize,
        /// Dimension of the offending sample or query.
        actual: usize,
    },
    /// `k` was zero.
    ZeroK,
}

impl fmt::Display for KnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnnError::EmptyTrainingSet => write!(f, "k-NN training set is empty"),
            KnnError::LabelCountMismatch { samples, labels } => {
                write!(f, "{samples} samples but {labels} labels")
            }
            KnnError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension {actual} does not match training dimension {expected}"
                )
            }
            KnnError::ZeroK => write!(f, "k must be at least 1"),
        }
    }
}

impl Error for KnnError {}

/// Dimensionality above which the KD-tree is skipped in favour of the
/// brute-force scan (the curse of dimensionality makes the tree useless).
pub const KDTREE_MAX_DIM: usize = 16;

#[derive(Debug, Clone)]
struct KdNode {
    /// Index into the sample arrays.
    point: usize,
    axis: usize,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

/// A KD-tree over row indices of a sample matrix.
#[derive(Debug, Clone)]
pub struct KdTree {
    root: Option<Box<KdNode>>,
    dim: usize,
}

impl KdTree {
    /// Builds a balanced KD-tree over `samples` (median splits).
    ///
    /// # Panics
    ///
    /// Panics if samples have inconsistent dimensions.
    pub fn build(samples: &[Vec<f32>]) -> Self {
        if samples.is_empty() {
            return KdTree { root: None, dim: 0 };
        }
        let dim = samples[0].len();
        assert!(
            samples.iter().all(|s| s.len() == dim),
            "inconsistent sample dimensions"
        );
        let mut indices: Vec<usize> = (0..samples.len()).collect();
        let root = Self::build_node(samples, &mut indices, 0, dim);
        KdTree { root, dim }
    }

    fn build_node(
        samples: &[Vec<f32>],
        indices: &mut [usize],
        depth: usize,
        dim: usize,
    ) -> Option<Box<KdNode>> {
        if indices.is_empty() {
            return None;
        }
        let axis = depth % dim;
        indices.sort_by(|&a, &b| {
            samples[a][axis]
                .partial_cmp(&samples[b][axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mid = indices.len() / 2;
        let point = indices[mid];
        let (left_idx, rest) = indices.split_at_mut(mid);
        let right_idx = &mut rest[1..];
        Some(Box::new(KdNode {
            point,
            axis,
            left: Self::build_node(samples, left_idx, depth + 1, dim),
            right: Self::build_node(samples, right_idx, depth + 1, dim),
        }))
    }

    /// Returns the indices of the `k` nearest samples to `query`, closest
    /// first.
    pub fn nearest(&self, samples: &[Vec<f32>], query: &[f32], k: usize) -> Vec<usize> {
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        if let Some(root) = &self.root {
            Self::search(root, samples, query, k, &mut best);
        }
        best.into_iter().map(|(_, i)| i).collect()
    }

    fn search(
        node: &KdNode,
        samples: &[Vec<f32>],
        query: &[f32],
        k: usize,
        best: &mut Vec<(f32, usize)>,
    ) {
        let d = squared_distance(query, &samples[node.point]);
        insert_candidate(best, k, d, node.point);

        let axis = node.axis;
        let diff = query[axis] - samples[node.point][axis];
        let (near, far) = if diff <= 0.0 {
            (&node.left, &node.right)
        } else {
            (&node.right, &node.left)
        };
        if let Some(n) = near {
            Self::search(n, samples, query, k, best);
        }
        // Only descend the far side if the splitting plane is closer than the
        // current k-th best.
        let worst = best.last().map(|(d, _)| *d).unwrap_or(f32::INFINITY);
        if best.len() < k || diff * diff < worst {
            if let Some(n) = far {
                Self::search(n, samples, query, k, best);
            }
        }
    }

    /// Feature dimensionality the tree was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

fn insert_candidate(best: &mut Vec<(f32, usize)>, k: usize, d: f32, idx: usize) {
    let pos = best
        .binary_search_by(|(bd, _)| bd.partial_cmp(&d).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap_or_else(|p| p);
    best.insert(pos, (d, idx));
    if best.len() > k {
        best.pop();
    }
}

/// A k-NN classifier over string labels.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    samples: Vec<Vec<f32>>,
    labels: Vec<String>,
    tree: Option<KdTree>,
}

impl KnnClassifier {
    /// Trains ("memorises") the classifier.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError`] on an empty training set, mismatched label
    /// counts, inconsistent dimensions, or `k == 0`.
    pub fn fit(k: usize, samples: Vec<Vec<f32>>, labels: Vec<String>) -> Result<Self, KnnError> {
        if k == 0 {
            return Err(KnnError::ZeroK);
        }
        if samples.is_empty() {
            return Err(KnnError::EmptyTrainingSet);
        }
        if samples.len() != labels.len() {
            return Err(KnnError::LabelCountMismatch {
                samples: samples.len(),
                labels: labels.len(),
            });
        }
        let dim = samples[0].len();
        for s in &samples {
            if s.len() != dim {
                return Err(KnnError::DimensionMismatch {
                    expected: dim,
                    actual: s.len(),
                });
            }
        }
        let tree = if dim <= KDTREE_MAX_DIM {
            Some(KdTree::build(&samples))
        } else {
            None
        };
        Ok(KnnClassifier {
            k,
            samples,
            labels,
            tree,
        })
    }

    /// Number of neighbours consulted per prediction.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of memorised samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the training set is empty (never true for a constructed
    /// classifier; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.samples[0].len()
    }

    /// Whether predictions go through the KD-tree index.
    pub fn uses_kdtree(&self) -> bool {
        self.tree.is_some()
    }

    /// Predicts the majority label among the `k` nearest neighbours
    /// (ties broken by the nearest neighbour among tied labels).
    ///
    /// # Errors
    ///
    /// Returns [`KnnError::DimensionMismatch`] if the query has the wrong
    /// dimension.
    pub fn predict(&self, query: &[f32]) -> Result<&str, KnnError> {
        let neighbours = self.neighbours(query)?;
        let mut votes: HashMap<&str, usize> = HashMap::new();
        for &i in &neighbours {
            *votes.entry(self.labels[i].as_str()).or_insert(0) += 1;
        }
        let max_votes = *votes.values().max().expect("at least one neighbour");
        // Nearest neighbour whose label has the max vote count wins ties.
        let winner = neighbours
            .iter()
            .map(|&i| self.labels[i].as_str())
            .find(|l| votes[l] == max_votes)
            .expect("at least one neighbour");
        Ok(winner)
    }

    /// Indices of the `k` nearest training samples, closest first.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError::DimensionMismatch`] on a wrong-sized query.
    pub fn neighbours(&self, query: &[f32]) -> Result<Vec<usize>, KnnError> {
        if query.len() != self.dim() {
            return Err(KnnError::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        Ok(match &self.tree {
            Some(tree) => tree.nearest(&self.samples, query, self.k),
            None => self.brute_force(query),
        })
    }

    /// Brute-force nearest neighbours (also used by benchmarks to compare
    /// against the KD-tree).
    pub fn brute_force(&self, query: &[f32]) -> Vec<usize> {
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(self.k + 1);
        for (i, s) in self.samples.iter().enumerate() {
            insert_candidate(&mut best, self.k, squared_distance(query, s), i);
        }
        best.into_iter().map(|(_, i)| i).collect()
    }

    /// Fraction of `(sample, label)` pairs classified correctly.
    pub fn accuracy(&self, samples: &[Vec<f32>], labels: &[String]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .zip(labels.iter())
            .filter(|(s, l)| self.predict(s).map(|p| p == l.as_str()).unwrap_or(false))
            .count();
        correct as f32 / samples.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_data() -> (Vec<Vec<f32>>, Vec<String>) {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let j = i as f32 * 0.05;
            samples.push(vec![j, j]);
            labels.push("low".to_string());
            samples.push(vec![5.0 + j, 5.0 + j]);
            labels.push("high".to_string());
        }
        (samples, labels)
    }

    #[test]
    fn classifies_separable_data() {
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(3, s, l).unwrap();
        assert_eq!(knn.predict(&[0.1, 0.1]).unwrap(), "low");
        assert_eq!(knn.predict(&[5.2, 5.2]).unwrap(), "high");
    }

    #[test]
    fn k1_returns_exact_nearest() {
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(1, s.clone(), l).unwrap();
        let n = knn.neighbours(&s[4]).unwrap();
        assert_eq!(n, vec![4]);
    }

    #[test]
    fn kdtree_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<Vec<f32>> = (0..200)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let labels: Vec<String> = (0..200).map(|i| format!("l{}", i % 4)).collect();
        let knn = KnnClassifier::fit(5, samples.clone(), labels).unwrap();
        assert!(knn.uses_kdtree());
        for _ in 0..50 {
            let q: Vec<f32> = (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let a = knn.neighbours(&q).unwrap();
            let b = knn.brute_force(&q);
            // Distances must agree (indices may differ on exact ties).
            let da: Vec<f32> = a
                .iter()
                .map(|&i| squared_distance(&q, &samples[i]))
                .collect();
            let db: Vec<f32> = b
                .iter()
                .map(|&i| squared_distance(&q, &samples[i]))
                .collect();
            for (x, y) in da.iter().zip(db.iter()) {
                assert!((x - y).abs() < 1e-6, "kdtree {da:?} != brute {db:?}");
            }
        }
    }

    #[test]
    fn high_dimensional_data_skips_kdtree() {
        let samples = vec![vec![0.0; 64], vec![1.0; 64]];
        let labels = vec!["a".into(), "b".into()];
        let knn = KnnClassifier::fit(1, samples, labels).unwrap();
        assert!(!knn.uses_kdtree());
        assert_eq!(knn.predict(&vec![0.9; 64]).unwrap(), "b");
    }

    #[test]
    fn fit_errors() {
        assert!(matches!(
            KnnClassifier::fit(0, vec![vec![0.0]], vec!["a".into()]),
            Err(KnnError::ZeroK)
        ));
        assert!(matches!(
            KnnClassifier::fit(1, vec![], vec![]),
            Err(KnnError::EmptyTrainingSet)
        ));
        assert!(matches!(
            KnnClassifier::fit(1, vec![vec![0.0]], vec![]),
            Err(KnnError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            KnnClassifier::fit(
                1,
                vec![vec![0.0], vec![0.0, 1.0]],
                vec!["a".into(), "b".into()]
            ),
            Err(KnnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn predict_rejects_wrong_dimension() {
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(1, s, l).unwrap();
        assert!(matches!(
            knn.predict(&[0.0]),
            Err(KnnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn k_larger_than_dataset_uses_all_points() {
        let samples = vec![vec![0.0], vec![1.0], vec![2.0]];
        let labels = vec!["a".into(), "a".into(), "b".into()];
        let knn = KnnClassifier::fit(10, samples, labels).unwrap();
        assert_eq!(knn.predict(&[5.0]).unwrap(), "a"); // majority of all 3
    }

    #[test]
    fn accuracy_on_training_set_is_high() {
        let (s, l) = grid_data();
        let knn = KnnClassifier::fit(3, s.clone(), l.clone()).unwrap();
        assert!(knn.accuracy(&s, &l) > 0.99);
    }

    #[test]
    fn neighbours_sorted_by_distance() {
        let samples = vec![vec![0.0], vec![10.0], vec![1.0], vec![5.0]];
        let labels = vec!["a".into(); 4];
        let knn = KnnClassifier::fit(4, samples.clone(), labels).unwrap();
        let n = knn.neighbours(&[0.2]).unwrap();
        let dists: Vec<f32> = n.iter().map(|&i| (samples[i][0] - 0.2).abs()).collect();
        let mut sorted = dists.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(dists, sorted);
    }

    #[test]
    fn empty_kdtree_is_valid() {
        let tree = KdTree::build(&[]);
        assert!(tree.nearest(&[], &[0.0], 3).is_empty());
    }
}
