//! Activity recognition over pose windows.
//!
//! Paper §4.1.2: a nearest-neighbour classifier over hip-normalised
//! 15-frame pose sequences, trained on all labelled data except a withheld
//! test set; test accuracy above 90%.

use crate::dataset::{generate_windows, DatasetConfig, WindowDataset};
use crate::features::{window_features, WINDOW_DIM};
use crate::knn::{KnnClassifier, KnnError};
use videopipe_media::motion::ExerciseKind;
use videopipe_media::Pose;

/// A trained activity model (a k-NN classifier plus its class list).
#[derive(Debug, Clone)]
pub struct ActivityModel {
    knn: KnnClassifier,
    classes: Vec<String>,
}

impl ActivityModel {
    /// Trains on an explicit dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`KnnError`] for malformed datasets.
    pub fn train(k: usize, dataset: &WindowDataset) -> Result<Self, KnnError> {
        let knn = KnnClassifier::fit(k, dataset.features.clone(), dataset.labels.clone())?;
        let mut classes = dataset.labels.clone();
        classes.sort();
        classes.dedup();
        Ok(ActivityModel { knn, classes })
    }

    /// The class labels the model can emit.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of memorised training windows.
    pub fn training_size(&self) -> usize {
        self.knn.len()
    }

    /// Classifies a pre-extracted feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError::DimensionMismatch`] when the vector is not
    /// `WINDOW_DIM` long.
    pub fn classify_features(&self, features: &[f32]) -> Result<&str, KnnError> {
        self.knn.predict(features)
    }

    /// Classifies a batch of pre-extracted feature vectors, one label per
    /// vector in order. Window features are high-dimensional, so this rides
    /// the k-NN brute-force batch path: one fused distance matrix per query
    /// tile against sample norms cached at training time, instead of a
    /// per-query scan.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError::DimensionMismatch`] on the first wrong-sized
    /// vector.
    pub fn classify_features_batch<Q: AsRef<[f32]>>(
        &self,
        features: &[Q],
    ) -> Result<Vec<&str>, KnnError> {
        self.knn.predict_batch(features)
    }

    /// Classifies a window of [`WINDOW_LEN`](crate::features::WINDOW_LEN)
    /// poses. Returns `None` when the window length is wrong.
    pub fn classify_window(&self, window: &[Pose]) -> Option<String> {
        let features = window_features(window)?;
        self.classify_features(&features).ok().map(str::to_owned)
    }

    /// Accuracy over a labelled dataset.
    pub fn accuracy(&self, dataset: &WindowDataset) -> f32 {
        self.knn.accuracy(&dataset.features, &dataset.labels)
    }

    /// Feature dimensionality (always [`WINDOW_DIM`]).
    pub fn dim(&self) -> usize {
        WINDOW_DIM
    }
}

/// The full activity recogniser: training + evaluation convenience wrapper
/// used by the applications.
#[derive(Debug, Clone)]
pub struct ActivityRecognizer {
    model: ActivityModel,
    test_accuracy: f32,
}

impl ActivityRecognizer {
    /// Default number of neighbours.
    pub const DEFAULT_K: usize = 5;

    /// Trains a recogniser on synthetic data for `classes`, withholding a
    /// test set and recording its accuracy (the paper's >90% claim is
    /// checked in the evaluation harness).
    pub fn train_synthetic(classes: &[ExerciseKind], config: &DatasetConfig) -> Self {
        let dataset = generate_windows(classes, config);
        let (train, test) = dataset.split(0.25, config.seed ^ 0x7E57);
        let model =
            ActivityModel::train(Self::DEFAULT_K, &train).expect("synthetic dataset is valid");
        let test_accuracy = model.accuracy(&test);
        ActivityRecognizer {
            model,
            test_accuracy,
        }
    }

    /// The trained model.
    pub fn model(&self) -> &ActivityModel {
        &self.model
    }

    /// Accuracy on the withheld test set measured at training time.
    pub fn test_accuracy(&self) -> f32 {
        self.test_accuracy
    }

    /// Classifies a pose window.
    pub fn classify_window(&self, window: &[Pose]) -> Option<String> {
        self.model.classify_window(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::WINDOW_LEN;
    use videopipe_media::motion::MotionClip;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            windows_per_class: 30,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn fitness_accuracy_exceeds_90_percent() {
        // The paper's §4.1.2 claim, on the withheld test set.
        let recognizer =
            ActivityRecognizer::train_synthetic(&ExerciseKind::FITNESS, &small_config());
        assert!(
            recognizer.test_accuracy() > 0.9,
            "accuracy {}",
            recognizer.test_accuracy()
        );
    }

    #[test]
    fn gesture_classes_are_recognised() {
        let recognizer =
            ActivityRecognizer::train_synthetic(&ExerciseKind::GESTURES, &small_config());
        let clip = MotionClip::new(ExerciseKind::Wave, 1.0);
        let window: Vec<Pose> = (0..WINDOW_LEN)
            .map(|i| clip.pose_at(i as u64 * 66_000_000))
            .collect();
        assert_eq!(recognizer.classify_window(&window).unwrap(), "wave");
    }

    #[test]
    fn classify_fresh_squat_window() {
        let recognizer =
            ActivityRecognizer::train_synthetic(&ExerciseKind::FITNESS, &small_config());
        let clip = MotionClip::new(ExerciseKind::Squat, 2.2);
        let window: Vec<Pose> = (0..WINDOW_LEN)
            .map(|i| clip.pose_at(i as u64 * 66_000_000))
            .collect();
        assert_eq!(recognizer.classify_window(&window).unwrap(), "squat");
    }

    #[test]
    fn wrong_window_length_yields_none() {
        let recognizer =
            ActivityRecognizer::train_synthetic(&[ExerciseKind::Squat], &small_config());
        assert!(recognizer
            .classify_window(&vec![Pose::default(); WINDOW_LEN - 1])
            .is_none());
    }

    #[test]
    fn model_lists_classes_sorted() {
        let recognizer =
            ActivityRecognizer::train_synthetic(&ExerciseKind::GESTURES, &small_config());
        let classes = recognizer.model().classes();
        assert_eq!(classes, &["clap", "idle", "wave"]);
    }

    #[test]
    fn classify_features_rejects_wrong_dim() {
        let recognizer =
            ActivityRecognizer::train_synthetic(&[ExerciseKind::Squat], &small_config());
        assert!(recognizer.model().classify_features(&[0.0; 3]).is_err());
    }

    #[test]
    fn batch_classification_matches_per_window() {
        use crate::features::window_features;
        let recognizer =
            ActivityRecognizer::train_synthetic(&ExerciseKind::FITNESS, &small_config());
        let model = recognizer.model();
        let mut features = Vec::new();
        for kind in [
            ExerciseKind::Squat,
            ExerciseKind::JumpingJack,
            ExerciseKind::Idle,
        ] {
            let clip = MotionClip::new(kind, 2.0);
            let window: Vec<Pose> = (0..WINDOW_LEN)
                .map(|i| clip.pose_at(i as u64 * 66_000_000))
                .collect();
            features.push(window_features(&window).unwrap());
        }
        let batch = model.classify_features_batch(&features).unwrap();
        for (f, &b) in features.iter().zip(batch.iter()) {
            assert_eq!(b, model.classify_features(f).unwrap());
        }
        assert!(model.classify_features_batch(&[vec![0.0; 3]]).is_err());
    }

    #[test]
    fn translation_invariance() {
        // The same motion performed elsewhere in the room classifies
        // identically thanks to hip normalisation.
        let recognizer =
            ActivityRecognizer::train_synthetic(&ExerciseKind::FITNESS, &small_config());
        let clip = MotionClip::new(ExerciseKind::JumpingJack, 2.0);
        let window: Vec<Pose> = (0..WINDOW_LEN)
            .map(|i| clip.pose_at(i as u64 * 66_000_000).translated(0.2, 0.05))
            .collect();
        assert_eq!(recognizer.classify_window(&window).unwrap(), "jumping_jack");
    }
}
