//! Small dense-vector helpers shared by the ML algorithms.
//!
//! Everything operates on `&[f32]` slices so callers can use plain `Vec`s as
//! feature vectors without any wrapper types.

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics (via `debug_assert!`) in debug builds when the lengths differ; in
/// release builds the shorter length wins, which is never correct — callers
/// must pass equal-length vectors.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length vectors.
pub fn distance(a: &[f32], b: &[f32]) -> f32 {
    squared_distance(a, b).sqrt()
}

/// Element-wise mean of a non-empty set of equal-length vectors.
///
/// Returns `None` when `vectors` is empty.
pub fn mean(vectors: &[&[f32]]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let mut acc = vec![0.0f64; first.len()];
    for v in vectors {
        debug_assert_eq!(v.len(), first.len(), "vector length mismatch");
        for (a, x) in acc.iter_mut().zip(v.iter()) {
            *a += f64::from(*x);
        }
    }
    let n = vectors.len() as f64;
    Some(acc.into_iter().map(|a| (a / n) as f32).collect())
}

/// Arithmetic mean of a scalar slice (0.0 for an empty slice).
pub fn scalar_mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population variance of a scalar slice (0.0 for fewer than two values).
pub fn scalar_variance(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = scalar_mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32
}

/// Index of the minimum value (ties broken towards the lower index).
/// Returns `None` for an empty slice or when every value is NaN.
pub fn argmin(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value (ties broken towards the lower index).
/// Returns `None` for an empty slice or when every value is NaN.
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Intersection-over-union of two axis-aligned boxes given as
/// `(min_x, min_y, max_x, max_y)`. Degenerate boxes yield 0.
pub fn iou(a: (f32, f32, f32, f32), b: (f32, f32, f32, f32)) -> f32 {
    let ix = (a.2.min(b.2) - a.0.max(b.0)).max(0.0);
    let iy = (a.3.min(b.3) - a.1.max(b.1)).max(0.0);
    let inter = ix * iy;
    let area_a = (a.2 - a.0).max(0.0) * (a.3 - a.1).max(0.0);
    let area_b = (b.2 - b.0).max(0.0) * (b.3 - b.1).max(0.0);
    let union = area_a + area_b - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(squared_distance(&a, &b), 25.0);
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        let m = mean(&[&a, &b]).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn scalar_statistics() {
        assert_eq!(scalar_mean(&[]), 0.0);
        assert_eq!(scalar_mean(&[2.0, 4.0]), 3.0);
        assert_eq!(scalar_variance(&[5.0]), 0.0);
        assert!((scalar_variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmin_argmax_with_ties_and_nan() {
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[f32::NAN]), None);
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 5.0, 5.0]), Some(1));
        assert_eq!(argmin(&[f32::NAN, 2.0, 1.0]), Some(2));
    }

    #[test]
    fn iou_cases() {
        let unit = (0.0, 0.0, 1.0, 1.0);
        assert!((iou(unit, unit) - 1.0).abs() < 1e-6);
        assert_eq!(iou(unit, (2.0, 2.0, 3.0, 3.0)), 0.0);
        // Half overlap: boxes share half their area.
        let right = (0.5, 0.0, 1.5, 1.0);
        let expected = 0.5 / 1.5;
        assert!((iou(unit, right) - expected).abs() < 1e-6);
        // Degenerate box.
        assert_eq!(iou(unit, (0.5, 0.5, 0.5, 0.5)), 0.0);
    }
}
