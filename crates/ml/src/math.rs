//! Small dense-vector kernels shared by the ML algorithms.
//!
//! Everything operates on `&[f32]` slices so callers can use plain `Vec`s as
//! feature vectors without any wrapper types.
//!
//! # Kernels
//!
//! The distance/dot/axpy/mean kernels come in two forms, mirroring the codec
//! contract in `videopipe-media`: a **blocked 8-lane** fast path (the
//! default) and a byte-at-a-time **scalar oracle** (`*_scalar`) kept as the
//! reference implementation. The blocked kernels accumulate into eight
//! independent lanes so the compiler can autovectorize them; property tests
//! pin each one to its oracle under the per-kernel policy below:
//!
//! | kernel | contract vs oracle |
//! |---|---|
//! | [`axpy`] | bit-identical (same per-element operations) |
//! | [`mean`] | bit-identical (per-column `f64` sums in the same order) |
//! | [`dot`], [`squared_distance`] | ε-bounded (8-lane tree sum re-associates the reduction) |
//! | [`distances_into`] | ε-bounded (‖a−b‖² = ‖a‖²+‖b‖²−2a·b decomposition, clamped at 0) |
//!
//! Building `videopipe-ml` with the `force-scalar` feature routes every
//! dispatching kernel through its scalar oracle, which keeps the fallback
//! path exercised in CI and gives a one-flag A/B switch for benchmarks.
//!
//! # Length mismatches
//!
//! All two-vector kernels `assert!` on length mismatch in **every** build
//! profile. (They previously only `debug_assert!`ed, silently truncating to
//! the shorter vector in release builds — which is never correct.)

/// Whether the `force-scalar` feature routes kernels through their oracles.
pub const FORCE_SCALAR: bool = cfg!(feature = "force-scalar");

/// Number of independent accumulator lanes in the blocked kernels.
const LANES: usize = 8;

/// Squared Euclidean distance between two equal-length vectors
/// (blocked 8-lane kernel; ε-bounded against [`squared_distance_scalar`]).
///
/// # Panics
///
/// Panics when the lengths differ, in release builds too.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    if FORCE_SCALAR {
        return squared_distance_scalar(a, b);
    }
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            let d = xa[i] - xb[i];
            lanes[i] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    reduce_lanes(&lanes) + tail
}

/// Scalar reference oracle for [`squared_distance`] (sequential sum).
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn squared_distance_scalar(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Dot product of two equal-length vectors (blocked 8-lane kernel;
/// ε-bounded against [`dot_scalar`]).
///
/// # Panics
///
/// Panics when the lengths differ, in release builds too.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    if FORCE_SCALAR {
        return dot_scalar(a, b);
    }
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            lanes[i] += xa[i] * xb[i];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    reduce_lanes(&lanes) + tail
}

/// Scalar reference oracle for [`dot`] (sequential sum).
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Pairwise tree reduction of the accumulator lanes (fixed association, so
/// the blocked kernels are deterministic run to run).
fn reduce_lanes(lanes: &[f32; LANES]) -> f32 {
    ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]))
}

/// `y[i] += alpha * x[i]` over two equal-length vectors (blocked kernel;
/// **bit-identical** to [`axpy_scalar`] — the per-element operation is the
/// same, only the loop is unrolled).
///
/// # Panics
///
/// Panics when the lengths differ, in release builds too.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    if FORCE_SCALAR {
        return axpy_scalar(alpha, x, y);
    }
    let mut cy = y.chunks_exact_mut(LANES);
    let mut cx = x.chunks_exact(LANES);
    for (ya, xa) in cy.by_ref().zip(cx.by_ref()) {
        for i in 0..LANES {
            ya[i] += alpha * xa[i];
        }
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// Scalar reference oracle for [`axpy`].
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Element-wise mean of a non-empty set of equal-length vectors (blocked
/// column kernel; **bit-identical** to [`mean_scalar`] — each column is an
/// independent `f64` sum accumulated in the same vector order).
///
/// Returns `None` when `vectors` is empty.
///
/// # Panics
///
/// Panics when the vectors have inconsistent lengths, in release builds too.
pub fn mean<V: AsRef<[f32]>>(vectors: &[V]) -> Option<Vec<f32>> {
    if FORCE_SCALAR {
        return mean_scalar(vectors);
    }
    let first = vectors.first()?.as_ref();
    let mut acc = vec![0.0f64; first.len()];
    for v in vectors {
        let v = v.as_ref();
        assert_eq!(v.len(), first.len(), "vector length mismatch");
        let mut ca = acc.chunks_exact_mut(LANES);
        let mut cv = v.chunks_exact(LANES);
        for (aa, xa) in ca.by_ref().zip(cv.by_ref()) {
            for i in 0..LANES {
                aa[i] += f64::from(xa[i]);
            }
        }
        for (a, x) in ca.into_remainder().iter_mut().zip(cv.remainder()) {
            *a += f64::from(*x);
        }
    }
    let n = vectors.len() as f64;
    Some(acc.into_iter().map(|a| (a / n) as f32).collect())
}

/// Scalar reference oracle for [`mean`].
///
/// # Panics
///
/// Panics when the vectors have inconsistent lengths.
pub fn mean_scalar<V: AsRef<[f32]>>(vectors: &[V]) -> Option<Vec<f32>> {
    let first = vectors.first()?.as_ref();
    let mut acc = vec![0.0f64; first.len()];
    for v in vectors {
        let v = v.as_ref();
        assert_eq!(v.len(), first.len(), "vector length mismatch");
        for (a, x) in acc.iter_mut().zip(v.iter()) {
            *a += f64::from(*x);
        }
    }
    let n = vectors.len() as f64;
    Some(acc.into_iter().map(|a| (a / n) as f32).collect())
}

/// Squared norms ‖p‖² of a set of points, for [`distances_with_norms_into`]
/// callers that amortise the norm pass across many batches (k-NN caches
/// these at fit time).
pub fn squared_norms<P: AsRef<[f32]>>(points: &[P]) -> Vec<f32> {
    points.iter().map(|p| dot(p.as_ref(), p.as_ref())).collect()
}

/// Fused batch distance-matrix kernel:
/// `out[q * points.len() + p] = ‖queries[q] − points[p]‖²`.
///
/// Uses the ‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b decomposition with the point norms
/// computed **once** per call (instead of per pair), over a column-major
/// copy of the points: each output row is initialised to ‖q‖² + ‖p‖² and
/// then walked once per dimension, subtracting `2·q_d·p_d` across the whole
/// row of contiguous point components. Every row element is independent, so
/// the inner loop autovectorizes without any reduction chain. Results are
/// clamped at 0 (the decomposition can go fractionally negative when a
/// query coincides with a point) and are ε-bounded, not bit-identical,
/// against [`distances_into_scalar`]:
/// `|d − d_scalar| ≤ 1e-3 · (1 + ‖a‖² + ‖b‖²)`, the documented policy the
/// property tests pin.
///
/// `out` is cleared and refilled, so one buffer can be reused across calls.
///
/// # Panics
///
/// Panics when any query or point length differs from the rest.
pub fn distances_into<Q: AsRef<[f32]>, P: AsRef<[f32]>>(
    queries: &[Q],
    points: &[P],
    out: &mut Vec<f32>,
) {
    let norms = squared_norms(points);
    distances_with_norms_into(queries, points, &norms, out);
}

/// [`distances_into`] with caller-cached point norms (`norms[p] = ‖points[p]‖²`).
///
/// # Panics
///
/// Panics when `norms.len() != points.len()` or any vector length differs.
pub fn distances_with_norms_into<Q: AsRef<[f32]>, P: AsRef<[f32]>>(
    queries: &[Q],
    points: &[P],
    norms: &[f32],
    out: &mut Vec<f32>,
) {
    assert_eq!(norms.len(), points.len(), "one norm per point");
    out.clear();
    if FORCE_SCALAR {
        distances_into_scalar(queries, points, out);
        return;
    }
    let Some(dim) = points.first().map(|p| p.as_ref().len()) else {
        return;
    };
    let transposed = transpose_points(points, dim);
    distances_transposed(queries, &transposed, points.len(), dim, norms, out);
}

/// Column-major copy of `points`: slot `d * points.len() + p` holds
/// component `d` of point `p`, so a whole "column" of one dimension is
/// contiguous.
///
/// # Panics
///
/// Panics when any point length differs from `dim`.
fn transpose_points<P: AsRef<[f32]>>(points: &[P], dim: usize) -> Vec<f32> {
    let np = points.len();
    let mut transposed = vec![0.0f32; np * dim];
    for (p, point) in points.iter().enumerate() {
        let point = point.as_ref();
        assert_eq!(point.len(), dim, "vector length mismatch");
        for (d, &v) in point.iter().enumerate() {
            transposed[d * np + p] = v;
        }
    }
    transposed
}

/// Shared core of the fused distance matrix: the row-parallel walk over a
/// column-major point block.
fn distances_transposed<Q: AsRef<[f32]>>(
    queries: &[Q],
    transposed: &[f32],
    np: usize,
    dim: usize,
    norms: &[f32],
    out: &mut Vec<f32>,
) {
    out.clear();
    out.resize(queries.len() * np, 0.0);
    for (qi, q) in queries.iter().enumerate() {
        let q = q.as_ref();
        assert_eq!(q.len(), dim, "vector length mismatch");
        let qn = dot(q, q);
        let row = &mut out[qi * np..(qi + 1) * np];
        for (r, &pn) in row.iter_mut().zip(norms) {
            *r = qn + pn;
        }
        for (d, &qd) in q.iter().enumerate() {
            let column = &transposed[d * np..(d + 1) * np];
            let coeff = -2.0 * qd;
            for (r, &pv) in row.iter_mut().zip(column) {
                *r += coeff * pv;
            }
        }
        for r in row.iter_mut() {
            *r = r.max(0.0);
        }
    }
}

/// A point set frozen for repeated distance-matrix calls: the column-major
/// copy and the squared norms are built once, so per-call work is only the
/// row-parallel walk. k-means freezes its samples this way at fit time and
/// reuses the block across every assignment iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PointBlock {
    transposed: Vec<f32>,
    norms: Vec<f32>,
    len: usize,
    dim: usize,
}

impl PointBlock {
    /// Builds the block (one transpose + one norm pass).
    ///
    /// # Panics
    ///
    /// Panics when the points have inconsistent lengths.
    pub fn new<P: AsRef<[f32]>>(points: &[P]) -> Self {
        let dim = points.first().map_or(0, |p| p.as_ref().len());
        PointBlock {
            transposed: transpose_points(points, dim),
            norms: squared_norms(points),
            len: points.len(),
            dim,
        }
    }

    /// Number of points in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the points (0 for an empty block).
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// [`distances_into`] against a prebuilt [`PointBlock`]:
/// `out[q * block.len() + p] = ‖queries[q] − points[p]‖²` with the
/// transpose and norm passes already paid. Same ε policy and 0-clamp as
/// [`distances_with_norms_into`]. Under `force-scalar` the block's
/// column-major layout is walked in ascending-dimension order per pair,
/// which reproduces [`distances_into_scalar`]'s accumulation exactly.
///
/// # Panics
///
/// Panics when any query length differs from `block.dim()` (for a
/// non-empty block).
pub fn distances_block_into<Q: AsRef<[f32]>>(
    queries: &[Q],
    block: &PointBlock,
    out: &mut Vec<f32>,
) {
    if FORCE_SCALAR {
        out.clear();
        out.reserve(queries.len() * block.len);
        for q in queries {
            let q = q.as_ref();
            assert_eq!(q.len(), block.dim, "vector length mismatch");
            for p in 0..block.len {
                let mut d = 0.0f32;
                for (dd, &qd) in q.iter().enumerate() {
                    let diff = qd - block.transposed[dd * block.len + p];
                    d += diff * diff;
                }
                out.push(d);
            }
        }
        return;
    }
    distances_transposed(
        queries,
        &block.transposed,
        block.len,
        block.dim,
        &block.norms,
        out,
    );
}

/// Scalar reference oracle for [`distances_into`]: a direct
/// [`squared_distance_scalar`] per (query, point) pair.
///
/// # Panics
///
/// Panics when any vector length differs.
pub fn distances_into_scalar<Q: AsRef<[f32]>, P: AsRef<[f32]>>(
    queries: &[Q],
    points: &[P],
    out: &mut Vec<f32>,
) {
    out.clear();
    out.reserve(queries.len() * points.len());
    for q in queries {
        for p in points {
            out.push(squared_distance_scalar(q.as_ref(), p.as_ref()));
        }
    }
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics when the lengths differ, in release builds too.
pub fn distance(a: &[f32], b: &[f32]) -> f32 {
    squared_distance(a, b).sqrt()
}

/// Arithmetic mean of a scalar slice (0.0 for an empty slice).
pub fn scalar_mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population variance of a scalar slice (0.0 for fewer than two values).
pub fn scalar_variance(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = scalar_mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32
}

/// Index of the minimum value (ties broken towards the lower index).
/// Returns `None` for an empty slice or when every value is NaN.
pub fn argmin(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value (ties broken towards the lower index).
/// Returns `None` for an empty slice or when every value is NaN.
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Intersection-over-union of two axis-aligned boxes given as
/// `(min_x, min_y, max_x, max_y)`. Degenerate boxes yield 0.
pub fn iou(a: (f32, f32, f32, f32), b: (f32, f32, f32, f32)) -> f32 {
    let ix = (a.2.min(b.2) - a.0.max(b.0)).max(0.0);
    let iy = (a.3.min(b.3) - a.1.max(b.1)).max(0.0);
    let inter = ix * iy;
    let area_a = (a.2 - a.0).max(0.0) * (a.3 - a.1).max(0.0);
    let area_b = (b.2 - b.0).max(0.0) * (b.3 - b.1).max(0.0);
    let union = area_a + area_b - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(squared_distance(&a, &b), 25.0);
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn blocked_kernels_match_oracles_across_lengths() {
        // Lengths straddle the 8-lane boundary: empty, single, 7, 8, 9, 20.
        for n in [0usize, 1, 7, 8, 9, 20, 64, 65] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 1.3).cos() * 2.0).collect();
            let eps = 1e-4 * (1.0 + n as f32);
            assert!(
                (squared_distance(&a, &b) - squared_distance_scalar(&a, &b)).abs() < eps,
                "squared_distance len {n}"
            );
            assert!(
                (dot(&a, &b) - dot_scalar(&a, &b)).abs() < eps,
                "dot len {n}"
            );
            let mut y1 = b.clone();
            let mut y2 = b.clone();
            axpy(0.37, &a, &mut y1);
            axpy_scalar(0.37, &a, &mut y2);
            assert_eq!(y1, y2, "axpy must be bit-identical, len {n}");
        }
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        let m = mean(&[&a[..], &b[..]]).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
        assert_eq!(mean::<&[f32]>(&[]), None);
        // Blocked and scalar means are bit-identical, including past lane 8.
        let vs: Vec<Vec<f32>> = (0..5)
            .map(|r| (0..19).map(|c| (r * 19 + c) as f32 * 0.31).collect())
            .collect();
        assert_eq!(mean(&vs), mean_scalar(&vs));
    }

    #[test]
    fn distance_matrix_matches_scalar_oracle() {
        let queries: Vec<Vec<f32>> = (0..3)
            .map(|q| (0..13).map(|i| (q * 13 + i) as f32 * 0.11 - 2.0).collect())
            .collect();
        let points: Vec<Vec<f32>> = (0..4)
            .map(|p| (0..13).map(|i| (p * 13 + i) as f32 * 0.07 - 1.0).collect())
            .collect();
        let mut fast = Vec::new();
        let mut oracle = Vec::new();
        distances_into(&queries, &points, &mut fast);
        distances_into_scalar(&queries, &points, &mut oracle);
        assert_eq!(fast.len(), oracle.len());
        for (qi, q) in queries.iter().enumerate() {
            for (pi, p) in points.iter().enumerate() {
                let i = qi * points.len() + pi;
                let eps = 1e-3 * (1.0 + dot(q, q) + dot(p, p));
                assert!(
                    (fast[i] - oracle[i]).abs() <= eps,
                    "pair ({qi},{pi}): {} vs {}",
                    fast[i],
                    oracle[i]
                );
            }
        }
        // A query that coincides with a point must not go negative.
        let mut d = Vec::new();
        distances_into(&[points[2].clone()], &points, &mut d);
        assert!(d[2] >= 0.0 && d[2] < 1e-3);
    }

    #[test]
    fn distance_matrix_reuses_buffer_and_handles_empty() {
        let mut out = vec![99.0; 7];
        distances_into(&[[1.0f32, 2.0]], &[[1.0f32, 2.0], [4.0, 6.0]], &mut out);
        assert_eq!(out.len(), 2);
        assert!(out[0] < 1e-6 && (out[1] - 25.0).abs() < 1e-3);
        distances_into::<[f32; 2], [f32; 2]>(&[], &[[0.0, 0.0]], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn squared_distance_rejects_mismatch() {
        let _ = squared_distance(&[0.0, 1.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatch() {
        let _ = dot(&[0.0, 1.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_mismatch() {
        axpy(1.0, &[0.0, 1.0], &mut [0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mean_rejects_mismatch() {
        let _ = mean(&[vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "one norm per point")]
    fn distances_reject_norm_count_mismatch() {
        let mut out = Vec::new();
        distances_with_norms_into(&[[0.0f32]], &[[0.0f32]], &[], &mut out);
    }

    #[test]
    fn scalar_statistics() {
        assert_eq!(scalar_mean(&[]), 0.0);
        assert_eq!(scalar_mean(&[2.0, 4.0]), 3.0);
        assert_eq!(scalar_variance(&[5.0]), 0.0);
        assert!((scalar_variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmin_argmax_with_ties_and_nan() {
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[f32::NAN]), None);
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 5.0, 5.0]), Some(1));
        assert_eq!(argmin(&[f32::NAN, 2.0, 1.0]), Some(2));
    }

    #[test]
    fn iou_cases() {
        let unit = (0.0, 0.0, 1.0, 1.0);
        assert!((iou(unit, unit) - 1.0).abs() < 1e-6);
        assert_eq!(iou(unit, (2.0, 2.0, 3.0, 3.0)), 0.0);
        // Half overlap: boxes share half their area.
        let right = (0.5, 0.0, 1.5, 1.0);
        let expected = 0.5 / 1.5;
        assert!((iou(unit, right) - expected).abs() < 1e-6);
        // Degenerate box.
        assert_eq!(iou(unit, (0.5, 0.5, 0.5, 0.5)), 0.0);
    }
}
