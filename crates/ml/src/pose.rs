//! The 2D pose detector service kernel.
//!
//! Paper §4.1.1: "The 2D pose detector first detects a human and places a
//! bounding box around them. Within that bounding box, it detects 17
//! keypoints."
//!
//! This implementation does honest raster work on the synthetic scenes
//! rendered by `videopipe-media`: it scans the raster for body pixels,
//! finds the human's bounding box, and accumulates per-joint blob centroids
//! using the intensity-band coding. Sensor noise pushes pixels across band
//! boundaries, so detection accuracy genuinely degrades with noise and
//! small blobs can be missed — the detector returns per-joint confidences
//! and an overall score.
//!
//! The production path ([`PoseDetector::detect`]) is a word-wide fused
//! kernel: one pass, 8 pixels per `u64` load, branchless threshold masks
//! from [`videopipe_media::scan`], and an intensity → joint lookup table.
//! The pre-kernel two-pass implementation stays available as the
//! bit-identical [`PoseDetector::detect_scalar`] oracle.

use crate::math::{scalar_mean, FORCE_SCALAR};
use videopipe_media::scan::scan_at_least;
use videopipe_media::scene::{joint_for_intensity, JOINT_BAND_HALF_WIDTH};
use videopipe_media::{Frame, Joint, Keypoint, Pose, JOINT_COUNT};

/// Anything at least this bright counts as a body pixel (bone or joint,
/// with a small margin below the joint bands). Kept below the lowest joint
/// band: that containment is what lets the fused batch kernel merge the
/// bbox and centroid passes exactly.
const BODY_THRESHOLD: u8 = 30;

/// A detected pose: keypoints in scene coordinates, a bounding box, and
/// per-joint confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedPose {
    /// Recovered keypoints (scene coordinates in `[0, 1]²`).
    pub pose: Pose,
    /// Bounding box `(min_x, min_y, max_x, max_y)` in scene coordinates.
    pub bbox: (f32, f32, f32, f32),
    /// Per-joint confidence in `[0, 1]` (fraction of expected blob pixels
    /// found).
    pub joint_confidence: [f32; JOINT_COUNT],
    /// Overall detection score: mean joint confidence.
    pub score: f32,
}

impl DetectedPose {
    /// Number of joints detected with confidence above `threshold`.
    pub fn joints_above(&self, threshold: f32) -> usize {
        self.joint_confidence
            .iter()
            .filter(|&&c| c >= threshold)
            .count()
    }
}

/// Sentinel in the intensity → joint lookup table: "not a joint band".
const NO_JOINT: u8 = 0xFF;

/// Configuration and kernel of the pose detection service.
#[derive(Debug, Clone)]
pub struct PoseDetector {
    /// Minimum pixels a joint blob needs to be trusted at all.
    min_blob_pixels: usize,
    /// Expected blob pixel count at full confidence (≈ π r² of the rendered
    /// joint discs; confidences saturate at 1).
    expected_blob_pixels: f32,
    /// Minimum overall score for a detection to be reported.
    min_score: f32,
    /// Intensity → joint index lookup ([`NO_JOINT`] outside every band);
    /// replaces the per-pixel `joint_for_intensity` banding arithmetic in
    /// the word-wide scan.
    joint_lut: [u8; 256],
}

impl PoseDetector {
    /// Creates a detector with defaults matched to the default scene
    /// renderer (joint radius = min(w, h) / 80).
    pub fn new() -> Self {
        let mut joint_lut = [NO_JOINT; 256];
        for (value, slot) in joint_lut.iter_mut().enumerate() {
            if let Some(joint) = joint_for_intensity(value as u8) {
                *slot = joint.index() as u8;
            }
        }
        PoseDetector {
            min_blob_pixels: 3,
            expected_blob_pixels: 28.0,
            min_score: 0.35,
            joint_lut,
        }
    }

    /// Sets the minimum blob size in pixels.
    pub fn with_min_blob_pixels(mut self, n: usize) -> Self {
        self.min_blob_pixels = n.max(1);
        self
    }

    /// Sets the minimum overall score for a detection to be reported.
    pub fn with_min_score(mut self, score: f32) -> Self {
        self.min_score = score.clamp(0.0, 1.0);
        self
    }

    /// Detects the (single) person in `frame`.
    ///
    /// Returns `None` when no plausible human is present — e.g. an empty or
    /// hopelessly noisy frame.
    ///
    /// This is the word-wide fused kernel: one pass over the raster, 8
    /// pixels per `u64` load, with the branchless threshold mask from
    /// [`videopipe_media::scan`] skipping background words and an intensity
    /// → joint lookup table replacing the banding arithmetic on the (rare)
    /// foreground pixels. Bounding box and per-joint centroids accumulate
    /// together in that single pass. The result is **bit-identical** to
    /// [`detect_scalar`]: the word scan replays matching pixels in row-major
    /// order, the fusion is exact because every joint band starts at
    /// `JOINT_BASE_INTENSITY - JOINT_BAND_HALF_WIDTH`, above the body
    /// threshold (a joint pixel is always a body pixel, so it is always
    /// inside the box the restricted scalar second pass would have scanned),
    /// and the LUT reproduces `joint_for_intensity` for all 256 intensities.
    ///
    /// [`detect_scalar`]: PoseDetector::detect_scalar
    pub fn detect(&self, frame: &Frame) -> Option<DetectedPose> {
        if FORCE_SCALAR {
            return self.detect_scalar(frame);
        }
        let width = frame.width() as usize;
        let height = frame.height() as usize;
        let pixels = frame.pixels();

        let mut min_x = usize::MAX;
        let mut min_y = usize::MAX;
        let mut max_x = 0usize;
        let mut max_y = 0usize;
        let mut body_pixels = 0usize;
        let mut sum_x = [0f64; JOINT_COUNT];
        let mut sum_y = [0f64; JOINT_COUNT];
        let mut count = [0usize; JOINT_COUNT];
        for y in 0..height {
            let row = &pixels[y * width..(y + 1) * width];
            scan_at_least(row, BODY_THRESHOLD, |x, p| {
                body_pixels += 1;
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
                let j = self.joint_lut[p as usize];
                if j != NO_JOINT {
                    let j = j as usize;
                    sum_x[j] += x as f64;
                    sum_y[j] += y as f64;
                    count[j] += 1;
                }
            });
        }
        if body_pixels < self.min_blob_pixels * 4 || min_x > max_x || min_y > max_y {
            return None;
        }

        self.finish(
            width,
            height,
            (min_x, min_y, max_x, max_y),
            body_pixels,
            &sum_x,
            &sum_y,
            &count,
        )
    }

    /// Scalar reference oracle for [`detect`]: the pre-kernel two-pass
    /// implementation (bounding-box pass over every pixel, then a per-joint
    /// centroid pass restricted to the box), branching on each pixel and
    /// calling `joint_for_intensity` directly. Kept public so tests and the
    /// benchmark can pin the word-wide kernel against it.
    ///
    /// [`detect`]: PoseDetector::detect
    pub fn detect_scalar(&self, frame: &Frame) -> Option<DetectedPose> {
        let width = frame.width() as usize;
        let height = frame.height() as usize;
        let pixels = frame.pixels();

        // Pass 1: bounding box of all "body" pixels (anything bright enough
        // to be bone or joint, with a small margin below the joint bands).
        let mut min_x = usize::MAX;
        let mut min_y = usize::MAX;
        let mut max_x = 0usize;
        let mut max_y = 0usize;
        let mut body_pixels = 0usize;
        for y in 0..height {
            let row = &pixels[y * width..(y + 1) * width];
            for (x, &p) in row.iter().enumerate() {
                if p >= BODY_THRESHOLD {
                    body_pixels += 1;
                    min_x = min_x.min(x);
                    min_y = min_y.min(y);
                    max_x = max_x.max(x);
                    max_y = max_y.max(y);
                }
            }
        }
        if body_pixels < self.min_blob_pixels * 4 || min_x > max_x || min_y > max_y {
            return None;
        }

        // Pass 2: per-joint centroid accumulation inside the bounding box.
        let mut sum_x = [0f64; JOINT_COUNT];
        let mut sum_y = [0f64; JOINT_COUNT];
        let mut count = [0usize; JOINT_COUNT];
        for y in min_y..=max_y {
            let row = &pixels[y * width..(y + 1) * width];
            for (x, &p) in row.iter().enumerate().take(max_x + 1).skip(min_x) {
                if let Some(joint) = joint_for_intensity(p) {
                    let j = joint.index();
                    sum_x[j] += x as f64;
                    sum_y[j] += y as f64;
                    count[j] += 1;
                }
            }
        }

        self.finish(
            width,
            height,
            (min_x, min_y, max_x, max_y),
            body_pixels,
            &sum_x,
            &sum_y,
            &count,
        )
    }

    /// Detects poses in a batch of frames, one result per frame in order —
    /// each frame through the same word-wide fused kernel as [`detect`],
    /// so batched and per-frame results are identical by construction.
    ///
    /// [`detect`]: PoseDetector::detect
    pub fn detect_batch(&self, frames: &[&Frame]) -> Vec<Option<DetectedPose>> {
        frames.iter().map(|frame| self.detect(frame)).collect()
    }

    /// Everything after the pixel scans: centroids → keypoints, confidence,
    /// bbox-centre imputation of missing joints, and the score gate. Shared
    /// by [`detect`] and the fused batch kernel so the two stay identical.
    ///
    /// [`detect`]: PoseDetector::detect
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        width: usize,
        height: usize,
        bbox: (usize, usize, usize, usize),
        body_pixels: usize,
        sum_x: &[f64; JOINT_COUNT],
        sum_y: &[f64; JOINT_COUNT],
        count: &[usize; JOINT_COUNT],
    ) -> Option<DetectedPose> {
        let (min_x, min_y, max_x, max_y) = bbox;
        if body_pixels < self.min_blob_pixels * 4 || min_x > max_x || min_y > max_y {
            return None;
        }

        let mut keypoints = [Keypoint::default(); JOINT_COUNT];
        let mut confidence = [0f32; JOINT_COUNT];
        let mut found_any = false;
        for j in 0..JOINT_COUNT {
            if count[j] >= self.min_blob_pixels {
                keypoints[j] = Keypoint::new(
                    (sum_x[j] / count[j] as f64) as f32 / width as f32,
                    (sum_y[j] / count[j] as f64) as f32 / height as f32,
                );
                confidence[j] = (count[j] as f32 / self.expected_blob_pixels).min(1.0);
                found_any = true;
            }
        }
        if !found_any {
            return None;
        }

        // Missing joints are imputed from the body bbox centre so downstream
        // feature vectors stay well-formed (a real detector also emits
        // low-confidence guesses).
        let cx = (min_x + max_x) as f32 / 2.0 / width as f32;
        let cy = (min_y + max_y) as f32 / 2.0 / height as f32;
        for j in 0..JOINT_COUNT {
            if count[j] < self.min_blob_pixels {
                keypoints[j] = Keypoint::new(cx, cy);
            }
        }

        let score = scalar_mean(&confidence);
        if score < self.min_score {
            return None;
        }

        Some(DetectedPose {
            pose: Pose::new(keypoints),
            bbox: (
                min_x as f32 / width as f32,
                min_y as f32 / height as f32,
                (max_x + 1) as f32 / width as f32,
                (max_y + 1) as f32 / height as f32,
            ),
            joint_confidence: confidence,
            score,
        })
    }

    /// The intensity half-width tolerated per joint band (re-exported for
    /// diagnostics).
    pub fn band_half_width(&self) -> u8 {
        JOINT_BAND_HALF_WIDTH
    }
}

impl Default for PoseDetector {
    fn default() -> Self {
        Self::new()
    }
}

/// Mean per-joint detection error (scene units) of `detected` against the
/// ground-truth `truth`, considering only joints above the confidence
/// threshold.
pub fn detection_error(detected: &DetectedPose, truth: &Pose, min_confidence: f32) -> f32 {
    let mut errs = Vec::new();
    for j in Joint::ALL {
        if detected.joint_confidence[j.index()] >= min_confidence {
            errs.push(detected.pose.joint(j).distance(&truth.joint(j)));
        }
    }
    scalar_mean(&errs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use videopipe_media::motion::{ExerciseKind, MotionClip};
    use videopipe_media::scene::SceneRenderer;
    use videopipe_media::FrameBuf;

    fn render(pose: &Pose) -> Frame {
        SceneRenderer::new(320, 240).render(pose, 0, 0)
    }

    #[test]
    fn detects_standing_pose_accurately() {
        let truth = Pose::default();
        let detected = PoseDetector::new().detect(&render(&truth)).unwrap();
        let err = detection_error(&detected, &truth, 0.5);
        assert!(err < 0.01, "mean joint error {err}");
        assert!(detected.score > 0.8, "score {}", detected.score);
        assert_eq!(detected.joints_above(0.5), JOINT_COUNT);
    }

    #[test]
    fn bbox_contains_all_keypoints() {
        let truth = Pose::default();
        let d = PoseDetector::new().detect(&render(&truth)).unwrap();
        let (x0, y0, x1, y1) = d.bbox;
        for kp in d.pose.keypoints() {
            assert!(kp.x >= x0 - 0.02 && kp.x <= x1 + 0.02);
            assert!(kp.y >= y0 - 0.02 && kp.y <= y1 + 0.02);
        }
    }

    #[test]
    fn empty_frame_yields_none() {
        let frame = FrameBuf::new(320, 240).freeze(0, 0);
        assert!(PoseDetector::new().detect(&frame).is_none());
    }

    #[test]
    fn tracks_motion_across_phases() {
        let detector = PoseDetector::new();
        let clip = MotionClip::new(ExerciseKind::Squat, 2.0);
        for phase in [0.0, 0.25, 0.5, 0.75] {
            let truth = clip.pose_at_phase(phase);
            let detected = detector.detect(&render(&truth)).unwrap();
            let err = detection_error(&detected, &truth, 0.5);
            assert!(err < 0.015, "phase {phase}: error {err}");
        }
    }

    #[test]
    fn light_noise_tolerated_heavy_noise_degrades() {
        let detector = PoseDetector::new();
        let renderer = SceneRenderer::new(320, 240);
        let truth = Pose::default();
        let mut rng = StdRng::seed_from_u64(3);

        let light = renderer.render_noisy(&truth, 2.0, &mut rng, 0, 0);
        let d_light = detector.detect(&light).expect("light noise should detect");
        let err_light = detection_error(&d_light, &truth, 0.5);
        assert!(err_light < 0.02, "light-noise error {err_light}");

        let heavy = renderer.render_noisy(&truth, 60.0, &mut rng, 0, 0);
        let err_heavy = match detector.detect(&heavy) {
            None => f32::INFINITY, // acceptable: detection lost
            Some(d) => detection_error(&d, &truth, 0.0),
        };
        assert!(
            err_heavy > err_light,
            "heavy noise should be worse: {err_heavy} vs {err_light}"
        );
    }

    #[test]
    fn small_resolution_still_detects() {
        let truth = Pose::default();
        let frame = SceneRenderer::new(96, 72).render(&truth, 0, 0);
        let detected = PoseDetector::new().detect(&frame).unwrap();
        assert!(detected.score > 0.3);
    }

    #[test]
    fn min_score_filters_detections() {
        let truth = Pose::default();
        let frame = render(&truth);
        let strict = PoseDetector::new().with_min_score(0.999);
        // Confidence saturation makes a perfect render pass even 0.999 only
        // if every blob is complete; off-frame joints would fail. Shift the
        // pose half off-screen to lose joints.
        let off = truth.translated(0.45, 0.0);
        let off_frame = render(&off);
        let lenient = PoseDetector::new().with_min_score(0.0);
        let d_off = lenient.detect(&off_frame);
        if let Some(d) = &d_off {
            assert!(d.score < 1.0);
        }
        assert!(strict.detect(&frame).is_some() || lenient.detect(&frame).is_some());
    }

    #[test]
    fn word_detect_and_batch_are_bit_identical_to_scalar_oracle() {
        use videopipe_media::scene::{joint_intensity, JOINT_BAND_HALF_WIDTH};
        // The fused kernel's exactness argument requires every joint band to
        // sit above the body threshold; pin that invariant here so a future
        // retune of the scene constants can't silently break the fused path.
        for joint in Joint::ALL {
            assert!(joint_intensity(joint) - JOINT_BAND_HALF_WIDTH >= BODY_THRESHOLD);
        }

        let detector = PoseDetector::new();
        let renderer = SceneRenderer::new(320, 240);
        let mut rng = StdRng::seed_from_u64(7);
        let clip = MotionClip::new(ExerciseKind::Squat, 2.0);
        let mut frames: Vec<Frame> = [0.0, 0.3, 0.6, 0.9]
            .iter()
            .map(|&phase| renderer.render(&clip.pose_at_phase(phase), 0, 0))
            .collect();
        // Include noisy frames (light and heavy, so joint bands get both
        // diluted and crossed), an empty frame (None), a half off-screen
        // pose, and a non-multiple-of-8 width so the word scan's remainder
        // path runs — every finish() branch is compared.
        frames.push(renderer.render_noisy(&Pose::default(), 8.0, &mut rng, 0, 0));
        frames.push(FrameBuf::new(320, 240).freeze(0, 0));
        frames.push(renderer.render(&Pose::default().translated(0.45, 0.0), 0, 0));
        frames.push(renderer.render_noisy(&Pose::default(), 40.0, &mut rng, 0, 0));
        frames.push(SceneRenderer::new(157, 113).render(&Pose::default(), 0, 0));

        let refs: Vec<&Frame> = frames.iter().collect();
        let batched = detector.detect_batch(&refs);
        assert_eq!(batched.len(), frames.len());
        for (frame, batched) in frames.iter().zip(&batched) {
            let scalar = detector.detect_scalar(frame);
            assert_eq!(batched, &detector.detect(frame));
            assert_eq!(batched, &scalar, "word kernel diverged from oracle");
        }
        assert!(batched[5].is_none(), "empty frame must stay undetected");
        assert!(detector.detect_batch(&[]).is_empty());
    }

    #[test]
    fn joint_lut_matches_joint_for_intensity_everywhere() {
        let detector = PoseDetector::new();
        for v in 0..=255u8 {
            let expected = joint_for_intensity(v).map(|j| j.index() as u8);
            let got = detector.joint_lut[v as usize];
            assert_eq!(got, expected.unwrap_or(NO_JOINT), "intensity {v}");
        }
    }

    #[test]
    fn detection_error_respects_confidence_threshold() {
        let truth = Pose::default();
        let d = PoseDetector::new().detect(&render(&truth)).unwrap();
        // With an impossible threshold no joints qualify → mean of empty = 0.
        assert_eq!(detection_error(&d, &truth, 2.0), 0.0);
    }
}
