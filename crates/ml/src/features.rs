//! Pose-window feature extraction.
//!
//! Paper §4.1.2: "we take a list of 15 consecutive frames … We normalize the
//! coordinates framewise so that (0,0) is located at the average of the left
//! and right hips of the human in that frame."

use videopipe_media::{Pose, JOINT_COUNT};

/// The window length used by the activity recogniser (paper value).
pub const WINDOW_LEN: usize = 15;

/// Feature dimensionality of a full window.
pub const WINDOW_DIM: usize = WINDOW_LEN * JOINT_COUNT * 2;

/// Normalises one pose framewise: hips to the origin.
pub fn normalize_pose(pose: &Pose) -> Pose {
    pose.hip_normalized()
}

/// Flattens a window of poses into a single feature vector, normalising each
/// frame to its own hip centre.
///
/// Returns `None` unless exactly [`WINDOW_LEN`] poses are supplied.
pub fn window_features(window: &[Pose]) -> Option<Vec<f32>> {
    if window.len() != WINDOW_LEN {
        return None;
    }
    let mut out = Vec::with_capacity(WINDOW_DIM);
    for pose in window {
        out.extend(normalize_pose(pose).flatten());
    }
    Some(out)
}

/// A sliding pose window that yields a feature vector once full.
///
/// Modules keep one of these as their encapsulated state; the stateless
/// activity service receives the already-extracted features.
#[derive(Debug, Clone, Default)]
pub struct PoseWindow {
    poses: Vec<Pose>,
}

impl PoseWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        PoseWindow { poses: Vec::new() }
    }

    /// Pushes a pose; once the window holds [`WINDOW_LEN`] poses it returns
    /// the feature vector for the current window (and keeps sliding).
    pub fn push(&mut self, pose: Pose) -> Option<Vec<f32>> {
        self.poses.push(pose);
        if self.poses.len() > WINDOW_LEN {
            self.poses.remove(0);
        }
        if self.poses.len() == WINDOW_LEN {
            window_features(&self.poses)
        } else {
            None
        }
    }

    /// Number of poses currently buffered.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Clears the buffered poses.
    pub fn clear(&mut self) {
        self.poses.clear();
    }

    /// The buffered poses, oldest first.
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }
}

/// Per-frame feature for the rep counter: the hip-normalised flattened pose
/// (34 values). The rep counter clusters these with k-means.
pub fn frame_features(pose: &Pose) -> Vec<f32> {
    normalize_pose(pose).flatten()
}

/// Dimensionality of [`frame_features`].
pub const FRAME_DIM: usize = JOINT_COUNT * 2;

#[cfg(test)]
mod tests {
    use super::*;
    use videopipe_media::motion::ExerciseKind;

    #[test]
    fn window_features_require_exact_length() {
        let poses = vec![Pose::default(); WINDOW_LEN];
        assert_eq!(window_features(&poses).unwrap().len(), WINDOW_DIM);
        assert!(window_features(&poses[..14]).is_none());
        let too_many = vec![Pose::default(); WINDOW_LEN + 1];
        assert!(window_features(&too_many).is_none());
    }

    #[test]
    fn normalisation_removes_translation() {
        let pose = Pose::default();
        let moved = pose.translated(0.3, -0.2);
        let a = window_features(&vec![pose; WINDOW_LEN]).unwrap();
        let b = window_features(&vec![moved; WINDOW_LEN]).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn different_motions_have_different_features() {
        let squat: Vec<Pose> = (0..WINDOW_LEN)
            .map(|i| ExerciseKind::Squat.pose_at_phase(i as f32 / WINDOW_LEN as f32))
            .collect();
        let jack: Vec<Pose> = (0..WINDOW_LEN)
            .map(|i| ExerciseKind::JumpingJack.pose_at_phase(i as f32 / WINDOW_LEN as f32))
            .collect();
        let fa = window_features(&squat).unwrap();
        let fb = window_features(&jack).unwrap();
        let dist = crate::math::distance(&fa, &fb);
        assert!(dist > 0.1, "feature distance {dist}");
    }

    #[test]
    fn sliding_window_emits_after_fill_then_every_push() {
        let mut window = PoseWindow::new();
        for i in 0..WINDOW_LEN - 1 {
            assert!(window.push(Pose::default()).is_none(), "emitted at {i}");
        }
        assert!(window.push(Pose::default()).is_some());
        assert!(window.push(Pose::default()).is_some());
        assert_eq!(window.len(), WINDOW_LEN);
    }

    #[test]
    fn clear_resets_the_window() {
        let mut window = PoseWindow::new();
        for _ in 0..WINDOW_LEN {
            window.push(Pose::default());
        }
        window.clear();
        assert!(window.is_empty());
        assert!(window.push(Pose::default()).is_none());
    }

    #[test]
    fn frame_features_dimension() {
        assert_eq!(frame_features(&Pose::default()).len(), FRAME_DIM);
    }
}
