//! Pose-window feature extraction.
//!
//! Paper §4.1.2: "we take a list of 15 consecutive frames … We normalize the
//! coordinates framewise so that (0,0) is located at the average of the left
//! and right hips of the human in that frame."

use videopipe_media::{Pose, JOINT_COUNT};

/// The window length used by the activity recogniser (paper value).
pub const WINDOW_LEN: usize = 15;

/// Feature dimensionality of a full window.
pub const WINDOW_DIM: usize = WINDOW_LEN * JOINT_COUNT * 2;

/// Normalises one pose framewise: hips to the origin.
pub fn normalize_pose(pose: &Pose) -> Pose {
    pose.hip_normalized()
}

/// Flattens a window of poses into a single feature vector, normalising each
/// frame to its own hip centre.
///
/// Returns `None` unless exactly [`WINDOW_LEN`] poses are supplied.
pub fn window_features(window: &[Pose]) -> Option<Vec<f32>> {
    let mut out = Vec::new();
    window_features_into(window, &mut out).then_some(out)
}

/// Allocation-reusing variant of [`window_features`] for batch callers:
/// clears `out` and fills it with the window's [`WINDOW_DIM`] features.
/// Returns `false` (leaving `out` empty) unless exactly [`WINDOW_LEN`]
/// poses are supplied. One buffer carried across a batch of windows
/// replaces one `Vec` allocation per window (plus the per-pose flatten
/// temporaries the old path paid).
pub fn window_features_into(window: &[Pose], out: &mut Vec<f32>) -> bool {
    out.clear();
    if window.len() != WINDOW_LEN {
        return false;
    }
    out.reserve(WINDOW_DIM);
    for pose in window {
        append_normalized(pose, out);
    }
    true
}

/// Appends a hip-normalised flattened pose to `out` without allocating.
fn append_normalized(pose: &Pose, out: &mut Vec<f32>) {
    let normalized = normalize_pose(pose);
    for kp in normalized.keypoints() {
        out.push(kp.x);
        out.push(kp.y);
    }
}

/// A sliding pose window that yields a feature vector once full.
///
/// Modules keep one of these as their encapsulated state; the stateless
/// activity service receives the already-extracted features.
#[derive(Debug, Clone, Default)]
pub struct PoseWindow {
    poses: Vec<Pose>,
}

impl PoseWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        PoseWindow { poses: Vec::new() }
    }

    /// Pushes a pose; once the window holds [`WINDOW_LEN`] poses it returns
    /// the feature vector for the current window (and keeps sliding).
    pub fn push(&mut self, pose: Pose) -> Option<Vec<f32>> {
        self.poses.push(pose);
        if self.poses.len() > WINDOW_LEN {
            self.poses.remove(0);
        }
        if self.poses.len() == WINDOW_LEN {
            window_features(&self.poses)
        } else {
            None
        }
    }

    /// Number of poses currently buffered.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Clears the buffered poses.
    pub fn clear(&mut self) {
        self.poses.clear();
    }

    /// The buffered poses, oldest first.
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }
}

/// Per-frame feature for the rep counter: the hip-normalised flattened pose
/// (34 values). The rep counter clusters these with k-means.
pub fn frame_features(pose: &Pose) -> Vec<f32> {
    let mut out = Vec::with_capacity(FRAME_DIM);
    frame_features_into(pose, &mut out);
    out
}

/// Allocation-reusing variant of [`frame_features`]: clears `out` and fills
/// it with the pose's [`FRAME_DIM`] features.
pub fn frame_features_into(pose: &Pose, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(FRAME_DIM);
    append_normalized(pose, out);
}

/// Dimensionality of [`frame_features`].
pub const FRAME_DIM: usize = JOINT_COUNT * 2;

#[cfg(test)]
mod tests {
    use super::*;
    use videopipe_media::motion::ExerciseKind;

    #[test]
    fn window_features_require_exact_length() {
        let poses = vec![Pose::default(); WINDOW_LEN];
        assert_eq!(window_features(&poses).unwrap().len(), WINDOW_DIM);
        assert!(window_features(&poses[..14]).is_none());
        let too_many = vec![Pose::default(); WINDOW_LEN + 1];
        assert!(window_features(&too_many).is_none());
    }

    #[test]
    fn normalisation_removes_translation() {
        let pose = Pose::default();
        let moved = pose.translated(0.3, -0.2);
        let a = window_features(&vec![pose; WINDOW_LEN]).unwrap();
        let b = window_features(&vec![moved; WINDOW_LEN]).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn different_motions_have_different_features() {
        let squat: Vec<Pose> = (0..WINDOW_LEN)
            .map(|i| ExerciseKind::Squat.pose_at_phase(i as f32 / WINDOW_LEN as f32))
            .collect();
        let jack: Vec<Pose> = (0..WINDOW_LEN)
            .map(|i| ExerciseKind::JumpingJack.pose_at_phase(i as f32 / WINDOW_LEN as f32))
            .collect();
        let fa = window_features(&squat).unwrap();
        let fb = window_features(&jack).unwrap();
        let dist = crate::math::distance(&fa, &fb);
        assert!(dist > 0.1, "feature distance {dist}");
    }

    #[test]
    fn sliding_window_emits_after_fill_then_every_push() {
        let mut window = PoseWindow::new();
        for i in 0..WINDOW_LEN - 1 {
            assert!(window.push(Pose::default()).is_none(), "emitted at {i}");
        }
        assert!(window.push(Pose::default()).is_some());
        assert!(window.push(Pose::default()).is_some());
        assert_eq!(window.len(), WINDOW_LEN);
    }

    #[test]
    fn clear_resets_the_window() {
        let mut window = PoseWindow::new();
        for _ in 0..WINDOW_LEN {
            window.push(Pose::default());
        }
        window.clear();
        assert!(window.is_empty());
        assert!(window.push(Pose::default()).is_none());
    }

    #[test]
    fn frame_features_dimension() {
        assert_eq!(frame_features(&Pose::default()).len(), FRAME_DIM);
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let windows: Vec<Vec<Pose>> = (0..4)
            .map(|w| {
                (0..WINDOW_LEN)
                    .map(|i| ExerciseKind::Squat.pose_at_phase((w * WINDOW_LEN + i) as f32 / 60.0))
                    .collect()
            })
            .collect();
        // One buffer reused across the whole batch produces exactly what
        // the allocating path produces, window after window.
        let mut buf = Vec::new();
        for window in &windows {
            assert!(window_features_into(window, &mut buf));
            assert_eq!(Some(buf.clone()), window_features(window));
        }
        assert!(!window_features_into(&windows[0][..3], &mut buf));
        assert!(buf.is_empty(), "failed extraction must leave buffer empty");

        let pose = ExerciseKind::JumpingJack.pose_at_phase(0.4);
        frame_features_into(&pose, &mut buf);
        assert_eq!(buf, frame_features(&pose));
    }
}
