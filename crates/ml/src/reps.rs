//! Repetition counting over pose streams.
//!
//! Paper §4.1.3: "We use k-means with k = 2 to classify the frames into a
//! cluster that occurs near the start of the exercise and a cluster that
//! occurs near the end … we require 4 frames to have transitioned to count a
//! state transition … We count a state transition from and back to the
//! initial state as a single rep."
//!
//! The *model* (two centroids plus which cluster is the initial position) is
//! pure data: it can be fitted by the stateless rep-counter service from a
//! calibration window and handed back to the module, which keeps the only
//! mutable state (the debounce counters) — preserving the paper's
//! stateless-service design.

use crate::features::frame_features;
use crate::kmeans::{KMeans, KMeansError, KMeansModel};
use videopipe_media::Pose;

/// Number of consecutive frames that must agree before a cluster transition
/// is committed (paper value).
pub const DEBOUNCE_FRAMES: usize = 4;

/// A fitted rep-counting model: the k = 2 clustering plus the identity of
/// the initial-position cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct RepCounterModel {
    kmeans: KMeansModel,
    initial_cluster: usize,
}

impl RepCounterModel {
    /// Fits the model from a calibration sequence of poses that starts at
    /// the exercise's initial position.
    ///
    /// # Errors
    ///
    /// Returns [`KMeansError`] when the calibration window is too small or
    /// degenerate.
    pub fn fit(calibration: &[Pose]) -> Result<Self, KMeansError> {
        let samples: Vec<Vec<f32>> = calibration.iter().map(frame_features).collect();
        let kmeans = KMeans::new(2).fit(&samples)?;
        // The initial cluster is the one the majority of the first
        // DEBOUNCE_FRAMES frames fall into (robust to a noisy first frame).
        let head = samples.len().min(DEBOUNCE_FRAMES);
        let votes: usize = samples[..head].iter().map(|s| kmeans.predict(s)).sum();
        let initial_cluster = usize::from(votes * 2 > head);
        Ok(RepCounterModel {
            kmeans,
            initial_cluster,
        })
    }

    /// Rebuilds a model from raw parts (wire transfer between module and
    /// service).
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is not a valid 2-cluster set or
    /// `initial_cluster > 1`.
    pub fn from_parts(centroids: Vec<Vec<f32>>, initial_cluster: usize) -> Self {
        assert_eq!(centroids.len(), 2, "rep counter model has k = 2");
        assert!(initial_cluster < 2, "initial cluster must be 0 or 1");
        RepCounterModel {
            kmeans: KMeansModel::from_centroids(centroids),
            initial_cluster,
        }
    }

    /// The two cluster centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        self.kmeans.centroids()
    }

    /// Index (0 or 1) of the initial-position cluster.
    pub fn initial_cluster(&self) -> usize {
        self.initial_cluster
    }

    /// Classifies one pose into cluster 0 or 1. This is the pure
    /// computation the stateless service performs per frame.
    pub fn classify(&self, pose: &Pose) -> usize {
        self.kmeans.predict(&frame_features(pose))
    }
}

/// The online repetition counter (module-side state machine).
#[derive(Debug, Clone)]
pub struct RepCounter {
    model: RepCounterModel,
    debounce: usize,
    /// Committed cluster state.
    state: usize,
    /// Cluster observed by the pending transition.
    candidate: usize,
    /// Consecutive frames agreeing with `candidate`.
    candidate_run: usize,
    /// Completed repetitions.
    reps: u32,
    /// Whether we have left the initial state during the current rep.
    away_from_initial: bool,
}

impl RepCounter {
    /// Creates a counter from a fitted model with the paper's 4-frame
    /// debounce.
    pub fn new(model: RepCounterModel) -> Self {
        let state = model.initial_cluster();
        RepCounter {
            model,
            debounce: DEBOUNCE_FRAMES,
            state,
            candidate: state,
            candidate_run: 0,
            reps: 0,
            away_from_initial: false,
        }
    }

    /// Overrides the debounce length (ablation experiments).
    pub fn with_debounce(mut self, frames: usize) -> Self {
        self.debounce = frames.max(1);
        self
    }

    /// The fitted model.
    pub fn model(&self) -> &RepCounterModel {
        &self.model
    }

    /// Completed repetitions so far.
    pub fn reps(&self) -> u32 {
        self.reps
    }

    /// Feeds one pose; returns `Some(new_total)` when a repetition
    /// completes on this frame.
    pub fn push(&mut self, pose: &Pose) -> Option<u32> {
        let cluster = self.model.classify(pose);
        self.push_cluster(cluster)
    }

    /// Feeds a pre-classified cluster id (the module uses this when the
    /// classification came back from the stateless service).
    pub fn push_cluster(&mut self, cluster: usize) -> Option<u32> {
        if cluster == self.state {
            // Observation agrees with committed state; reset any pending
            // transition (this is what suppresses alternating 0/1 chatter
            // near the cluster boundary).
            self.candidate_run = 0;
            return None;
        }
        if cluster == self.candidate && self.candidate_run > 0 {
            self.candidate_run += 1;
        } else {
            self.candidate = cluster;
            self.candidate_run = 1;
        }
        if self.candidate_run < self.debounce {
            return None;
        }
        // Commit the transition.
        self.state = self.candidate;
        self.candidate_run = 0;
        if self.state == self.model.initial_cluster() {
            if self.away_from_initial {
                self.away_from_initial = false;
                self.reps += 1;
                return Some(self.reps);
            }
        } else {
            self.away_from_initial = true;
        }
        None
    }

    /// The committed cluster state the machine is currently in.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Whether the current (incomplete) rep has left the initial state.
    pub fn away_from_initial(&self) -> bool {
        self.away_from_initial
    }

    /// Rebuilds a counter from previously-saved progress — the complement
    /// of [`RepCounter::state`], [`RepCounter::away_from_initial`] and
    /// [`RepCounter::reps`], used by checkpoint restore after a failover.
    /// The transient debounce run is deliberately not part of the saved
    /// state: losing up to `debounce − 1` frames of a pending transition
    /// resumes the count *near* where it died, which is the contract.
    ///
    /// # Panics
    ///
    /// Panics unless `state < 2`.
    pub fn resume(
        model: RepCounterModel,
        state: usize,
        away_from_initial: bool,
        reps: u32,
    ) -> Self {
        assert!(state < 2, "cluster state must be 0 or 1");
        RepCounter {
            model,
            debounce: DEBOUNCE_FRAMES,
            state,
            candidate: state,
            candidate_run: 0,
            reps,
            away_from_initial,
        }
    }

    /// Resets the rep count and state machine (model is kept).
    pub fn reset(&mut self) {
        self.state = self.model.initial_cluster();
        self.candidate = self.state;
        self.candidate_run = 0;
        self.reps = 0;
        self.away_from_initial = false;
    }
}

/// Counts the reps in a complete sequence: fits the model on the first
/// `calibration_frames` poses, then streams the rest. Returns the final
/// count. Used by the accuracy evaluation (§4.1.3: 83.3%).
pub fn count_sequence(poses: &[Pose], calibration_frames: usize) -> Result<u32, KMeansError> {
    let calib = &poses[..calibration_frames.min(poses.len())];
    let model = RepCounterModel::fit(calib)?;
    let mut counter = RepCounter::new(model);
    for pose in poses {
        counter.push(pose);
    }
    Ok(counter.reps())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::generate_rep_sequence;
    use videopipe_media::motion::ExerciseKind;

    /// One full squat cycle at 15 fps spans 30 frames (period 2 s).
    fn squat_poses(reps: u32, jitter: f32, seed: u64) -> Vec<Pose> {
        generate_rep_sequence(ExerciseKind::Squat, reps, 15.0, jitter, seed).poses
    }

    #[test]
    fn counts_clean_squats_exactly() {
        let poses = squat_poses(5, 0.0, 1);
        // Calibrate on one full cycle so both clusters are observed.
        let count = count_sequence(&poses, 30).unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn counts_noisy_squats_approximately() {
        let mut correct = 0;
        let trials = 10;
        for seed in 0..trials {
            let poses = squat_poses(6, 0.008, seed);
            let count = count_sequence(&poses, 30).unwrap();
            if count == 6 {
                correct += 1;
            }
            assert!((4..=8).contains(&count), "count {count} way off");
        }
        assert!(correct >= 6, "only {correct}/{trials} exact");
    }

    #[test]
    fn debounce_suppresses_boundary_chatter() {
        let model = RepCounterModel::from_parts(vec![vec![0.0; 34], vec![1.0; 34]], 0);
        let mut counter = RepCounter::new(model);
        // Alternating 0/1 observations must never commit a transition.
        for _ in 0..50 {
            assert_eq!(counter.push_cluster(1), None);
            assert_eq!(counter.push_cluster(0), None);
        }
        assert_eq!(counter.reps(), 0);
    }

    #[test]
    fn full_cycle_counts_one_rep() {
        let model = RepCounterModel::from_parts(vec![vec![0.0; 34], vec![1.0; 34]], 0);
        let mut counter = RepCounter::new(model);
        // 4 frames away, then 4 frames back → one rep on the final commit.
        for _ in 0..4 {
            assert_eq!(counter.push_cluster(1), None);
        }
        let mut result = None;
        for _ in 0..4 {
            result = counter.push_cluster(0);
        }
        assert_eq!(result, Some(1));
        assert_eq!(counter.reps(), 1);
    }

    #[test]
    fn half_cycle_does_not_count() {
        let model = RepCounterModel::from_parts(vec![vec![0.0; 34], vec![1.0; 34]], 0);
        let mut counter = RepCounter::new(model);
        for _ in 0..10 {
            counter.push_cluster(1);
        }
        assert_eq!(counter.reps(), 0);
    }

    #[test]
    fn reset_clears_progress() {
        let model = RepCounterModel::from_parts(vec![vec![0.0; 34], vec![1.0; 34]], 0);
        let mut counter = RepCounter::new(model);
        for _ in 0..4 {
            counter.push_cluster(1);
        }
        for _ in 0..4 {
            counter.push_cluster(0);
        }
        assert_eq!(counter.reps(), 1);
        counter.reset();
        assert_eq!(counter.reps(), 0);
        // And counting still works after reset.
        for _ in 0..4 {
            counter.push_cluster(1);
        }
        for _ in 0..4 {
            counter.push_cluster(0);
        }
        assert_eq!(counter.reps(), 1);
    }

    #[test]
    fn custom_debounce_length() {
        let model = RepCounterModel::from_parts(vec![vec![0.0; 34], vec![1.0; 34]], 0);
        let mut counter = RepCounter::new(model).with_debounce(2);
        counter.push_cluster(1);
        assert_eq!(counter.push_cluster(1), None); // committed away
        counter.push_cluster(0);
        assert_eq!(counter.push_cluster(0), Some(1));
    }

    #[test]
    fn model_fit_identifies_initial_cluster() {
        let poses = squat_poses(3, 0.0, 2);
        let model = RepCounterModel::fit(&poses[..30]).unwrap();
        // The first frames are the standing position by construction.
        assert_eq!(model.classify(&poses[0]), model.initial_cluster());
        // Mid-rep (frame 15 of 30) is the squat bottom: the other cluster.
        assert_ne!(model.classify(&poses[15]), model.initial_cluster());
    }

    #[test]
    fn fit_rejects_tiny_calibration() {
        assert!(RepCounterModel::fit(&[Pose::default()]).is_err());
    }

    #[test]
    fn from_parts_validates() {
        let model = RepCounterModel::from_parts(vec![vec![0.0], vec![1.0]], 1);
        assert_eq!(model.initial_cluster(), 1);
        assert_eq!(model.centroids().len(), 2);
    }

    #[test]
    #[should_panic(expected = "k = 2")]
    fn from_parts_rejects_wrong_k() {
        let _ = RepCounterModel::from_parts(vec![vec![0.0]], 0);
    }

    #[test]
    fn resume_continues_mid_exercise_progress() {
        let model = RepCounterModel::from_parts(vec![vec![0.0; 34], vec![1.0; 34]], 0);
        let mut counter = RepCounter::new(model.clone());
        for _ in 0..4 {
            counter.push_cluster(1);
        }
        for _ in 0..4 {
            counter.push_cluster(0);
        }
        // One rep done, and we are 4 frames into the next one (away).
        for _ in 0..4 {
            counter.push_cluster(1);
        }
        assert_eq!(counter.reps(), 1);
        assert!(counter.away_from_initial());

        let mut resumed = RepCounter::resume(
            model,
            counter.state(),
            counter.away_from_initial(),
            counter.reps(),
        );
        assert_eq!(resumed.reps(), 1);
        // Completing the in-progress rep counts from the restored state.
        let mut result = None;
        for _ in 0..4 {
            result = resumed.push_cluster(0);
        }
        assert_eq!(result, Some(2));
    }

    #[test]
    fn works_for_other_exercises() {
        for kind in [ExerciseKind::JumpingJack, ExerciseKind::ArmRaise] {
            let seq = generate_rep_sequence(kind, 4, 15.0, 0.0, 9);
            let count = count_sequence(&seq.poses, 30).unwrap();
            assert_eq!(count, 4, "{kind:?}");
        }
    }
}
