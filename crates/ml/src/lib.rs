//! From-scratch machine-learning substrates for VideoPipe.
//!
//! The paper's stateless services wrap "computationally expensive tasks such
//! as object detection, pose detection and image classification". No ML
//! inference crates are assumed: everything here is implemented directly on
//! the raster frames and pose streams from `videopipe-media`.
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ initialisation. Used by
//!   the rep counter (paper §4.1.3: *k-means with k = 2*).
//! * [`knn`] — brute-force and KD-tree k-nearest-neighbour classification.
//!   Used by the activity recogniser (paper §4.1.2: *nearest neighbor on
//!   pose sequences*).
//! * [`pose`] — the 2D pose detector: scans a frame for intensity-coded
//!   joint blobs and recovers the 17 keypoints plus a bounding box.
//! * [`features`] — pose-window feature extraction (15 consecutive frames,
//!   hip-centred normalisation, exactly as §4.1.2 describes).
//! * [`activity`] — the activity recogniser built on [`knn`].
//! * [`reps`] — the repetition counter built on [`kmeans`] with the paper's
//!   4-frame debounce rule.
//! * [`objects`] — connected-component object detection over intensity
//!   thresholds.
//! * [`faces`] — a head-disc face detector (the synthetic analogue of a
//!   Haar-style detector).
//! * [`classify`] — a nearest-centroid image classifier on downsampled
//!   intensity features.
//! * [`track`] — greedy IoU multi-object tracking.
//! * [`fall`] — fall detection over pose streams (paper §4.3).
//! * [`dataset`] — synthetic labelled dataset generation used to train and
//!   evaluate the classifiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod classify;
pub mod dataset;
pub mod faces;
pub mod fall;
pub mod features;
pub mod kmeans;
pub mod knn;
pub mod math;
pub mod objects;
pub mod pose;
pub mod reps;
pub mod track;

pub use activity::{ActivityModel, ActivityRecognizer};
pub use kmeans::{KMeans, KMeansModel};
pub use knn::KnnClassifier;
pub use pose::{DetectedPose, PoseDetector};
pub use reps::{RepCounter, RepCounterModel};
