//! Lloyd's k-means with k-means++ initialisation.
//!
//! The rep counter (paper §4.1.3) uses *k-means with k = 2* to split pose
//! frames into a cluster near the start of the exercise and a cluster near
//! the end. This module is a general fixed-`k` implementation; the rep
//! counter instantiates it with `k = 2`.

use crate::math::{argmin, distances_block_into, squared_distance, PointBlock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Errors from k-means training.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KMeansError {
    /// Fewer samples than clusters.
    TooFewSamples {
        /// Samples provided.
        samples: usize,
        /// Clusters requested.
        k: usize,
    },
    /// Samples have inconsistent dimensionality.
    DimensionMismatch {
        /// Dimension of the first sample.
        expected: usize,
        /// Dimension of the offending sample.
        actual: usize,
    },
    /// `k` was zero.
    ZeroK,
    /// A sample contained a non-finite value.
    NonFiniteSample,
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::TooFewSamples { samples, k } => {
                write!(f, "k-means needs at least {k} samples, got {samples}")
            }
            KMeansError::DimensionMismatch { expected, actual } => {
                write!(f, "sample dimension {actual} does not match {expected}")
            }
            KMeansError::ZeroK => write!(f, "k must be at least 1"),
            KMeansError::NonFiniteSample => write!(f, "samples must be finite"),
        }
    }
}

impl Error for KMeansError {}

/// k-means trainer configuration.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    seed: u64,
}

impl KMeans {
    /// Creates a trainer for `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (use [`KMeans::fit`]'s error path for dynamic `k`
    /// by constructing with `new_checked`-style call sites).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        KMeans {
            k,
            max_iters: 100,
            seed: 0x5EED,
        }
    }

    /// Sets the iteration cap (default 100).
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters.max(1);
        self
    }

    /// Sets the RNG seed for k-means++ initialisation (default fixed, so
    /// training is deterministic).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Trains on `samples` (each an equal-length feature vector).
    ///
    /// # Errors
    ///
    /// Returns [`KMeansError`] when samples are fewer than `k`, dimensions
    /// are inconsistent, or any value is non-finite.
    pub fn fit(&self, samples: &[Vec<f32>]) -> Result<KMeansModel, KMeansError> {
        if samples.len() < self.k {
            return Err(KMeansError::TooFewSamples {
                samples: samples.len(),
                k: self.k,
            });
        }
        let dim = samples[0].len();
        for s in samples {
            if s.len() != dim {
                return Err(KMeansError::DimensionMismatch {
                    expected: dim,
                    actual: s.len(),
                });
            }
            if s.iter().any(|v| !v.is_finite()) {
                return Err(KMeansError::NonFiniteSample);
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centroids = kmeans_pp_init(samples, self.k, &mut rng);
        let mut assignments = vec![0usize; samples.len()];
        let mut dists: Vec<f32> = Vec::new();
        let mut best_dist = vec![0.0f32; samples.len()];
        let mut best_centroid = vec![0usize; samples.len()];
        // The samples never change across iterations, so their column-major
        // copy and squared norms are frozen once; each assignment pass then
        // costs only the row-parallel distance walk with the centroids as
        // queries (k wide rows of samples.len() contiguous floats each).
        let block = PointBlock::new(samples);

        for _ in 0..self.max_iters {
            // Assignment step: one fused k × n distance matrix, then a
            // column-wise running min so ties keep the lower centroid index
            // (matching `argmin`). Both buffers are reused across iterations.
            distances_block_into(&centroids, &block, &mut dists);
            let mut changed = false;
            let (first_row, rest) = dists.split_at(samples.len());
            best_dist.copy_from_slice(first_row);
            best_centroid.fill(0);
            for (c, row) in rest.chunks_exact(samples.len()).enumerate() {
                for ((b, a), &d) in best_dist.iter_mut().zip(&mut best_centroid).zip(row) {
                    if d < *b {
                        *b = d;
                        *a = c + 1;
                    }
                }
            }
            for (slot, &best) in assignments.iter_mut().zip(&best_centroid) {
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0f64; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (s, &a) in samples.iter().zip(assignments.iter()) {
                counts[a] += 1;
                for (acc, v) in sums[a].iter_mut().zip(s.iter()) {
                    *acc += f64::from(*v);
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
                if count > 0 {
                    for (cv, sv) in c.iter_mut().zip(sum.iter()) {
                        *cv = (*sv / count as f64) as f32;
                    }
                }
                // Empty clusters keep their previous centroid.
            }
            if !changed {
                break;
            }
        }

        Ok(KMeansModel { centroids })
    }
}

/// k-means++ seeding: first centroid uniform, the rest proportional to the
/// squared distance to the nearest already-chosen centroid.
fn kmeans_pp_init(samples: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(samples[rng.gen_range(0..samples.len())].clone());
    while centroids.len() < k {
        let weights: Vec<f32> = samples
            .iter()
            .map(|s| {
                centroids
                    .iter()
                    .map(|c| squared_distance(s, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        let total: f32 = weights.iter().sum();
        if total <= 0.0 {
            // All remaining samples coincide with chosen centroids; duplicate
            // an arbitrary sample (degenerate but valid).
            centroids.push(samples[rng.gen_range(0..samples.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f32>() * total;
        let mut chosen = samples.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if target <= *w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(samples[chosen].clone());
    }
    centroids
}

/// A trained k-means model: the final centroids.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    centroids: Vec<Vec<f32>>,
}

impl KMeansModel {
    /// Builds a model directly from centroids (used by the wire codec when a
    /// trained model is shipped to a stateless service).
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty or dimensions are inconsistent.
    pub fn from_centroids(centroids: Vec<Vec<f32>>) -> Self {
        assert!(!centroids.is_empty(), "model needs at least one centroid");
        let dim = centroids[0].len();
        assert!(
            centroids.iter().all(|c| c.len() == dim),
            "centroid dimensions inconsistent"
        );
        KMeansModel { centroids }
    }

    /// The cluster centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.centroids[0].len()
    }

    /// Index of the nearest centroid to `sample`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `sample` has the wrong dimension.
    pub fn predict(&self, sample: &[f32]) -> usize {
        let dists: Vec<f32> = self
            .centroids
            .iter()
            .map(|c| squared_distance(sample, c))
            .collect();
        argmin(&dists).expect("model has at least one centroid")
    }

    /// Sum of squared distances of each sample to its assigned centroid.
    pub fn inertia(&self, samples: &[Vec<f32>]) -> f32 {
        samples
            .iter()
            .map(|s| {
                self.centroids
                    .iter()
                    .map(|c| squared_distance(s, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for i in 0..20 {
            let j = i as f32 * 0.01;
            out.push(vec![0.0 + j, 0.0 - j]);
            out.push(vec![10.0 - j, 10.0 + j]);
        }
        out
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let model = KMeans::new(2).fit(&data).unwrap();
        let a = model.predict(&[0.05, 0.05]);
        let b = model.predict(&[9.9, 9.9]);
        assert_ne!(a, b);
        // All points of a blob map to the same cluster.
        for i in 0..20 {
            assert_eq!(model.predict(&data[2 * i]), a);
            assert_eq!(model.predict(&data[2 * i + 1]), b);
        }
    }

    #[test]
    fn centroids_near_blob_centers() {
        let model = KMeans::new(2).fit(&two_blobs()).unwrap();
        let mut cs: Vec<_> = model.centroids().to_vec();
        cs.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!(cs[0][0] < 1.0 && cs[1][0] > 9.0);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = two_blobs();
        let m1 = KMeans::new(1).fit(&data).unwrap();
        let m2 = KMeans::new(2).fit(&data).unwrap();
        assert!(m2.inertia(&data) < m1.inertia(&data) * 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = two_blobs();
        let a = KMeans::new(2).with_seed(9).fit(&data).unwrap();
        let b = KMeans::new(2).with_seed(9).fit(&data).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            KMeans::new(3).fit(&[vec![0.0], vec![1.0]]),
            Err(KMeansError::TooFewSamples { .. })
        ));
        assert!(matches!(
            KMeans::new(1).fit(&[vec![0.0, 1.0], vec![1.0]]),
            Err(KMeansError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            KMeans::new(1).fit(&[vec![f32::NAN]]),
            Err(KMeansError::NonFiniteSample)
        ));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        let _ = KMeans::new(0);
    }

    #[test]
    fn handles_duplicate_samples() {
        // More clusters than distinct points: must not loop or panic.
        let data = vec![vec![1.0, 1.0]; 10];
        let model = KMeans::new(3).fit(&data).unwrap();
        assert_eq!(model.k(), 3);
        assert_eq!(model.predict(&[1.0, 1.0]), model.predict(&[1.0, 1.0]));
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        // Invariant: predict returns the argmin distance centroid.
        let data = two_blobs();
        let model = KMeans::new(2).fit(&data).unwrap();
        for s in &data {
            let p = model.predict(s);
            let dp = squared_distance(s, &model.centroids()[p]);
            for c in model.centroids() {
                assert!(dp <= squared_distance(s, c) + 1e-6);
            }
        }
    }

    #[test]
    fn from_centroids_roundtrip() {
        let model = KMeansModel::from_centroids(vec![vec![0.0], vec![5.0]]);
        assert_eq!(model.k(), 2);
        assert_eq!(model.dim(), 1);
        assert_eq!(model.predict(&[1.0]), 0);
        assert_eq!(model.predict(&[4.0]), 1);
    }

    #[test]
    #[should_panic(expected = "at least one centroid")]
    fn from_centroids_empty_panics() {
        let _ = KMeansModel::from_centroids(vec![]);
    }
}
