//! Nearest-centroid image classification.
//!
//! The paper's image-classification service, in miniature: frames are
//! downsampled to an 8×8 intensity grid (mean pooling), and classes are
//! represented by the centroid of their training features. This is the
//! classic "tiny-CNN substitute" that still has real failure modes (noise,
//! unseen poses) while being fully self-contained.

use crate::math::{argmin, axpy, distance, FORCE_SCALAR};
use std::error::Error;
use std::fmt;
use videopipe_media::Frame;

/// Side length of the pooled feature grid.
pub const GRID: usize = 8;
/// Feature dimensionality.
pub const FEATURE_DIM: usize = GRID * GRID;

/// Errors from classifier training.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClassifyError {
    /// No training examples were provided.
    EmptyTrainingSet,
    /// A class had no examples.
    EmptyClass(String),
}

impl fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassifyError::EmptyTrainingSet => write!(f, "training set is empty"),
            ClassifyError::EmptyClass(name) => write!(f, "class {name:?} has no examples"),
        }
    }
}

impl Error for ClassifyError {}

/// Extracts the pooled 8×8 mean-intensity feature vector of a frame.
pub fn image_features(frame: &Frame) -> Vec<f32> {
    let mut scratch = FeatureScratch::default();
    let mut out = Vec::new();
    image_features_into(frame, &mut scratch, &mut out);
    out
}

/// Reusable accumulators for [`image_features_into`]: the batch paths carry
/// one of these across a whole batch instead of allocating per frame.
#[derive(Debug, Default)]
pub struct FeatureScratch {
    sums: Vec<u64>,
    counts: Vec<u64>,
}

/// Writes the pooled feature vector of `frame` into `out` (cleared first),
/// accumulating through `scratch`. Output is identical to
/// [`image_features`]; the difference is purely allocation reuse.
///
/// This is the word-wide kernel: the per-pixel `gx = x·GRID/width` cell
/// arithmetic is hoisted into precomputed grid-column boundaries (cell `g`
/// covers columns `[⌈g·W/G⌉, ⌈(g+1)·W/G⌉)`, exactly the columns the
/// per-pixel mapping assigns it), so each cell's contribution per row is
/// one contiguous byte-range sum, reduced 8 bytes per `u64` load by SWAR
/// pair-summing. All accumulation is exact integer arithmetic, so the
/// result is **bit-identical** to [`image_features_into_scalar`].
pub fn image_features_into(frame: &Frame, scratch: &mut FeatureScratch, out: &mut Vec<f32>) {
    if FORCE_SCALAR {
        return image_features_into_scalar(frame, scratch, out);
    }
    let width = frame.width() as usize;
    let height = frame.height() as usize;
    let pixels = frame.pixels();
    scratch.sums.clear();
    scratch.sums.resize(FEATURE_DIM, 0);
    scratch.counts.clear();
    scratch.counts.resize(FEATURE_DIM, 0);
    let mut col_start = [0usize; GRID + 1];
    for (g, s) in col_start.iter_mut().enumerate() {
        *s = (g * width).div_ceil(GRID);
    }
    for y in 0..height {
        let gy = y * GRID / height;
        let row = &pixels[y * width..(y + 1) * width];
        for g in 0..GRID {
            let (start, end) = (col_start[g], col_start[g + 1]);
            if start < end {
                let cell = gy * GRID + g;
                scratch.sums[cell] += sum_bytes(&row[start..end]);
                scratch.counts[cell] += (end - start) as u64;
            }
        }
    }
    write_features(scratch, out);
}

/// Scalar reference oracle for [`image_features_into`]: the pre-kernel
/// per-pixel cell-index loop.
pub fn image_features_into_scalar(frame: &Frame, scratch: &mut FeatureScratch, out: &mut Vec<f32>) {
    let width = frame.width() as usize;
    let height = frame.height() as usize;
    let pixels = frame.pixels();
    scratch.sums.clear();
    scratch.sums.resize(FEATURE_DIM, 0);
    scratch.counts.clear();
    scratch.counts.resize(FEATURE_DIM, 0);
    for y in 0..height {
        let gy = y * GRID / height;
        let row = &pixels[y * width..(y + 1) * width];
        for (x, &p) in row.iter().enumerate() {
            let gx = x * GRID / width;
            let cell = gy * GRID + gx;
            scratch.sums[cell] += u64::from(p);
            scratch.counts[cell] += 1;
        }
    }
    write_features(scratch, out);
}

/// Sum of a byte slice, 8 bytes per `u64` load: SWAR pair-sum reduction
/// (u8 lanes → u16 → u32 → one u64), exact for any input.
fn sum_bytes(bytes: &[u8]) -> u64 {
    const PAIR: u64 = 0x00FF_00FF_00FF_00FF;
    const QUAD: u64 = 0x0000_FFFF_0000_FFFF;
    let mut chunks = bytes.chunks_exact(8);
    let mut total = 0u64;
    for chunk in chunks.by_ref() {
        let w = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        let pairs = (w & PAIR) + ((w >> 8) & PAIR);
        let quads = (pairs & QUAD) + ((pairs >> 16) & QUAD);
        total += (quads & 0xFFFF_FFFF) + (quads >> 32);
    }
    total
        + chunks
            .remainder()
            .iter()
            .map(|&b| u64::from(b))
            .sum::<u64>()
}

/// Cell sums/counts → pooled mean features (shared by both kernels).
fn write_features(scratch: &FeatureScratch, out: &mut Vec<f32>) {
    out.clear();
    out.extend(
        scratch
            .sums
            .iter()
            .zip(scratch.counts.iter())
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s as f32 / c as f32 }),
    );
}

/// A nearest-centroid image classifier.
#[derive(Debug, Clone)]
pub struct ImageClassifier {
    labels: Vec<String>,
    centroids: Vec<Vec<f32>>,
}

impl ImageClassifier {
    /// Trains from `(frame, label)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError::EmptyTrainingSet`] when no examples are
    /// given.
    pub fn train<'a, I>(examples: I) -> Result<Self, ClassifyError>
    where
        I: IntoIterator<Item = (&'a Frame, &'a str)>,
    {
        use std::collections::BTreeMap;
        let mut sums: BTreeMap<String, (Vec<f32>, usize)> = BTreeMap::new();
        let mut scratch = FeatureScratch::default();
        let mut features = Vec::with_capacity(FEATURE_DIM);
        for (frame, label) in examples {
            image_features_into(frame, &mut scratch, &mut features);
            let entry = sums
                .entry(label.to_string())
                .or_insert_with(|| (vec![0.0; FEATURE_DIM], 0));
            axpy(1.0, &features, &mut entry.0);
            entry.1 += 1;
        }
        if sums.is_empty() {
            return Err(ClassifyError::EmptyTrainingSet);
        }
        let mut labels = Vec::with_capacity(sums.len());
        let mut centroids = Vec::with_capacity(sums.len());
        for (label, (sum, n)) in sums {
            labels.push(label);
            centroids.push(sum.into_iter().map(|s| s / n as f32).collect());
        }
        Ok(ImageClassifier { labels, centroids })
    }

    /// The known class labels (sorted).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Classifies a frame, returning `(label, distance_to_centroid)`.
    pub fn classify(&self, frame: &Frame) -> (&str, f32) {
        let features = image_features(frame);
        let dists: Vec<f32> = self
            .centroids
            .iter()
            .map(|c| distance(&features, c))
            .collect();
        let best = argmin(&dists).expect("trained classifier has classes");
        (&self.labels[best], dists[best])
    }

    /// Classifies a batch of frames, one `(label, distance)` per frame in
    /// order. Matches [`ImageClassifier::classify`] exactly; the batch path
    /// reuses a single feature/scratch/distance buffer set across the whole
    /// batch instead of allocating three vectors per frame.
    pub fn classify_batch(&self, frames: &[&Frame]) -> Vec<(&str, f32)> {
        let mut scratch = FeatureScratch::default();
        let mut features = Vec::with_capacity(FEATURE_DIM);
        let mut dists = Vec::with_capacity(self.centroids.len());
        frames
            .iter()
            .map(|frame| {
                image_features_into(frame, &mut scratch, &mut features);
                dists.clear();
                dists.extend(self.centroids.iter().map(|c| distance(&features, c)));
                let best = argmin(&dists).expect("trained classifier has classes");
                (self.labels[best].as_str(), dists[best])
            })
            .collect()
    }

    /// Accuracy over labelled frames.
    pub fn accuracy<'a, I>(&self, examples: I) -> f32
    where
        I: IntoIterator<Item = (&'a Frame, &'a str)>,
    {
        let mut total = 0usize;
        let mut correct = 0usize;
        for (frame, label) in examples {
            total += 1;
            if self.classify(frame).0 == label {
                correct += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videopipe_media::motion::ExerciseKind;
    use videopipe_media::scene::SceneRenderer;

    fn render(kind: ExerciseKind, phase: f32) -> Frame {
        SceneRenderer::new(160, 120).render(&kind.pose_at_phase(phase), 0, 0)
    }

    #[test]
    fn feature_dimensions() {
        let frame = render(ExerciseKind::Idle, 0.0);
        assert_eq!(image_features(&frame).len(), FEATURE_DIM);
    }

    #[test]
    fn distinguishes_standing_from_plank() {
        let mut examples = Vec::new();
        for i in 0..8 {
            let phase = i as f32 / 8.0;
            examples.push((render(ExerciseKind::Idle, phase), "standing"));
            examples.push((render(ExerciseKind::Pushup, phase), "plank"));
        }
        let refs: Vec<(&Frame, &str)> = examples.iter().map(|(f, l)| (f, *l)).collect();
        let clf = ImageClassifier::train(refs.iter().copied()).unwrap();
        assert_eq!(clf.labels(), &["plank", "standing"]);

        let test_stand = render(ExerciseKind::Idle, 0.33);
        let test_plank = render(ExerciseKind::Pushup, 0.61);
        assert_eq!(clf.classify(&test_stand).0, "standing");
        assert_eq!(clf.classify(&test_plank).0, "plank");
        assert!(clf.accuracy(refs.iter().copied()) > 0.9);
    }

    #[test]
    fn batch_paths_match_single_frame_paths() {
        let mut examples = Vec::new();
        for i in 0..6 {
            let phase = i as f32 / 6.0;
            examples.push((render(ExerciseKind::Idle, phase), "standing"));
            examples.push((render(ExerciseKind::Pushup, phase), "plank"));
        }
        let refs: Vec<(&Frame, &str)> = examples.iter().map(|(f, l)| (f, *l)).collect();
        let clf = ImageClassifier::train(refs.iter().copied()).unwrap();

        let frames: Vec<Frame> = (0..5)
            .map(|i| render(ExerciseKind::Squat, i as f32 / 5.0))
            .collect();
        let frame_refs: Vec<&Frame> = frames.iter().collect();
        // Feature extraction through reused scratch is identical.
        let mut scratch = FeatureScratch::default();
        let mut out = Vec::new();
        for frame in &frames {
            image_features_into(frame, &mut scratch, &mut out);
            assert_eq!(out, image_features(frame));
        }
        // And so is classification.
        let batched = clf.classify_batch(&frame_refs);
        assert_eq!(batched.len(), frames.len());
        for (frame, batched) in frames.iter().zip(batched) {
            assert_eq!(batched, clf.classify(frame));
        }
        assert!(clf.classify_batch(&[]).is_empty());
    }

    #[test]
    fn word_features_are_bit_identical_to_scalar_oracle() {
        // Sizes straddle word and grid boundaries (width < GRID included,
        // where some cells own no columns at all).
        let sizes = [(160, 120), (157, 113), (64, 64), (8, 8), (5, 3), (23, 17)];
        let mut scratch = FeatureScratch::default();
        let mut fast = Vec::new();
        let mut oracle = Vec::new();
        for (w, h) in sizes {
            let frame =
                SceneRenderer::new(w, h).render(&ExerciseKind::Squat.pose_at_phase(0.4), 0, 0);
            image_features_into(&frame, &mut scratch, &mut fast);
            image_features_into_scalar(&frame, &mut scratch, &mut oracle);
            assert_eq!(fast, oracle, "{w}x{h} features diverged");
        }
    }

    #[test]
    fn sum_bytes_is_exact() {
        let mut bytes = Vec::new();
        for n in [0usize, 1, 7, 8, 9, 255, 256, 1000] {
            bytes.clear();
            bytes.extend((0..n).map(|i| (i * 37 % 256) as u8));
            let expected: u64 = bytes.iter().map(|&b| u64::from(b)).sum();
            assert_eq!(sum_bytes(&bytes), expected, "len {n}");
        }
        assert_eq!(sum_bytes(&[255; 64]), 255 * 64);
    }

    #[test]
    fn empty_training_set_errors() {
        let result = ImageClassifier::train(std::iter::empty());
        assert!(matches!(result, Err(ClassifyError::EmptyTrainingSet)));
    }

    #[test]
    fn classify_reports_distance() {
        let frame = render(ExerciseKind::Idle, 0.0);
        let clf = ImageClassifier::train([(&frame, "only")]).unwrap();
        let (label, dist) = clf.classify(&frame);
        assert_eq!(label, "only");
        assert!(dist < 1e-3, "self distance {dist}");
    }
}
