//! Greedy IoU multi-object tracking.
//!
//! The paper lists "object tracking" among the stateless services; tracking
//! state (the track table) lives in the calling module, while the pure
//! association step (`associate`) is what the service computes.

use crate::math::iou;

/// A box being tracked: `(min_x, min_y, max_x, max_y)` in scene coordinates.
pub type Box2 = (f32, f32, f32, f32);

/// A live track.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Stable track identifier.
    pub id: u64,
    /// Most recent box.
    pub bbox: Box2,
    /// Frames since the track was last matched.
    pub age: u32,
    /// Total frames the track has been matched.
    pub hits: u32,
}

/// Result of associating detections to existing tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct Association {
    /// `matches[i] = (track_index, detection_index)` pairs.
    pub matches: Vec<(usize, usize)>,
    /// Detection indices that start new tracks.
    pub unmatched_detections: Vec<usize>,
    /// Track indices that were not matched this frame.
    pub unmatched_tracks: Vec<usize>,
}

/// Greedy IoU association: repeatedly match the highest-IoU (track,
/// detection) pair above `min_iou`. Pure function — the stateless service
/// kernel.
pub fn associate(tracks: &[Box2], detections: &[Box2], min_iou: f32) -> Association {
    let mut pairs: Vec<(f32, usize, usize)> = Vec::new();
    for (t, tb) in tracks.iter().enumerate() {
        for (d, db) in detections.iter().enumerate() {
            let score = iou(*tb, *db);
            if score >= min_iou {
                pairs.push((score, t, d));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut track_used = vec![false; tracks.len()];
    let mut det_used = vec![false; detections.len()];
    let mut matches = Vec::new();
    for (_, t, d) in pairs {
        if !track_used[t] && !det_used[d] {
            track_used[t] = true;
            det_used[d] = true;
            matches.push((t, d));
        }
    }
    Association {
        matches,
        unmatched_detections: (0..detections.len()).filter(|&d| !det_used[d]).collect(),
        unmatched_tracks: (0..tracks.len()).filter(|&t| !track_used[t]).collect(),
    }
}

/// The stateful tracker kept by a module.
#[derive(Debug, Clone)]
pub struct IouTracker {
    tracks: Vec<Track>,
    next_id: u64,
    min_iou: f32,
    max_age: u32,
}

impl IouTracker {
    /// Creates a tracker with the given IoU gate and track retirement age.
    pub fn new(min_iou: f32, max_age: u32) -> Self {
        IouTracker {
            tracks: Vec::new(),
            next_id: 1,
            min_iou,
            max_age,
        }
    }

    /// Live tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Feeds one frame of detections; returns the ids assigned to each
    /// detection (in input order).
    pub fn update(&mut self, detections: &[Box2]) -> Vec<u64> {
        let boxes: Vec<Box2> = self.tracks.iter().map(|t| t.bbox).collect();
        let assoc = associate(&boxes, detections, self.min_iou);

        let mut ids = vec![0u64; detections.len()];
        for (t, d) in &assoc.matches {
            let track = &mut self.tracks[*t];
            track.bbox = detections[*d];
            track.age = 0;
            track.hits += 1;
            ids[*d] = track.id;
        }
        for &t in &assoc.unmatched_tracks {
            self.tracks[t].age += 1;
        }
        for &d in &assoc.unmatched_detections {
            let id = self.next_id;
            self.next_id += 1;
            self.tracks.push(Track {
                id,
                bbox: detections[d],
                age: 0,
                hits: 1,
            });
            ids[d] = id;
        }
        let max_age = self.max_age;
        self.tracks.retain(|t| t.age <= max_age);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted(b: Box2, dx: f32) -> Box2 {
        (b.0 + dx, b.1, b.2 + dx, b.3)
    }

    #[test]
    fn association_matches_best_iou() {
        let tracks = [(0.0, 0.0, 1.0, 1.0), (5.0, 5.0, 6.0, 6.0)];
        let dets = [(5.1, 5.0, 6.1, 6.0), (0.05, 0.0, 1.05, 1.0)];
        let assoc = associate(&tracks, &dets, 0.3);
        let mut matches = assoc.matches.clone();
        matches.sort_unstable();
        assert_eq!(matches, vec![(0, 1), (1, 0)]);
        assert!(assoc.unmatched_detections.is_empty());
        assert!(assoc.unmatched_tracks.is_empty());
    }

    #[test]
    fn low_iou_is_not_matched() {
        let tracks = [(0.0, 0.0, 1.0, 1.0)];
        let dets = [(3.0, 3.0, 4.0, 4.0)];
        let assoc = associate(&tracks, &dets, 0.3);
        assert!(assoc.matches.is_empty());
        assert_eq!(assoc.unmatched_detections, vec![0]);
        assert_eq!(assoc.unmatched_tracks, vec![0]);
    }

    #[test]
    fn tracker_maintains_identity_across_motion() {
        let mut tracker = IouTracker::new(0.2, 2);
        let mut b = (0.1, 0.1, 0.3, 0.3);
        let first = tracker.update(&[b])[0];
        for _ in 0..10 {
            b = shifted(b, 0.02);
            let id = tracker.update(&[b])[0];
            assert_eq!(id, first, "track identity lost");
        }
        assert_eq!(tracker.tracks().len(), 1);
        assert_eq!(tracker.tracks()[0].hits, 11);
    }

    #[test]
    fn new_objects_get_new_ids() {
        let mut tracker = IouTracker::new(0.3, 2);
        let a = tracker.update(&[(0.0, 0.0, 0.2, 0.2)])[0];
        let ids = tracker.update(&[(0.0, 0.0, 0.2, 0.2), (0.7, 0.7, 0.9, 0.9)]);
        assert_eq!(ids[0], a);
        assert_ne!(ids[1], a);
    }

    #[test]
    fn stale_tracks_retire() {
        let mut tracker = IouTracker::new(0.3, 1);
        tracker.update(&[(0.0, 0.0, 0.2, 0.2)]);
        tracker.update(&[]); // age 1 — kept
        assert_eq!(tracker.tracks().len(), 1);
        tracker.update(&[]); // age 2 > max_age — retired
        assert!(tracker.tracks().is_empty());
    }

    #[test]
    fn reappearing_object_gets_fresh_id_after_retirement() {
        let mut tracker = IouTracker::new(0.3, 0);
        let a = tracker.update(&[(0.0, 0.0, 0.2, 0.2)])[0];
        tracker.update(&[]); // retires immediately (max_age = 0)
        let b = tracker.update(&[(0.0, 0.0, 0.2, 0.2)])[0];
        assert_ne!(a, b);
    }
}
