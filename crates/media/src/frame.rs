use std::fmt;
use std::sync::Arc;

/// A mutable 8-bit grayscale raster canvas.
///
/// `FrameBuf` is the drawing surface used by the scene renderer; once a frame
/// is complete it is frozen into an immutable, cheaply-cloneable [`Frame`]
/// with [`FrameBuf::freeze`].
///
/// Pixels are stored row-major, one byte per pixel, `0` = black.
#[derive(Clone, PartialEq, Eq)]
pub struct FrameBuf {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

impl FrameBuf {
    /// Creates a black canvas of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        FrameBuf {
            width,
            height,
            pixels: vec![0; width as usize * height as usize],
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw pixel bytes, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Mutable access to the raw pixel bytes, row-major.
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.pixels
    }

    /// Reads the pixel at `(x, y)`, or `None` when out of bounds.
    pub fn get(&self, x: i64, y: i64) -> Option<u8> {
        if x < 0 || y < 0 || x >= i64::from(self.width) || y >= i64::from(self.height) {
            return None;
        }
        Some(self.pixels[y as usize * self.width as usize + x as usize])
    }

    /// Writes the pixel at `(x, y)`; out-of-bounds writes are silently
    /// clipped (the renderer draws partially off-screen figures).
    pub fn put(&mut self, x: i64, y: i64, value: u8) {
        if x < 0 || y < 0 || x >= i64::from(self.width) || y >= i64::from(self.height) {
            return;
        }
        self.pixels[y as usize * self.width as usize + x as usize] = value;
    }

    /// Fills the whole canvas with `value`.
    pub fn fill(&mut self, value: u8) {
        self.pixels.fill(value);
    }

    /// Draws a line from `(x0, y0)` to `(x1, y1)` using Bresenham's
    /// algorithm. Endpoints may lie outside the canvas.
    pub fn draw_line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, value: u8) {
        let (mut x, mut y) = (x0, y0);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.put(x, y, value);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Draws a filled disc centred at `(cx, cy)` with the given radius.
    pub fn draw_disc(&mut self, cx: i64, cy: i64, radius: i64, value: u8) {
        let r2 = radius * radius;
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                if dx * dx + dy * dy <= r2 {
                    self.put(cx + dx, cy + dy, value);
                }
            }
        }
    }

    /// Draws a filled axis-aligned rectangle with corners `(x0, y0)`
    /// (inclusive) and `(x1, y1)` (exclusive).
    pub fn draw_rect(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, value: u8) {
        for y in y0..y1 {
            for x in x0..x1 {
                self.put(x, y, value);
            }
        }
    }

    /// Freezes the canvas into an immutable [`Frame`] with the given
    /// sequence number and capture timestamp (nanoseconds).
    pub fn freeze(self, seq: u64, timestamp_ns: u64) -> Frame {
        Frame {
            seq,
            timestamp_ns,
            width: self.width,
            height: self.height,
            pixels: Arc::from(self.pixels.into_boxed_slice()),
        }
    }
}

impl fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameBuf")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

/// An immutable 8-bit grayscale video frame.
///
/// Frames are cheap to clone (the pixel buffer is shared behind an [`Arc`])
/// which is what makes the paper's pass-by-reference design natural: modules
/// on the same device exchange [`FrameId`](crate::FrameId)s and resolve them
/// to shared `Frame`s through the [`FrameStore`](crate::FrameStore).
#[derive(Clone, PartialEq, Eq)]
pub struct Frame {
    seq: u64,
    timestamp_ns: u64,
    width: u32,
    height: u32,
    pixels: Arc<[u8]>,
}

impl Frame {
    /// Builds a frame directly from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is zero.
    pub fn from_pixels(
        width: u32,
        height: u32,
        pixels: Vec<u8>,
        seq: u64,
        timestamp_ns: u64,
    ) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        assert_eq!(
            pixels.len(),
            width as usize * height as usize,
            "pixel buffer does not match dimensions"
        );
        Frame {
            seq,
            timestamp_ns,
            width,
            height,
            pixels: Arc::from(pixels.into_boxed_slice()),
        }
    }

    /// The source-assigned sequence number of this frame.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Capture timestamp in nanoseconds (pipeline-relative).
    pub fn timestamp_ns(&self) -> u64 {
        self.timestamp_ns
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw pixel bytes, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Reads the pixel at `(x, y)`, or `None` when out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Option<u8> {
        if x >= self.width || y >= self.height {
            return None;
        }
        Some(self.pixels[y as usize * self.width as usize + x as usize])
    }

    /// Size of the raw pixel payload in bytes.
    pub fn raw_size(&self) -> usize {
        self.pixels.len()
    }

    /// Thaws the frame back into a mutable canvas (copies the pixels).
    pub fn to_buf(&self) -> FrameBuf {
        FrameBuf {
            width: self.width,
            height: self.height,
            pixels: self.pixels.to_vec(),
        }
    }

    /// Mean absolute pixel difference against another frame of identical
    /// dimensions; used by codec quality tests.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn mean_abs_diff(&self, other: &Frame) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let sum: u64 = self
            .pixels
            .iter()
            .zip(other.pixels.iter())
            .map(|(a, b)| u64::from(a.abs_diff(*b)))
            .sum();
        sum as f64 / self.pixels.len() as f64
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Frame")
            .field("seq", &self.seq)
            .field("timestamp_ns", &self.timestamp_ns)
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_canvas_is_black() {
        let buf = FrameBuf::new(4, 3);
        assert_eq!(buf.width(), 4);
        assert_eq!(buf.height(), 3);
        assert!(buf.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = FrameBuf::new(0, 10);
    }

    #[test]
    fn put_get_roundtrip_and_clipping() {
        let mut buf = FrameBuf::new(8, 8);
        buf.put(3, 5, 200);
        assert_eq!(buf.get(3, 5), Some(200));
        assert_eq!(buf.get(8, 0), None);
        assert_eq!(buf.get(-1, 0), None);
        // Out-of-bounds writes are silently dropped.
        buf.put(-1, -1, 255);
        buf.put(100, 100, 255);
        assert_eq!(buf.pixels().iter().filter(|&&p| p != 0).count(), 1);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut buf = FrameBuf::new(16, 16);
        buf.draw_line(0, 0, 15, 10, 99);
        assert_eq!(buf.get(0, 0), Some(99));
        assert_eq!(buf.get(15, 10), Some(99));
        // Bresenham visits at least max(dx, dy) + 1 pixels.
        let lit = buf.pixels().iter().filter(|&&p| p == 99).count();
        assert!(lit >= 16, "line too sparse: {lit}");
    }

    #[test]
    fn vertical_and_horizontal_lines() {
        let mut buf = FrameBuf::new(8, 8);
        buf.draw_line(2, 1, 2, 6, 50);
        for y in 1..=6 {
            assert_eq!(buf.get(2, y), Some(50));
        }
        buf.draw_line(0, 3, 7, 3, 60);
        for x in 0..=7 {
            assert_eq!(buf.get(x, 3), Some(60));
        }
    }

    #[test]
    fn disc_is_filled_and_roughly_circular() {
        let mut buf = FrameBuf::new(32, 32);
        buf.draw_disc(16, 16, 5, 255);
        assert_eq!(buf.get(16, 16), Some(255));
        assert_eq!(buf.get(16 + 5, 16), Some(255));
        assert_eq!(buf.get(16 + 6, 16), Some(0));
        let area = buf.pixels().iter().filter(|&&p| p == 255).count() as f64;
        let expected = std::f64::consts::PI * 25.0;
        assert!((area - expected).abs() / expected < 0.3, "area {area}");
    }

    #[test]
    fn rect_covers_exact_pixels() {
        let mut buf = FrameBuf::new(8, 8);
        buf.draw_rect(1, 2, 4, 5, 7);
        let lit = buf.pixels().iter().filter(|&&p| p == 7).count();
        assert_eq!(lit, 9); // 3x3
        assert_eq!(buf.get(1, 2), Some(7));
        assert_eq!(buf.get(3, 4), Some(7));
        assert_eq!(buf.get(4, 4), Some(0));
    }

    #[test]
    fn freeze_preserves_pixels_and_metadata() {
        let mut buf = FrameBuf::new(4, 4);
        buf.put(1, 1, 42);
        let frame = buf.freeze(7, 1_000);
        assert_eq!(frame.seq(), 7);
        assert_eq!(frame.timestamp_ns(), 1_000);
        assert_eq!(frame.get(1, 1), Some(42));
        assert_eq!(frame.raw_size(), 16);
    }

    #[test]
    fn frame_clone_shares_pixels() {
        let frame = FrameBuf::new(4, 4).freeze(0, 0);
        let clone = frame.clone();
        assert!(Arc::ptr_eq(&frame.pixels, &clone.pixels));
    }

    #[test]
    fn to_buf_roundtrip() {
        let mut buf = FrameBuf::new(4, 4);
        buf.put(2, 3, 11);
        let frame = buf.clone().freeze(0, 0);
        assert_eq!(frame.to_buf(), buf);
    }

    #[test]
    fn mean_abs_diff_zero_for_identical() {
        let frame = FrameBuf::new(4, 4).freeze(0, 0);
        assert_eq!(frame.mean_abs_diff(&frame.clone()), 0.0);
    }

    #[test]
    #[should_panic]
    fn from_pixels_wrong_len_panics() {
        let _ = Frame::from_pixels(4, 4, vec![0; 15], 0, 0);
    }

    #[test]
    fn frame_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Frame>();
        assert_send_sync::<FrameBuf>();
    }
}
